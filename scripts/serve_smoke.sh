#!/usr/bin/env bash
# End-to-end smoke test of the serving stack, as run in CI:
# train a tiny model, serve it on an ephemeral port, exercise
# /healthz, /v1/predict, /v1/route (to completion), and /metrics,
# asserting well-formed JSON and Prometheus output, then shut down
# gracefully. A second, fault-armed server run (AF_FAULT) then verifies
# the supervisor: a collector panic answers the in-flight predict with
# 503, /healthz reports degraded then recovers, and the fault_*/
# supervisor_* counters surface in /metrics.
#
# Usage: scripts/serve_smoke.sh [path-to-analogfold-cli]
set -euo pipefail

BIN=${1:-target/release/analogfold-cli}
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

json_ok() { python3 -m json.tool > /dev/null; }

echo "=== train tiny model"
"$BIN" train OTA1 A --samples 6 --epochs 2 --out "$WORK/model.json"

echo "=== start server on an ephemeral port"
"$BIN" serve OTA1 A --model "$WORK/model.json" --addr 127.0.0.1:0 \
    --jobs "$WORK/jobs" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^serving .* at http://##p' "$WORK/serve.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "server exited early"; cat "$WORK/serve.log"; exit 1; }
    sleep 0.2
done
[ -n "$ADDR" ] || { echo "server did not report an address"; cat "$WORK/serve.log"; exit 1; }
echo "server at $ADDR"

echo "=== /healthz"
curl -sf "http://$ADDR/healthz" | tee "$WORK/health.json" | json_ok
grep -q '"circuit":"OTA1"' "$WORK/health.json"
LEN=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["guidance_len"])' "$WORK/health.json")
echo "guidance_len=$LEN"

echo "=== /v1/predict"
python3 -c 'import sys; n=int(sys.argv[1]); print("{\"guidance\":["+",".join(["0.1"]*n)+"]}")' "$LEN" \
    > "$WORK/predict_body.json"
curl -sf -X POST --data-binary @"$WORK/predict_body.json" "http://$ADDR/v1/predict" \
    | tee "$WORK/predict.json" | json_ok
grep -q '"performance"' "$WORK/predict.json"
grep -q '"batch_size"' "$WORK/predict.json"

echo "=== /v1/predict again: identical request must be a response-cache hit"
curl -sf -D "$WORK/predict2.headers" -X POST --data-binary @"$WORK/predict_body.json" \
    "http://$ADDR/v1/predict" > "$WORK/predict2.json"
grep -iq '^x-cache: hit' "$WORK/predict2.headers" \
    || { echo "second identical predict was not served from cache"; cat "$WORK/predict2.headers"; exit 1; }
cmp -s "$WORK/predict.json" "$WORK/predict2.json" \
    || { echo "cached predict body differs from the original"; exit 1; }

echo "=== /v1/predict with x-no-cache bypasses the cache"
curl -sf -D "$WORK/predict3.headers" -H 'x-no-cache: 1' -X POST \
    --data-binary @"$WORK/predict_body.json" "http://$ADDR/v1/predict" | json_ok
grep -iq '^x-cache:' "$WORK/predict3.headers" \
    && { echo "x-no-cache request still went through the cache"; exit 1; }
echo "cache hit + bypass OK"

echo "=== /v1/route to completion"
curl -sf -X POST -d '{"restarts":2,"lbfgs_iters":3,"n_derive":1}' "http://$ADDR/v1/route" \
    | tee "$WORK/route.json" | json_ok
JOB_ID=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$WORK/route.json")
STATUS=""
for _ in $(seq 1 600); do
    curl -sf "http://$ADDR/v1/jobs/$JOB_ID" > "$WORK/job.json"
    STATUS=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["status"])' "$WORK/job.json")
    [ "$STATUS" = done ] && break
    [ "$STATUS" = failed ] && { echo "job failed"; cat "$WORK/job.json"; exit 1; }
    sleep 0.5
done
[ "$STATUS" = done ] || { echo "job did not finish: $STATUS"; exit 1; }
grep -q '"wirelength_um"' "$WORK/job.json"
echo "job $JOB_ID done"

echo "=== /metrics (Prometheus text format)"
curl -sf "http://$ADDR/metrics" > "$WORK/metrics.txt"
grep -q '^# TYPE serve_requests counter' "$WORK/metrics.txt"
grep -q '^serve_requests ' "$WORK/metrics.txt"
grep -q '^cache_serve_hits ' "$WORK/metrics.txt" \
    || { echo "missing cache_serve_hits counter"; grep '^cache' "$WORK/metrics.txt" || true; exit 1; }
grep -q '^cache_serve_misses ' "$WORK/metrics.txt"
python3 - "$WORK/metrics.txt" <<'PY'
import re, sys
line_pat = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$')
bad = [l.rstrip() for l in open(sys.argv[1])
       if l.strip() and not l.startswith('#') and not line_pat.match(l.rstrip())]
assert not bad, f"malformed metric lines: {bad[:5]}"
print(f"metrics OK ({sum(1 for _ in open(sys.argv[1]))} lines)")
PY

echo "=== graceful shutdown"
curl -sf -X POST "http://$ADDR/v1/shutdown" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

echo "=== chaos: collector panic -> 503 -> degraded -> recovered"
AF_FAULT="serve.batch:panic:1.0:1" AF_FAULT_SEED=7 \
    "$BIN" serve OTA1 A --model "$WORK/model.json" --addr 127.0.0.1:0 \
    --jobs "$WORK/jobs-chaos" > "$WORK/serve-chaos.log" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^serving .* at http://##p' "$WORK/serve-chaos.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "chaos server exited early"; cat "$WORK/serve-chaos.log"; exit 1; }
    sleep 0.2
done
[ -n "$ADDR" ] || { echo "chaos server did not report an address"; cat "$WORK/serve-chaos.log"; exit 1; }
echo "chaos server at $ADDR"

# The first batch the collector assembles hits the one-shot panic
# failpoint; the in-flight request must get an error, never a hang.
STATUS=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    --data-binary @"$WORK/predict_body.json" "http://$ADDR/v1/predict")
[ "$STATUS" = 503 ] || { echo "expected 503 from the panicked batch, got $STATUS"; exit 1; }
echo "in-flight predict answered 503"

curl -sf "http://$ADDR/healthz" > "$WORK/health-chaos.json"
grep -q '"status":"degraded"' "$WORK/health-chaos.json" \
    || { echo "healthz did not report degraded after the panic"; cat "$WORK/health-chaos.json"; exit 1; }
echo "healthz degraded"

for _ in $(seq 1 100); do
    curl -sf "http://$ADDR/healthz" > "$WORK/health-chaos.json"
    grep -q '"status":"ok"' "$WORK/health-chaos.json" && break
    sleep 0.2
done
grep -q '"status":"ok"' "$WORK/health-chaos.json" \
    || { echo "server never recovered"; cat "$WORK/health-chaos.json"; exit 1; }
python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["restarts"] >= 1, d' \
    "$WORK/health-chaos.json"
echo "healthz recovered (restarts >= 1)"

curl -sf -X POST --data-binary @"$WORK/predict_body.json" "http://$ADDR/v1/predict" | json_ok
echo "post-recovery predict OK"

curl -sf "http://$ADDR/metrics" > "$WORK/metrics-chaos.txt"
grep -q '^fault_fired_serve_batch ' "$WORK/metrics-chaos.txt" \
    || { echo "missing fault_fired_serve_batch counter"; grep '^fault' "$WORK/metrics-chaos.txt" || true; exit 1; }
grep -q '^supervisor_serve_batcher_restarts ' "$WORK/metrics-chaos.txt" \
    || { echo "missing supervisor restart counter"; grep '^supervisor' "$WORK/metrics-chaos.txt" || true; exit 1; }
echo "fault counters present in /metrics"

curl -sf -X POST "http://$ADDR/v1/shutdown" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "serve smoke OK"
