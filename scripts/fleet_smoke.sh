#!/usr/bin/env bash
# Multi-process fleet smoke test, as run in CI.
#
# Serving fleet: a coordinator, three model workers, and a front on
# ephemeral ports. Traffic through the front must answer with a worker
# stamp, repeat requests must hit the routed worker's response cache, and
# kill -9 of the serving worker must be healed by the front's single-hop
# failover on the very next request — then, once the dead worker's
# membership lease expires, the ring must shrink to the survivors.
#
# Gen fleet: a coordinator-mode `fleet-gen` run with local workers plus an
# external joiner that aborts on its first lease (AF_FAULT worker kill);
# the lease expires and the survivors finish. A second run with a
# different worker count must produce the byte-identical dataset — the
# bit-identity healing contract, observed end to end across processes.
#
# Usage: scripts/fleet_smoke.sh [path-to-analogfold-cli]
set -euo pipefail

BIN=${1:-target/release/analogfold-cli}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

json_ok() { python3 -m json.tool > /dev/null; }

# Polls a background process's log for the address its banner line reports.
wait_addr() { # log-file sed-pattern pid
    local addr=""
    for _ in $(seq 1 150); do
        addr=$(sed -n "$2" "$1" | head -n1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$3" 2>/dev/null || { echo "process exited early; log:" >&2; cat "$1" >&2; return 1; }
        sleep 0.2
    done
    echo "no address in $1" >&2; cat "$1" >&2; return 1
}

echo "=== train tiny model"
"$BIN" train OTA1 A --samples 6 --epochs 2 --out "$WORK/model.json"

echo "=== serving fleet: coordinator + 3 workers + front"
"$BIN" fleet-coord --addr 127.0.0.1:0 --lease-ms 600 > "$WORK/coord.log" 2>&1 &
COORD_PID=$!; PIDS+=("$COORD_PID")
COORD=$(wait_addr "$WORK/coord.log" 's#^fleet coordinator at http://##p' "$COORD_PID")
echo "coordinator at $COORD"

WORKER_PIDS=()
for i in 1 2 3; do
    "$BIN" fleet-worker OTA1 A --model "$WORK/model.json" --coordinator "$COORD" \
        --addr 127.0.0.1:0 > "$WORK/worker$i.log" 2>&1 &
    WORKER_PIDS+=("$!"); PIDS+=("$!")
done
W1=$(wait_addr "$WORK/worker1.log" 's#^fleet worker .* at http://\([^ ]*\).*#\1#p' "${WORKER_PIDS[0]}")
echo "worker 1 at $W1"

"$BIN" fleet-front --coordinator "$COORD" --addr 127.0.0.1:0 --refresh-ms 100 \
    > "$WORK/front.log" 2>&1 &
FRONT_PID=$!; PIDS+=("$FRONT_PID")
FRONT=$(wait_addr "$WORK/front.log" 's#^fleet front at http://\([^ ]*\).*#\1#p' "$FRONT_PID")
echo "front at $FRONT"

echo "=== ring reaches 3 workers"
for _ in $(seq 1 100); do
    curl -sf "http://$FRONT/healthz" > "$WORK/front-health.json" || true
    grep -q '"workers":3' "$WORK/front-health.json" && break
    sleep 0.2
done
grep -q '"workers":3' "$WORK/front-health.json" \
    || { echo "front never saw 3 workers"; cat "$WORK/front-health.json"; exit 1; }

echo "=== /healthz carries uptime_ms and the model content hash"
curl -sf "http://$W1/healthz" | tee "$WORK/w1-health.json" | json_ok
python3 - "$WORK/w1-health.json" "$WORK/front-health.json" <<'PY'
import json, sys
worker = json.load(open(sys.argv[1]))
front = json.load(open(sys.argv[2]))
assert isinstance(worker["uptime_ms"], int), worker
assert worker["model_hash"], worker
assert front["model_hash"] == worker["model_hash"], (front, worker)
assert front["role"] == "front", front
print("model hash agreed across worker and front:", worker["model_hash"][:16])
PY
U1=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["uptime_ms"])' "$WORK/w1-health.json")
sleep 0.3
U2=$(curl -sf "http://$W1/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["uptime_ms"])')
[ "$U2" -gt "$U1" ] || { echo "uptime_ms not monotonic: $U1 -> $U2"; exit 1; }
echo "uptime_ms monotonic ($U1 -> $U2)"

echo "=== predict through the front (worker stamp + affinity hit)"
LEN=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["guidance_len"])' "$WORK/w1-health.json")
python3 -c 'import sys; n=int(sys.argv[1]); print("{\"guidance\":["+",".join(["0.1"]*n)+"]}")' "$LEN" \
    > "$WORK/body.json"
curl -sf -D "$WORK/p1.headers" -X POST --data-binary @"$WORK/body.json" \
    "http://$FRONT/v1/predict" > "$WORK/p1.json"
json_ok < "$WORK/p1.json"
SERVED_BY=$(sed -n 's/^x-fleet-worker: *//p' "$WORK/p1.headers" | tr -d '\r')
[ -n "$SERVED_BY" ] || { echo "front response lacks x-fleet-worker"; cat "$WORK/p1.headers"; exit 1; }
echo "served by $SERVED_BY"
curl -sf -D "$WORK/p2.headers" -X POST --data-binary @"$WORK/body.json" \
    "http://$FRONT/v1/predict" > "$WORK/p2.json"
grep -iq '^x-cache: hit' "$WORK/p2.headers" \
    || { echo "repeat request did not hit the routed worker's cache"; cat "$WORK/p2.headers"; exit 1; }
cmp -s "$WORK/p1.json" "$WORK/p2.json" || { echo "cached reply differs"; exit 1; }
echo "affinity cache hit OK"

echo "=== kill -9 the serving worker; the next request must fail over"
# Default worker ids are w<pid>-<port>, so the stamp names the pid to kill.
SERVED_PID=$(echo "$SERVED_BY" | sed -n 's/^w\([0-9]*\)-.*/\1/p')
[ -n "$SERVED_PID" ] || { echo "cannot parse pid from worker id $SERVED_BY"; exit 1; }
kill -9 "$SERVED_PID"
curl -sf -D "$WORK/p3.headers" -X POST --data-binary @"$WORK/body.json" \
    "http://$FRONT/v1/predict" > "$WORK/p3.json"
FAILOVER_BY=$(sed -n 's/^x-fleet-worker: *//p' "$WORK/p3.headers" | tr -d '\r')
[ "$FAILOVER_BY" != "$SERVED_BY" ] || { echo "request still claims the dead worker"; exit 1; }
cmp -s "$WORK/p1.json" "$WORK/p3.json" \
    || { echo "failover reply differs from the original"; diff "$WORK/p1.json" "$WORK/p3.json"; exit 1; }
echo "failed over to $FAILOVER_BY with an identical reply"

echo "=== membership lease expires; ring shrinks to 2"
for _ in $(seq 1 100); do
    curl -sf "http://$FRONT/healthz" > "$WORK/front-health2.json" || true
    grep -q '"workers":2' "$WORK/front-health2.json" && break
    sleep 0.2
done
grep -q '"workers":2' "$WORK/front-health2.json" \
    || { echo "ring never shrank"; cat "$WORK/front-health2.json"; exit 1; }

echo "=== coordinator /metrics republishes worker gauges"
curl -sf "http://$COORD/metrics" > "$WORK/coord-metrics.txt"
grep -q '^fleet_worker_load{worker=' "$WORK/coord-metrics.txt" \
    || { echo "missing per-worker load gauge"; grep '^fleet' "$WORK/coord-metrics.txt" || true; exit 1; }
grep -q '^fleet_registry_registrations ' "$WORK/coord-metrics.txt" \
    || { echo "missing registration counter"; grep '^fleet' "$WORK/coord-metrics.txt" || true; exit 1; }

echo "=== graceful teardown of the serving fleet"
# A shutdown reply can race the process exiting (curl sees an empty
# reply); the POST still lands, so tolerate the truncated response.
curl -s -X POST "http://$FRONT/v1/shutdown" > /dev/null || true
for log in worker1 worker2 worker3; do
    ADDR=$(sed -n 's#^fleet worker .* at http://\([^ ]*\).*#\1#p' "$WORK/$log.log" | head -n1)
    curl -s -X POST "http://$ADDR/v1/shutdown" > /dev/null || true
done
curl -s -X POST "http://$COORD/fleet/shutdown" > /dev/null || true
wait "$FRONT_PID" "$COORD_PID" 2>/dev/null || true
PIDS=()

echo "=== gen fleet: coordinator-mode run with an aborting joiner"
"$BIN" fleet-gen OTA1 A --checkpoint "$WORK/ckpt1" --samples 8 --shard-size 2 \
    --workers 2 --lease-ms 800 --addr 127.0.0.1:0 --out "$WORK/ds1.json" \
    > "$WORK/gen1.log" 2>&1 &
GEN_PID=$!; PIDS+=("$GEN_PID")
GCOORD=$(wait_addr "$WORK/gen1.log" 's#^fleet gen coordinator at http://\([^ ]*\).*#\1#p' "$GEN_PID")
# The joiner aborts on its first lease (injected worker kill); its leased
# shard expires back to the local workers. The abort exit code is expected.
AF_FAULT="fleet.worker_kill:abort:1.0:1" AF_FAULT_SEED=7 \
    "$BIN" fleet-gen --join "$GCOORD" --id doomed > "$WORK/joiner.log" 2>&1 || true
if grep -q 'aborting process at failpoint' "$WORK/joiner.log"; then
    echo "joiner aborted mid-lease as injected; its shard lease must expire and heal"
else
    echo "joiner found no work left to kill (local workers were faster); continuing"
fi
wait "$GEN_PID" || { echo "gen run 1 failed"; cat "$WORK/gen1.log"; exit 1; }
PIDS=()
grep -q 'dataset assembled: 8 samples' "$WORK/gen1.log" \
    || { echo "run 1 did not assemble"; cat "$WORK/gen1.log"; exit 1; }

echo "=== gen fleet: clean re-run at a different worker count"
"$BIN" fleet-gen OTA1 A --checkpoint "$WORK/ckpt2" --samples 8 --shard-size 2 \
    --workers 3 --addr 127.0.0.1:0 --out "$WORK/ds2.json" > "$WORK/gen2.log" 2>&1 \
    || { echo "gen run 2 failed"; cat "$WORK/gen2.log"; exit 1; }

cmp "$WORK/ds1.json" "$WORK/ds2.json" \
    || { echo "datasets differ across worker counts / injected kill"; exit 1; }
echo "datasets bit-identical across worker counts and an injected kill"
echo "fleet smoke OK"
