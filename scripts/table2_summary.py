#!/usr/bin/env python3
"""Prints the Average block and per-row winners from table2 output."""
import sys

path = sys.argv[1] if len(sys.argv) > 1 else 'table2_full.txt'
text = open(path).read()
i = text.find('Average')
print(text[i:] if i >= 0 else 'no Average block yet')
