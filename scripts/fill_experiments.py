#!/usr/bin/env python3
"""Fills EXPERIMENTS.md's TBD cells from the recorded experiment outputs.

Usage: python3 scripts/fill_experiments.py   (run from the repo root)
"""
import re
import pathlib

root = pathlib.Path(__file__).resolve().parent.parent
exp = (root / "EXPERIMENTS.md").read_text()

# ---- Table 2 averages ----
t2 = (root / "table2_full.txt").read_text()
avg = {}
block = t2[t2.find("Average"):]
for line in block.splitlines():
    parts = line.split()
    if len(parts) >= 4 and parts[0] in (
        "OffsetVoltage", "CMRR", "BandWidth", "DC", "Noise", "Runtime"
    ):
        if parts[0] == "DC":
            name, vals = "DC Gain", parts[3:6]
        else:
            name, vals = parts[0], parts[2:5] if parts[1] in ("v","^") else parts[1:4]
        try:
            avg[name] = [float(v) for v in vals]
        except ValueError:
            pass

mapping = {
    "Offset Voltage ↓": "OffsetVoltage",
    "CMRR ↑": "CMRR",
    "BandWidth ↑": "BandWidth",
    "DC Gain ↑": "DC Gain",
    "Noise ↓": "Noise",
    "Runtime ↓": "Runtime",
}
for label, key in mapping.items():
    if key in avg:
        g, o = avg[key][1], avg[key][2]
        exp = re.sub(
            rf"(\| {re.escape(label)} +\| [0-9.]+ +\| [0-9.]+ \|) TBD \| TBD \|",
            rf"\1 {g:.3f} | {o:.3f} |",
            exp,
        )

# ---- Figure 5 ----
f5path = root / "fig5_full.txt"
if f5path.exists():
    f5 = f5path.read_text()
    stage_map = {
        "Construct Database": "Construct Database",
        "Model Training": "Model Training",
        "Inference: Routing Guide Generation": "Inference: Routing Guide Generation",
        "Inference: Guided Detailed Routing": "Inference: Guided Detailed Routing",
        "Placement": "Placement",
    }
    for line in f5.splitlines():
        m = re.match(r"^(.*?)\s+([0-9.]+)\s+([0-9.]+)%\s+([0-9.]+)%$", line)
        if m and m.group(1).strip() in stage_map:
            stage = m.group(1).strip()
            pct = float(m.group(3))
            exp = exp.replace(
                f"| {stage} | {m.group(4)} % | TBD |",
                f"| {stage} | {m.group(4)} % | {pct:.2f} % |",
            )

(root / "EXPERIMENTS.md").write_text(exp)
print("EXPERIMENTS.md updated")
