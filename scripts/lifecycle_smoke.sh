#!/usr/bin/env bash
# End-to-end smoke test of the model lifecycle, as run in CI:
#
#  Phase A — train an incumbent into a fresh registry (bootstrap
#  promotion), register a second trained version as candidate, serve from
#  the registry with the background trainer on, then promote the candidate
#  over HTTP *while* a predict loop is running: every response must stay
#  200 (zero-downtime claim), predicts must be bit-stable per model
#  version and change across the swap, and a completed /v1/route job must
#  make the trainer register a fine-tuned candidate.
#
#  Phase B — restart the server with canarying on every route job,
#  register a deliberately degraded candidate (trained for a different
#  circuit, so its FoM predictions are systematically off — the classic
#  wrong-artifact deployment mistake), shadow-score it on three routed
#  jobs, and verify the canary verdict blocks its promotion (HTTP 409 and
#  a non-zero `models promote` exit) until --force.
#
# Usage: scripts/lifecycle_smoke.sh [path-to-analogfold-cli]
set -euo pipefail

BIN=${1:-target/release/analogfold-cli}
WORK=$(mktemp -d)
REG="$WORK/registry"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

json_ok() { python3 -m json.tool > /dev/null; }

wait_for_addr() { # logfile -> sets ADDR
    local log=$1
    ADDR=""
    for _ in $(seq 1 150); do
        ADDR=$(sed -n 's#^serving .* at http://##p' "$log" | head -n1)
        [ -n "$ADDR" ] && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || { echo "server exited early"; cat "$log"; exit 1; }
        sleep 0.2
    done
    echo "server did not report an address"; cat "$log"; exit 1
}

route_to_done() { # seed -> waits for the job to complete
    local seed=$1 status="" job
    curl -sf -X POST -d "{\"restarts\":2,\"lbfgs_iters\":3,\"n_derive\":1,\"seed\":$seed}" \
        "http://$ADDR/v1/route" > "$WORK/route.json"
    job=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$WORK/route.json")
    for _ in $(seq 1 600); do
        curl -sf "http://$ADDR/v1/jobs/$job" > "$WORK/job.json"
        status=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["status"])' "$WORK/job.json")
        [ "$status" = done ] && return 0
        [ "$status" = failed ] && { echo "route job failed"; cat "$WORK/job.json"; exit 1; }
        sleep 0.5
    done
    echo "route job never finished: $status"; exit 1
}

echo "=== phase A: registry bootstrap (train incumbent, then a candidate)"
"$BIN" train OTA1 A --samples 10 --epochs 4 --out "$WORK/m1.json" --registry "$REG" \
    | tee "$WORK/train1.log"
INCUMBENT=$(sed -n 's/^model \([0-9a-f]*\) registered and promoted.*/\1/p' "$WORK/train1.log")
[ -n "$INCUMBENT" ] || { echo "first train did not bootstrap-promote"; exit 1; }

"$BIN" train OTA1 A --samples 10 --epochs 6 --out "$WORK/m2.json" --registry "$REG" \
    | tee "$WORK/train2.log"
CANDIDATE=$(sed -n 's/^model \([0-9a-f]*\) registered as candidate$/\1/p' "$WORK/train2.log")
[ -n "$CANDIDATE" ] || { echo "second train did not register a candidate"; exit 1; }

"$BIN" models list --registry "$REG" | tee "$WORK/list.txt"
grep -q "^current: $INCUMBENT" "$WORK/list.txt"

echo "=== serve from the registry with the background trainer on"
"$BIN" serve OTA1 A --registry "$REG" --jobs "$WORK/jobs" --addr 127.0.0.1:0 \
    --train --train-interval-ms 400 --train-min-samples 1 --train-epochs 2 \
    > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
wait_for_addr "$WORK/serve.log"
echo "server at $ADDR"

curl -sf "http://$ADDR/healthz" > "$WORK/health.json"
grep -q "\"model_hash\":\"$INCUMBENT\"" "$WORK/health.json" \
    || { echo "server is not resident on the registry CURRENT"; cat "$WORK/health.json"; exit 1; }
LEN=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["guidance_len"])' "$WORK/health.json")
python3 -c 'import sys; n=int(sys.argv[1]); print("{\"guidance\":["+",".join(["0.1"]*n)+"]}")' "$LEN" \
    > "$WORK/body.json"

echo "=== bit-stability on the incumbent (cache bypassed: real forward passes)"
curl -sf -H 'x-no-cache: 1' -X POST --data-binary @"$WORK/body.json" \
    "http://$ADDR/v1/predict" > "$WORK/pred_old_1.json"
curl -sf -H 'x-no-cache: 1' -X POST --data-binary @"$WORK/body.json" \
    "http://$ADDR/v1/predict" > "$WORK/pred_old_2.json"
cmp -s "$WORK/pred_old_1.json" "$WORK/pred_old_2.json" \
    || { echo "incumbent predicts are not bit-stable"; exit 1; }

echo "=== promote the candidate while a predict loop is running"
( for _ in $(seq 1 40); do
      curl -s -o /dev/null -w '%{http_code}\n' -X POST \
          --data-binary @"$WORK/body.json" "http://$ADDR/v1/predict"
  done > "$WORK/codes.txt" ) &
LOAD_PID=$!
sleep 0.3
curl -sf -X POST -d "{\"hash\":\"$CANDIDATE\"}" "http://$ADDR/v1/models/promote" \
    | tee "$WORK/promote.json" | json_ok
grep -q "\"model_hash\":\"$CANDIDATE\"" "$WORK/promote.json"
grep -q "\"previous\":\"$INCUMBENT\"" "$WORK/promote.json"
wait "$LOAD_PID"
BAD_CODES=$(sort -u "$WORK/codes.txt" | grep -v '^200$' || true)
[ -z "$BAD_CODES" ] || { echo "non-200 responses during the swap: $BAD_CODES"; exit 1; }
echo "promotion under load: $(wc -l < "$WORK/codes.txt") predicts, all 200"

curl -sf "http://$ADDR/v1/models" > "$WORK/models.json"
grep -q "\"resident\":\"$CANDIDATE\"" "$WORK/models.json" \
    || { echo "server did not hot-swap to the candidate"; cat "$WORK/models.json"; exit 1; }
grep -q "\"current\":\"$CANDIDATE\"" "$WORK/models.json"

echo "=== bit-stability on the new model, and the swap actually changed outputs"
curl -sf -H 'x-no-cache: 1' -X POST --data-binary @"$WORK/body.json" \
    "http://$ADDR/v1/predict" > "$WORK/pred_new_1.json"
curl -sf -H 'x-no-cache: 1' -X POST --data-binary @"$WORK/body.json" \
    "http://$ADDR/v1/predict" > "$WORK/pred_new_2.json"
cmp -s "$WORK/pred_new_1.json" "$WORK/pred_new_2.json" \
    || { echo "post-swap predicts are not bit-stable"; exit 1; }
cmp -s "$WORK/pred_old_1.json" "$WORK/pred_new_1.json" \
    && { echo "predicts did not change across the model swap"; exit 1; }
echo "bit-stable per version, distinct across versions"

echo "=== a routed job makes the background trainer register a candidate"
route_to_done 5
TRAINED=""
for _ in $(seq 1 150); do
    curl -sf "http://$ADDR/metrics" > "$WORK/metrics.txt"
    if grep -q '^model_trainer_registered ' "$WORK/metrics.txt"; then TRAINED=yes; break; fi
    sleep 0.4
done
[ -n "$TRAINED" ] || { echo "trainer never registered a candidate"; cat "$WORK/serve.log"; exit 1; }
grep -q '^model_swap_total ' "$WORK/metrics.txt"
grep -q '^model_trainer_ingested ' "$WORK/metrics.txt"
echo "trainer registered a fine-tuned candidate; lifecycle counters present"

curl -sf -X POST "http://$ADDR/v1/shutdown" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

echo "=== phase B: canary gate (trainer off, every route job shadow-scored)"
# A model trained for OTA3 predicts OTA3-scale figures of merit; registered
# into an OTA1 deployment it is a deterministically degraded candidate.
"$BIN" train OTA3 A --samples 10 --epochs 6 --out "$WORK/bad.json" --registry "$REG" \
    | tee "$WORK/train3.log"
BAD=$(sed -n 's/^model \([0-9a-f]*\) registered as candidate$/\1/p' "$WORK/train3.log")
[ -n "$BAD" ] || { echo "degraded train did not register a candidate"; exit 1; }

"$BIN" serve OTA1 A --registry "$REG" --jobs "$WORK/jobs-b" --addr 127.0.0.1:0 \
    --canary-fraction 1.0 > "$WORK/serve-b.log" 2>&1 &
SERVE_PID=$!
wait_for_addr "$WORK/serve-b.log"
echo "server at $ADDR"

for seed in 6 7 8; do
    route_to_done "$seed"
done
SCORED=""
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/metrics" > "$WORK/metrics-b.txt"
    N=$(sed -n 's/^canary_evaluations \([0-9]*\).*/\1/p' "$WORK/metrics-b.txt")
    if [ -n "$N" ] && [ "$N" -ge 3 ]; then SCORED=$N; break; fi
    sleep 0.2
done
[ -n "$SCORED" ] || { echo "canary never scored 3 jobs"; cat "$WORK/serve-b.log"; exit 1; }
echo "canary scored $SCORED shadow evaluations"

echo "=== the degraded candidate must be refused (409), then forceable"
STATUS=$(curl -s -o "$WORK/refused.json" -w '%{http_code}' -X POST \
    -d "{\"hash\":\"$BAD\"}" "http://$ADDR/v1/models/promote")
[ "$STATUS" = 409 ] || { echo "expected 409 refusing the degraded candidate, got $STATUS"; \
    cat "$WORK/refused.json"; exit 1; }
echo "promotion refused over HTTP"

"$BIN" models promote "$BAD" --registry "$REG" > "$WORK/cli-promote.log" 2>&1 \
    && { echo "models promote should have refused the degraded candidate"; exit 1; }
grep -qi regress "$WORK/cli-promote.log" \
    || { echo "refusal did not cite the canary verdict"; cat "$WORK/cli-promote.log"; exit 1; }
"$BIN" models show "$BAD" --registry "$REG" | grep -q 'verdict' \
    || { echo "models show is missing the recorded verdict"; exit 1; }
echo "CLI promotion refused with the recorded verdict"

curl -sf -X POST -d "{\"hash\":\"$BAD\",\"force\":true}" \
    "http://$ADDR/v1/models/promote" | tee "$WORK/forced.json" | json_ok
grep -q "\"model_hash\":\"$BAD\"" "$WORK/forced.json"
curl -sf "http://$ADDR/metrics" > "$WORK/metrics-b.txt"
grep -q '^canary_promotions_blocked ' "$WORK/metrics-b.txt"
echo "forced promotion swapped the server; blocked counter present"

curl -sf -X POST "http://$ADDR/v1/shutdown" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

echo "=== rollback restores the previous version"
"$BIN" models rollback --registry "$REG" | tee "$WORK/rollback.log"
"$BIN" models list --registry "$REG" | grep -q "^current: $CANDIDATE" \
    || { echo "rollback did not restore the pre-force current"; \
         "$BIN" models list --registry "$REG"; exit 1; }
echo "lifecycle smoke OK"
