#!/bin/bash
# Waits for the table2 full run to finish, then regenerates the remaining
# figures/experiments. Fig 5 runs at full scale (it is the runtime-breakdown
# headline); the visual/diagnostic experiments run at quick scale to keep
# the single-core wall clock bounded — rerun any of them with `full` for
# higher fidelity.
set -u
cd /root/repo
until grep -q EXIT table2_full.log 2>/dev/null; do sleep 20; done
echo "table2 done, running figures..."
cargo run -p af-bench --bin fig5_runtime   --release -- full  > fig5_full.txt 2>&1
cargo run -p af-bench --bin fig1_guidance  --release -- quick > fig1_full.txt 2>&1
cargo run -p af-bench --bin fig6_layouts   --release -- quick > fig6_full.txt 2>&1
cargo run -p af-bench --bin ablations      --release -- quick > ablations_full.txt 2>&1
cargo run -p af-bench --bin extension_ota5 --release -- quick > ext_ota5.txt 2>&1
cargo run -p af-bench --bin stability      --release -- quick seeds=3 > stability.txt 2>&1
cargo run -p af-bench --bin gnn_bench      --release -- quick > gnn_bench.txt 2>&1
echo ALLDONE
