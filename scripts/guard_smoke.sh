#!/usr/bin/env bash
# Tail-tolerance smoke test, as run in CI: a real 3-worker fleet where one
# worker is made permanently slow through an env-armed `serve.batch.delay`
# failpoint (prob 1.0: every batch sleeps).
#
# The front must:
#   * shed an expired `x-deadline-ms` with 408 *before* dialing any worker
#     (per-worker request counters prove no backend saw the request),
#   * reject a malformed deadline with 400,
#   * hedge around the slow worker (`x-hedged: 1` responses appear and the
#     observed tail stays far below the injected delay),
#   * trip the slow worker's latency breaker (`guard_breaker_opened`) and
#     keep the tail bounded while it is excluded from the ring,
#   * heal the breaker (`guard_breaker_closed`) once the worker is restarted
#     without the fault — probes are let through and close the circuit.
#
# Usage: scripts/guard_smoke.sh [path-to-analogfold-cli]
set -euo pipefail

BIN=${1:-target/release/analogfold-cli}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

DELAY_MS=400

# Polls a background process's log for the address its banner line reports.
wait_addr() { # log-file sed-pattern pid
    local addr=""
    for _ in $(seq 1 150); do
        addr=$(sed -n "$2" "$1" | head -n1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$3" 2>/dev/null || { echo "process exited early; log:" >&2; cat "$1" >&2; return 1; }
        sleep 0.2
    done
    echo "no address in $1" >&2; cat "$1" >&2; return 1
}

metric() { # host metric-name -> value (0 when absent)
    curl -sf "http://$1/metrics" | sed -n "s/^$2 //p" | head -n1 | grep . || echo 0
}

echo "=== train tiny model"
"$BIN" train OTA1 A --samples 6 --epochs 2 --out "$WORK/model.json"

echo "=== fleet: coordinator + 2 healthy workers + 1 slow worker + front"
"$BIN" fleet-coord --addr 127.0.0.1:0 --lease-ms 600 > "$WORK/coord.log" 2>&1 &
COORD_PID=$!; PIDS+=("$COORD_PID")
COORD=$(wait_addr "$WORK/coord.log" 's#^fleet coordinator at http://##p' "$COORD_PID")
echo "coordinator at $COORD"

start_worker() { # id log-file extra-env...
    local id=$1 log=$2; shift 2
    env "$@" "$BIN" fleet-worker OTA1 A --model "$WORK/model.json" \
        --coordinator "$COORD" --addr 127.0.0.1:0 --id "$id" \
        > "$WORK/$log" 2>&1 &
    echo $!
}

W1_PID=$(start_worker gw1 w1.log); PIDS+=("$W1_PID")
W2_PID=$(start_worker gw2 w2.log); PIDS+=("$W2_PID")
# The slow worker: every batch its collector assembles sleeps DELAY_MS.
SLOW_PID=$(start_worker gwslow wslow.log \
    AF_FAULT="serve.batch.delay:delay:$DELAY_MS:1.0" AF_FAULT_SEED=1)
PIDS+=("$SLOW_PID")
W1=$(wait_addr "$WORK/w1.log" 's#^fleet worker .* at http://\([^ ]*\).*#\1#p' "$W1_PID")
W2=$(wait_addr "$WORK/w2.log" 's#^fleet worker .* at http://\([^ ]*\).*#\1#p' "$W2_PID")
WSLOW=$(wait_addr "$WORK/wslow.log" 's#^fleet worker .* at http://\([^ ]*\).*#\1#p' "$SLOW_PID")

"$BIN" fleet-front --coordinator "$COORD" --addr 127.0.0.1:0 --refresh-ms 100 \
    --hedge-delay-ms 50 --breaker-slow-ms 100 --breaker-open-ms 1000 \
    > "$WORK/front.log" 2>&1 &
FRONT_PID=$!; PIDS+=("$FRONT_PID")
FRONT=$(wait_addr "$WORK/front.log" 's#^fleet front at http://\([^ ]*\).*#\1#p' "$FRONT_PID")
echo "front at $FRONT (hedge 50 ms, breaker slow >100 ms, open 1000 ms)"

echo "=== ring reaches 3 workers"
for _ in $(seq 1 100); do
    curl -sf "http://$FRONT/healthz" > "$WORK/front-health.json" || true
    grep -q '"workers":3' "$WORK/front-health.json" && break
    sleep 0.2
done
grep -q '"workers":3' "$WORK/front-health.json" \
    || { echo "front never saw 3 workers"; cat "$WORK/front-health.json"; exit 1; }
grep -q '"breakers":' "$WORK/front-health.json" \
    || { echo "front /healthz lacks the breakers field"; cat "$WORK/front-health.json"; exit 1; }

LEN=$(curl -sf "http://$W1/healthz" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["guidance_len"])')
# Distinct bodies rendezvous-hash to distinct workers, so the traffic loops
# below exercise every replica (including the slow one) as primary.
python3 - "$LEN" "$WORK" <<'PY'
import sys
n, work = int(sys.argv[1]), sys.argv[2]
for i in range(120):
    vals = ",".join(f"{0.001 * ((7 * i + j) % 97):.3f}" for j in range(n))
    open(f"{work}/body_{i}.json", "w").write('{"guidance":[%s]}' % vals)
PY

echo "=== a live deadline budget rides through the hop"
curl -sf -H "x-deadline-ms: 30000" -X POST --data-binary @"$WORK/body_0.json" \
    "http://$FRONT/v1/predict" > /dev/null \
    || { echo "budgeted predict failed"; exit 1; }

echo "=== expired deadlines are shed with 408 before any worker is dialed"
# serve_predict_sojourn_ms_count counts work that actually entered a batch
# collector (metrics scrapes and health checks leave it untouched).
WORKED=serve_predict_sojourn_ms_count
BEFORE=$(( $(metric "$W1" $WORKED) + $(metric "$W2" $WORKED) + $(metric "$WSLOW" $WORKED) ))
for value in 0 @1; do
    CODE=$(curl -s -o "$WORK/shed.json" -w '%{http_code}' -H "x-deadline-ms: $value" \
        -X POST --data-binary @"$WORK/body_1.json" "http://$FRONT/v1/predict")
    [ "$CODE" = 408 ] || { echo "deadline $value: expected 408, got $CODE"; cat "$WORK/shed.json"; exit 1; }
done
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "x-deadline-ms: @1" \
    -X POST -d '{"bench":"OTA1","variant":"A"}' "http://$FRONT/v1/route")
[ "$CODE" = 408 ] || { echo "expired route: expected 408, got $CODE"; exit 1; }
AFTER=$(( $(metric "$W1" $WORKED) + $(metric "$W2" $WORKED) + $(metric "$WSLOW" $WORKED) ))
[ "$AFTER" = "$BEFORE" ] \
    || { echo "expired requests reached a worker ($BEFORE -> $AFTER)"; exit 1; }
SHED=$(metric "$FRONT" guard_deadline_expired_front)
[ "$SHED" -ge 3 ] || { echo "guard_deadline_expired_front = $SHED, wanted >= 3"; exit 1; }
echo "3 expired requests shed at the front, workers saw none"

CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "x-deadline-ms: soon-ish" \
    -X POST --data-binary @"$WORK/body_1.json" "http://$FRONT/v1/predict")
[ "$CODE" = 400 ] || { echo "malformed deadline: expected 400, got $CODE"; exit 1; }

echo "=== traffic until the slow worker's breaker trips (hedges fire meanwhile)"
HEDGED=0
OPENED=0
for i in $(seq 2 79); do
    curl -sf -D "$WORK/h.headers" -X POST --data-binary @"$WORK/body_$i.json" \
        "http://$FRONT/v1/predict" > /dev/null \
        || { echo "predict $i failed"; exit 1; }
    grep -iq '^x-hedged: 1' "$WORK/h.headers" && HEDGED=$((HEDGED + 1))
    OPENED=$(metric "$FRONT" guard_breaker_opened)
    [ "$OPENED" -ge 1 ] && break
done
[ "$OPENED" -ge 1 ] || { echo "breaker never tripped (hedged $HEDGED)"; exit 1; }
[ "$HEDGED" -ge 1 ] || { echo "no hedge fired before the breaker tripped"; exit 1; }
echo "breaker opened after $((i - 1)) requests, $HEDGED hedged"
curl -sf "http://$FRONT/healthz" | grep -Eq '"worker":"gwslow","state":"(open|half-open)"' \
    || { echo "front /healthz does not report the tripped breaker"; curl -sf "http://$FRONT/healthz"; exit 1; }

echo "=== tail stays bounded while the slow worker is tripped out"
: > "$WORK/times.txt"
for i in $(seq 80 99); do
    curl -sf -o /dev/null -w '%{time_total}\n' -X POST \
        --data-binary @"$WORK/body_$i.json" "http://$FRONT/v1/predict" >> "$WORK/times.txt"
done
python3 - "$WORK/times.txt" "$DELAY_MS" <<'PY'
import sys
times = sorted(float(t) for t in open(sys.argv[1]))
delay_s = int(sys.argv[2]) / 1000.0
# 90th percentile must stay far below the injected delay: the breaker keeps
# the slow worker out, and the rare half-open probe is hedged around. Two
# outliers (un-hedgeable probes under an empty hedge budget) are tolerated.
p90 = times[int(len(times) * 0.9) - 1]
assert p90 < delay_s * 0.875, f"p90 {p90:.3f}s not bounded vs {delay_s}s delay: {times}"
print(f"20 requests with the breaker open: p90 {p90*1000:.1f} ms, max {times[-1]*1000:.1f} ms")
PY

echo "=== restart the worker without the fault; the breaker must heal"
kill -9 "$SLOW_PID" 2>/dev/null || true
SLOW_PID=$(start_worker gwslow wslow2.log); PIDS+=("$SLOW_PID")
wait_addr "$WORK/wslow2.log" 's#^fleet worker .* at http://\([^ ]*\).*#\1#p' "$SLOW_PID" > /dev/null
CLOSED=0
for i in $(seq 100 119); do
    for _ in 1 2 3 4 5; do
        curl -s -o /dev/null -X POST --data-binary @"$WORK/body_$i.json" \
            "http://$FRONT/v1/predict" || true
        sleep 0.1
    done
    CLOSED=$(metric "$FRONT" guard_breaker_closed)
    [ "$CLOSED" -ge 1 ] && break
done
[ "$CLOSED" -ge 1 ] || { echo "breaker never healed"; curl -sf "http://$FRONT/healthz"; exit 1; }
curl -sf "http://$FRONT/healthz" | grep -q '"worker":"gwslow","state":"closed"' \
    || { echo "healed breaker not closed in /healthz"; curl -sf "http://$FRONT/healthz"; exit 1; }
echo "breaker healed (guard_breaker_closed = $CLOSED)"

echo "=== graceful teardown"
curl -s -X POST "http://$FRONT/v1/shutdown" > /dev/null || true
for addr in "$W1" "$W2" "$WSLOW"; do
    curl -s -X POST "http://$addr/v1/shutdown" > /dev/null || true
done
curl -s -X POST "http://$COORD/fleet/shutdown" > /dev/null || true
echo "guard smoke OK"
