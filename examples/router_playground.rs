//! Routing playground: route the same placement under hand-written guidance
//! fields and see how wirelength, vias, parasitics and performance respond.
//! Writes an SVG per scenario to `target/figures/`.
//!
//! Run with: `cargo run --release --example router_playground`

use std::fs;

use analogfold_suite::extract::extract;
use analogfold_suite::geom::{CostTriple, Point3};
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{
    render_svg, NonUniformGuidance, Router, RouterConfig, RoutingGuidance,
};
use analogfold_suite::sim::{simulate, SimConfig};
use analogfold_suite::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let out_dir = std::path::Path::new("target/figures");
    fs::create_dir_all(out_dir)?;

    // Scenario guidance fields.
    let vout = circuit.net_by_name("vout").expect("vout exists");
    let n2 = circuit.net_by_name("n2").expect("n2 exists");
    let mk_field = |triple: CostTriple, nets: &[analogfold_suite::netlist::NetId]| {
        let mut g = NonUniformGuidance::new();
        for &net in nets {
            for pin in placement.pins_of_net(net) {
                let c = pin.rect.center();
                g.set(net, Point3::new(c.x, c.y, pin.layer), triple);
            }
        }
        RoutingGuidance::NonUniform(g)
    };
    let scenarios: Vec<(&str, RoutingGuidance)> = vec![
        ("baseline (no guidance)", RoutingGuidance::None),
        (
            "discourage vias on vout/n2",
            mk_field(CostTriple([1.0, 1.0, 3.5]), &[vout, n2]),
        ),
        (
            "prefer horizontal on vout/n2",
            mk_field(CostTriple([0.4, 2.5, 1.0]), &[vout, n2]),
        ),
        (
            "penalize everything on vout/n2",
            mk_field(CostTriple([3.0, 3.0, 3.0]), &[vout, n2]),
        ),
    ];

    println!(
        "{:<32}{:>10}{:>8}{:>12}{:>12}",
        "scenario", "wire(um)", "vias", "offset(uV)", "noise(uV)"
    );
    for (i, (name, guidance)) in scenarios.iter().enumerate() {
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&circuit, &placement, &tech, guidance)?;
        let px = extract(&circuit, &tech, &layout);
        let perf = simulate(&circuit, Some(&px), &SimConfig::default())?;
        println!(
            "{:<32}{:>10.1}{:>8}{:>12.1}{:>12.1}",
            name,
            layout.total_wirelength() as f64 / 1e3,
            layout.total_vias(),
            perf.offset_uv,
            perf.noise_uvrms
        );
        let svg = render_svg(&circuit, &placement, &layout, name);
        fs::write(out_dir.join(format!("playground_{i}.svg")), svg)?;
    }
    println!("\nSVGs written to {}", out_dir.display());
    Ok(())
}
