//! Quickstart: place, Router, extract, and simulate one OTA benchmark.
//!
//! Run with: `cargo run --release --example quickstart`

use analogfold_suite::extract::extract;
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{Router, RouterConfig, RoutingGuidance};
use analogfold_suite::sim::{simulate, SimConfig};
use analogfold_suite::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = benchmarks::ota1();
    println!(
        "{}: {} devices, {} nets, {} symmetric net pairs",
        circuit.name(),
        circuit.devices().len(),
        circuit.nets().len(),
        circuit.symmetric_net_pairs().len()
    );

    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    println!(
        "placed on a {:.1} x {:.1} um die",
        placement.die().width() as f64 / 1e3,
        placement.die().height() as f64 / 1e3
    );

    let layout = Router::new(RouterConfig::default()).unwrap().route(
        &circuit,
        &placement,
        &tech,
        &RoutingGuidance::None,
    )?;
    println!(
        "routed {} nets, {:.1} um wire, {} vias, {} conflicts, {:.2}s",
        layout.nets.len(),
        layout.total_wirelength() as f64 / 1e3,
        layout.total_vias(),
        layout.conflicts,
        layout.runtime_s
    );

    let parasitics = extract(&circuit, &tech, &layout);
    println!(
        "extracted {} coupling caps, worst pair mismatch {:.2}%",
        parasitics.couplings().len(),
        parasitics.worst_mismatch() * 100.0
    );

    let cfg = SimConfig::default();
    let schematic = simulate(&circuit, None, &cfg)?;
    let post = simulate(&circuit, Some(&parasitics), &cfg)?;

    println!("\n{:<22}{:>14}{:>14}", "metric", "schematic", "post-layout");
    println!(
        "{:<22}{:>14.3}{:>14.3}",
        "Offset Voltage (uV)", schematic.offset_uv, post.offset_uv
    );
    println!(
        "{:<22}{:>14.2}{:>14.2}",
        "CMRR (dB)", schematic.cmrr_db, post.cmrr_db
    );
    println!(
        "{:<22}{:>14.2}{:>14.2}",
        "BandWidth (MHz)", schematic.bandwidth_mhz, post.bandwidth_mhz
    );
    println!(
        "{:<22}{:>14.2}{:>14.2}",
        "DC Gain (dB)", schematic.dc_gain_db, post.dc_gain_db
    );
    println!(
        "{:<22}{:>14.1}{:>14.1}",
        "Noise (uVrms)", schematic.noise_uvrms, post.noise_uvrms
    );
    Ok(())
}
