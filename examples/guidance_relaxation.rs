//! Demonstrates potential modeling and pool-assisted relaxation in
//! isolation: train a small 3DGNN on sampled routings, then watch L-BFGS
//! multistart (with and without the pool) descend the potential.
//!
//! Run with: `cargo run --release --example guidance_relaxation`

use analogfold_suite::analogfold::{
    generate_dataset, relax, DatasetConfig, GnnConfig, HeteroGraph, Potential, RelaxConfig,
    ThreeDGnn,
};
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = benchmarks::ota2();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::B);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    println!(
        "heterogeneous graph: {} APs ({} guided), {} modules, {} PP / {} MP / {} MM edges",
        graph.num_aps(),
        graph.guided_ap_indices().len(),
        graph.num_modules(),
        graph.pp_edges.len(),
        graph.mp_edges.len(),
        graph.mm_edges.len()
    );

    println!("sampling 20 guided routings for training labels ...");
    let dataset = generate_dataset(
        &circuit,
        &placement,
        &tech,
        &graph,
        &DatasetConfig {
            samples: 20,
            ..DatasetConfig::default()
        },
    )?;

    let cfg = GnnConfig {
        epochs: 15,
        ..GnnConfig::default()
    };
    let mut gnn = ThreeDGnn::new(&cfg);
    let report = gnn.train(&graph, &dataset, &cfg);
    println!(
        "trained 3DGNN: loss {:.4} -> {:.4} over {} epochs",
        report.epoch_losses[0],
        report.final_loss,
        report.epoch_losses.len()
    );

    let potential = Potential::new(&gnn, &graph);
    let neutral = vec![1.0; potential.dim()];
    let (v_neutral, _) = potential.value_and_grad(&neutral);
    println!("\npotential at neutral guidance (all 1.0): {v_neutral:.5}");

    for (label, p_relax) in [("plain multistart", 0.0), ("pool-assisted", 0.6)] {
        let out = relax(
            &potential,
            &RelaxConfig {
                restarts: 12,
                p_relax,
                n_derive: 3,
                ..RelaxConfig::default()
            },
        );
        println!("\n{label}: top-3 potentials after 12 restarts");
        for (i, o) in out.iter().enumerate() {
            let mean: f64 = o.guidance.iter().sum::<f64>() / o.guidance.len() as f64;
            println!(
                "  #{}: V = {:.5} (mean C = {:.3})",
                i + 1,
                o.potential,
                mean
            );
        }
    }
    Ok(())
}
