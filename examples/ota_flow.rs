//! Full AnalogFold flow on one OTA benchmark, compared against the
//! MagicalRoute baseline.
//!
//! Run with: `cargo run --release --example ota_flow -- [OTA1..OTA4] [A..D]`

use analogfold_suite::analogfold::{magical_route, AnalogFoldFlow, FlowConfig};
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::RouterConfig;
use analogfold_suite::sim::SimConfig;
use analogfold_suite::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("OTA1");
    let variant = args
        .get(1)
        .and_then(|v| PlacementVariant::from_label(v))
        .unwrap_or(PlacementVariant::A);

    let circuit = benchmarks::by_name(bench).ok_or("unknown benchmark (use OTA1..OTA4)")?;
    let tech = Technology::nm40();
    let placement = place(&circuit, variant);
    println!(
        "{}-{}: running MagicalRoute baseline ...",
        circuit.name(),
        variant
    );

    let (_, _, base) = magical_route(
        &circuit,
        &placement,
        &tech,
        &RouterConfig::default(),
        &SimConfig::default(),
    )?;

    println!("training AnalogFold (small laptop-scale configuration) ...");
    let cfg = FlowConfig::builder()
        .samples(24)
        .epochs(12)
        .restarts(10)
        .n_derive(2)
        .build()?;
    let outcome = AnalogFoldFlow::new(cfg).run(&circuit, &placement)?;
    let ours = outcome.performance;

    println!(
        "\nfinal GNN training loss: {:.4}",
        outcome.train_report.final_loss
    );
    println!(
        "runtime: db {:.2}s, training {:.2}s, guide {:.2}s, routing {:.2}s",
        outcome.breakdown.construct_db_s,
        outcome.breakdown.training_s,
        outcome.breakdown.guide_gen_s,
        outcome.breakdown.guided_route_s
    );

    println!(
        "\n{:<22}{:>14}{:>14}{:>10}",
        "metric", "MagicalRoute", "AnalogFold", "better?"
    );
    let rows = [
        (
            "Offset Voltage (uV)",
            base.offset_uv,
            ours.offset_uv,
            ours.offset_uv < base.offset_uv,
        ),
        (
            "CMRR (dB)",
            base.cmrr_db,
            ours.cmrr_db,
            ours.cmrr_db > base.cmrr_db,
        ),
        (
            "BandWidth (MHz)",
            base.bandwidth_mhz,
            ours.bandwidth_mhz,
            ours.bandwidth_mhz > base.bandwidth_mhz,
        ),
        (
            "DC Gain (dB)",
            base.dc_gain_db,
            ours.dc_gain_db,
            ours.dc_gain_db > base.dc_gain_db,
        ),
        (
            "Noise (uVrms)",
            base.noise_uvrms,
            ours.noise_uvrms,
            ours.noise_uvrms < base.noise_uvrms,
        ),
    ];
    for (name, b, o, better) in rows {
        println!(
            "{:<22}{:>14.2}{:>14.2}{:>10}",
            name,
            b,
            o,
            if better { "yes" } else { "no" }
        );
    }
    Ok(())
}
