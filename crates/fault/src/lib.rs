//! `af-fault`: deterministic fault injection, retry/backoff, and supervised
//! threads for the analogfold suite.
//!
//! The crate has three parts:
//!
//! 1. A global **failpoint registry**. Code under test declares named
//!    failpoints with the [`fail!`] macro (or calls [`should_fail`] /
//!    [`should_fail_keyed`] directly); the sites compile to a single relaxed
//!    atomic load when nothing is armed, so leaving them in production hot
//!    paths is free. Tests and chaos runs arm failpoints programmatically
//!    ([`arm`], [`arm_spec`]) or through the `AF_FAULT` environment variable
//!    (see [`arm_from_env`]).
//! 2. A [`RetryPolicy`] with exponential backoff, deterministic jitter, a
//!    total deadline, and an optional cross-operation [`RetryBudget`].
//! 3. A [`Supervisor`] that keeps a named thread alive across panics with
//!    backoff and exposes a degraded-state flag for health endpoints.
//!
//! # Determinism
//!
//! Whether a failpoint fires is a pure function of `(fault seed, failpoint
//! name, key)`, derived with the same SplitMix64 splitting that `afrt` uses
//! for seed derivation. Call sites that have a natural stable identity (a
//! sample index, a restart index) pass it as the key, so the set of injected
//! faults — and therefore the retry timeline and the final result — is
//! bit-identical at any thread count and any interleaving. Sites without a
//! natural key (e.g. the serve batch collector) fall back to a per-failpoint
//! counter, which is deterministic only under single-threaded access; chaos
//! tests assert *recovery* for those, not bit-identity.
//!
//! Retries compose the attempt number into the key (see [`mix`]), so each
//! attempt gets an independent draw and a transient injected fault can stop
//! firing once retries kick in.
//!
//! # Spec grammar
//!
//! `AF_FAULT` (and [`arm_spec`]) accept a comma-separated list of
//! `name:mode:prob[:max_fires]` entries:
//!
//! ```text
//! AF_FAULT="persist.save_shard:err:0.1,sim.eval:panic:0.02,serve.batch:panic:1.0:1"
//! AF_FAULT_SEED=42
//! ```
//!
//! `mode` is `err` (the site returns its injected error), `panic` (the site
//! panics), `nan` (the site substitutes a non-finite value), or `abort` (the
//! whole process dies on the spot, like `kill -9` — used by fleet chaos runs
//! to kill a worker mid-shard); `prob` is the per-evaluation activation
//! probability in `[0, 1]`; the optional `max_fires` caps how many times the
//! failpoint fires in total (handy for one-shot crash tests like
//! `serve.batch:panic:1.0:1` or `fleet.worker_kill:abort:1.0:1`).
//!
//! The `delay` mode carries a milliseconds payload and shifts the grammar by
//! one field — `name:delay:<ms>:prob[:max_fires]`, e.g.
//! `serve.batch.delay:delay:400:1.0` — and makes the site *slow* instead of
//! broken: it sleeps and then proceeds normally (used by tail-tolerance
//! chaos runs to exercise hedging and latency-tripped circuit breakers).

mod retry;
mod supervisor;

pub use retry::{RetryBudget, RetryPolicy};
pub use supervisor::{Supervisor, SupervisorHealth};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard, RwLock};

/// What an armed failpoint injects at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The site returns its injected error value.
    Err,
    /// The site panics (exercises supervisors and panic isolation).
    Panic,
    /// The site substitutes a non-finite value (exercises NaN guards).
    Nan,
    /// The whole process dies on the spot via [`std::process::abort`] — no
    /// unwinding, no destructors, no flushing — simulating a `kill -9`/OOM
    /// kill. Handled centrally in the firing path, so arming *any* existing
    /// failpoint in `abort` mode turns it into a crash site (exercises
    /// durable-write atomicity and fleet worker-death healing).
    Abort,
    /// The site blocks for the given number of milliseconds and then
    /// proceeds *normally* — the operation still succeeds, it is just slow.
    /// Like [`FaultMode::Abort`] this is handled centrally in the firing
    /// path (sleep, then report "did not fire" to the site), so arming any
    /// existing failpoint in `delay` mode turns it into a slow site with no
    /// per-site match arm. This is how chaos tests make a worker *slow*
    /// rather than dead, exercising hedging and latency-tripped breakers.
    Delay(u64),
}

impl FaultMode {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "err" => Ok(Self::Err),
            "panic" => Ok(Self::Panic),
            "nan" => Ok(Self::Nan),
            "abort" => Ok(Self::Abort),
            other => Err(format!(
                "unknown fault mode `{other}` (expected err|panic|nan|abort|delay)"
            )),
        }
    }
}

/// Observed activity of one failpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// How many times the site evaluated the failpoint.
    pub evals: u64,
    /// How many times it actually fired.
    pub fires: u64,
}

struct Failpoint {
    mode: FaultMode,
    prob: f64,
    max_fires: Option<u64>,
    evals: AtomicU64,
    fires: AtomicU64,
    /// Stream position for unkeyed sites (see module docs on determinism).
    counter: AtomicU64,
}

/// Fast-path flag: a single relaxed load decides "disarmed, do nothing".
static ARMED: AtomicBool = AtomicBool::new(false);
static FAULT_SEED: AtomicU64 = AtomicU64::new(0);
static REGISTRY: LazyLock<RwLock<HashMap<String, Arc<Failpoint>>>> =
    LazyLock::new(|| RwLock::new(HashMap::new()));
/// Serializes tests that arm global failpoints (see [`scenario`]).
static SCENARIO_LOCK: Mutex<()> = Mutex::new(());

/// Whether any failpoint is armed. This is the only cost a disarmed
/// failpoint pays on the hot path.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Sets the seed that drives every activation decision (also read from
/// `AF_FAULT_SEED` by [`arm_from_env`]).
pub fn set_seed(seed: u64) {
    FAULT_SEED.store(seed, Ordering::Relaxed);
}

/// The current fault seed.
#[must_use]
pub fn seed() -> u64 {
    FAULT_SEED.load(Ordering::Relaxed)
}

/// Composes two values into one failpoint key (SplitMix64 mixing, the same
/// finalizer `afrt` uses for seed splitting). Use it to fold a retry
/// attempt into a stable identity: `mix(sample_index, attempt)`.
#[inline]
#[must_use]
pub fn mix(a: u64, b: u64) -> u64 {
    afrt::split_seed(a, b)
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps a u64 to `[0, 1)` using the top 53 bits.
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Arms `name` with activation probability `prob` (clamped to `[0, 1]`).
pub fn arm(name: &str, mode: FaultMode, prob: f64) {
    arm_limited(name, mode, prob, None);
}

/// Arms `name`, firing at most `max_fires` times when `Some`.
pub fn arm_limited(name: &str, mode: FaultMode, prob: f64, max_fires: Option<u64>) {
    let mut map = REGISTRY
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.insert(
        name.to_string(),
        Arc::new(Failpoint {
            mode,
            prob: prob.clamp(0.0, 1.0),
            max_fires,
            evals: AtomicU64::new(0),
            fires: AtomicU64::new(0),
            counter: AtomicU64::new(0),
        }),
    );
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms one failpoint.
pub fn disarm(name: &str) {
    let mut map = REGISTRY
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.remove(name);
    if map.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Disarms everything and resets the seed to 0.
pub fn disarm_all() {
    let mut map = REGISTRY
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.clear();
    ARMED.store(false, Ordering::Relaxed);
    FAULT_SEED.store(0, Ordering::Relaxed);
}

/// Parses and arms a comma-separated `name:mode:prob[:max_fires]` spec.
/// Returns how many failpoints were armed.
///
/// # Errors
///
/// On any malformed entry (nothing from the bad spec is armed).
pub fn arm_spec(spec: &str) -> Result<usize, String> {
    let mut parsed = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.split(':').collect();
        // `delay` carries a milliseconds payload, shifting the grammar by
        // one field: name:delay:<ms>:prob[:max_fires].
        let (mode, rest) = if parts.get(1) == Some(&"delay") {
            if parts.len() < 4 || parts.len() > 5 {
                return Err(format!(
                    "bad fault spec entry `{entry}` (expected name:delay:<ms>:prob[:max_fires])"
                ));
            }
            let ms: u64 = parts[2]
                .parse()
                .map_err(|_| format!("bad delay ms `{}` in `{entry}`", parts[2]))?;
            (FaultMode::Delay(ms), &parts[3..])
        } else {
            if parts.len() < 3 || parts.len() > 4 {
                return Err(format!(
                    "bad fault spec entry `{entry}` (expected name:mode:prob[:max_fires])"
                ));
            }
            (FaultMode::parse(parts[1])?, &parts[2..])
        };
        let prob: f64 = rest[0]
            .parse()
            .map_err(|_| format!("bad probability `{}` in `{entry}`", rest[0]))?;
        let max_fires = match rest.get(1) {
            None => None,
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| format!("bad max_fires `{v}` in `{entry}`"))?,
            ),
        };
        parsed.push((parts[0].to_string(), mode, prob, max_fires));
    }
    let n = parsed.len();
    for (name, mode, prob, max_fires) in parsed {
        arm_limited(&name, mode, prob, max_fires);
    }
    Ok(n)
}

/// Arms failpoints from `AF_FAULT` and seeds from `AF_FAULT_SEED`.
/// Returns how many failpoints were armed (0 when the variable is unset).
///
/// # Errors
///
/// When `AF_FAULT` is set but malformed.
pub fn arm_from_env() -> Result<usize, String> {
    if let Ok(seed) = std::env::var("AF_FAULT_SEED") {
        let parsed = seed
            .parse::<u64>()
            .map_err(|_| format!("bad AF_FAULT_SEED `{seed}`"))?;
        set_seed(parsed);
    }
    match std::env::var("AF_FAULT") {
        Ok(spec) => arm_spec(&spec),
        Err(_) => Ok(0),
    }
}

fn lookup(name: &str) -> Option<Arc<Failpoint>> {
    REGISTRY
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(name)
        .cloned()
}

fn decide(fp: &Failpoint, name: &str, key: u64) -> Option<FaultMode> {
    fp.evals.fetch_add(1, Ordering::Relaxed);
    let draw = u01(afrt::split_seed(seed() ^ fnv1a(name), key));
    if draw >= fp.prob {
        return None;
    }
    if let Some(max) = fp.max_fires {
        // The slot index returned by `fetch_add` is what decides, so the cap
        // stays strict under concurrency; the losing increment is backed out
        // only so `stats().fires` counts actual fires, not reservations.
        if fp.fires.fetch_add(1, Ordering::Relaxed) >= max {
            fp.fires.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
    } else {
        fp.fires.fetch_add(1, Ordering::Relaxed);
    }
    af_obs::counter(&format!("fault.fired.{name}"), 1);
    if fp.mode == FaultMode::Abort {
        // Centralized so every `fail!` site is abort-capable without its own
        // match arm. eprintln is best-effort breadcrumb; abort skips unwind.
        eprintln!("af-fault: aborting process at failpoint `{name}` (key {key})");
        std::process::abort();
    }
    if let FaultMode::Delay(ms) = fp.mode {
        // Also centralized: the site sleeps here and then proceeds as if
        // nothing fired, so every existing failpoint is delay-capable and a
        // delayed operation still *succeeds* (slow ≠ broken). The registry
        // lock is not held here — only the failpoint's Arc.
        std::thread::sleep(std::time::Duration::from_millis(ms));
        return None;
    }
    Some(fp.mode)
}

/// Whether an armed failpoint with activation probability `prob` would fire
/// for `(seed, name, key)` — the same pure decision [`should_fail_keyed`]
/// makes, exposed so tests can *choose* a seed with a desired firing pattern
/// (e.g. scan for a seed where exactly one of three worker keys fires) by
/// evaluating the function instead of trial-arming the global registry.
#[must_use]
pub fn would_fire(seed: u64, name: &str, key: u64, prob: f64) -> bool {
    u01(afrt::split_seed(seed ^ fnv1a(name), key)) < prob.clamp(0.0, 1.0)
}

/// Evaluates failpoint `name` with a per-failpoint stream counter as the
/// key. Deterministic only under single-threaded access to this failpoint;
/// prefer [`should_fail_keyed`] where the site has a stable identity.
#[inline]
#[must_use]
pub fn should_fail(name: &str) -> Option<FaultMode> {
    if !enabled() {
        return None;
    }
    let fp = lookup(name)?;
    let key = fp.counter.fetch_add(1, Ordering::Relaxed);
    decide(&fp, name, key)
}

/// Evaluates failpoint `name` for a caller-supplied stable `key`. The
/// decision is a pure function of `(seed, name, key)`, independent of
/// scheduling and thread count (module docs).
#[inline]
#[must_use]
pub fn should_fail_keyed(name: &str, key: u64) -> Option<FaultMode> {
    if !enabled() {
        return None;
    }
    let fp = lookup(name)?;
    decide(&fp, name, key)
}

/// Activity counters of one failpoint, if armed.
#[must_use]
pub fn stats(name: &str) -> Option<FaultStats> {
    let fp = lookup(name)?;
    Some(FaultStats {
        evals: fp.evals.load(Ordering::Relaxed),
        fires: fp.fires.load(Ordering::Relaxed),
    })
}

/// Activity counters of every armed failpoint, sorted by name.
#[must_use]
pub fn all_stats() -> Vec<(String, FaultStats)> {
    let map = REGISTRY
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out: Vec<(String, FaultStats)> = map
        .iter()
        .map(|(name, fp)| {
            (
                name.clone(),
                FaultStats {
                    evals: fp.evals.load(Ordering::Relaxed),
                    fires: fp.fires.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The canonical message carried by injected errors. Sites that return an
/// injected error should embed this so [`is_injected`] (and transient-error
/// classification built on it) can recognize the fault.
#[must_use]
pub fn injected(name: &str) -> String {
    format!("injected fault at failpoint `{name}`")
}

/// Whether an error message originates from an injected fault. Injected
/// faults are transient by contract: the real operation never ran.
#[must_use]
pub fn is_injected(msg: &str) -> bool {
    msg.contains("injected fault at failpoint") || msg.contains("injected panic at failpoint")
}

/// RAII guard for tests that arm global failpoints: takes a process-wide
/// lock (so chaos tests in one binary never see each other's faults) and
/// disarms everything on entry and on drop.
pub struct Scenario {
    _guard: MutexGuard<'static, ()>,
}

/// Enters an isolated fault scenario. Hold the returned guard for the whole
/// test.
#[must_use]
pub fn scenario() -> Scenario {
    let guard = SCENARIO_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    disarm_all();
    Scenario { _guard: guard }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Declares a failpoint.
///
/// - `fail!("name")` — panics when the failpoint fires in `panic` mode;
///   other modes are ignored (for sites that can only crash).
/// - `fail!("name", err_expr)` — `return Err(err_expr)` on `err`/`nan`,
///   panic on `panic`.
/// - `fail!("name", key = k, err_expr)` — same, with deterministic keyed
///   activation.
///
/// All forms compile to one relaxed atomic load when nothing is armed.
#[macro_export]
macro_rules! fail {
    ($name:expr) => {
        if let Some($crate::FaultMode::Panic) = $crate::should_fail($name) {
            panic!("injected panic at failpoint `{}`", $name);
        }
    };
    ($name:expr, key = $key:expr) => {
        if let Some($crate::FaultMode::Panic) = $crate::should_fail_keyed($name, $key) {
            panic!("injected panic at failpoint `{}`", $name);
        }
    };
    ($name:expr, $err:expr) => {
        if let Some(mode) = $crate::should_fail($name) {
            if let $crate::FaultMode::Panic = mode {
                panic!("injected panic at failpoint `{}`", $name);
            }
            return Err($err);
        }
    };
    ($name:expr, key = $key:expr, $err:expr) => {
        if let Some(mode) = $crate::should_fail_keyed($name, $key) {
            if let $crate::FaultMode::Panic = mode {
                panic!("injected panic at failpoint `{}`", $name);
            }
            return Err($err);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_free_and_never_fires() {
        let _s = scenario();
        assert!(!enabled());
        assert_eq!(should_fail("nope"), None);
        assert_eq!(should_fail_keyed("nope", 7), None);
    }

    #[test]
    fn spec_parses_and_arms() {
        let _s = scenario();
        let n = arm_spec("a.b:err:0.5, c.d:panic:1.0:2").unwrap();
        assert_eq!(n, 2);
        assert!(enabled());
        assert!(stats("a.b").is_some());
        assert!(arm_spec("bad").is_err());
        assert!(arm_spec("x:weird:0.5").is_err());
        assert!(arm_spec("x:err:notaprob").is_err());
    }

    #[test]
    fn keyed_firing_is_pure_in_seed_name_key() {
        let _s = scenario();
        set_seed(42);
        arm("pure.site", FaultMode::Err, 0.5);
        let first: Vec<bool> = (0..256)
            .map(|k| should_fail_keyed("pure.site", k).is_some())
            .collect();
        let second: Vec<bool> = (0..256)
            .map(|k| should_fail_keyed("pure.site", k).is_some())
            .collect();
        assert_eq!(first, second);
        let fired = first.iter().filter(|f| **f).count();
        assert!(
            fired > 64 && fired < 192,
            "p=0.5 should fire ~half: {fired}"
        );
        // A different seed draws a different schedule.
        set_seed(43);
        let third: Vec<bool> = (0..256)
            .map(|k| should_fail_keyed("pure.site", k).is_some())
            .collect();
        assert_ne!(first, third);
    }

    #[test]
    fn max_fires_caps_total_fires() {
        let _s = scenario();
        arm_limited("one.shot", FaultMode::Panic, 1.0, Some(1));
        assert_eq!(should_fail("one.shot"), Some(FaultMode::Panic));
        for _ in 0..10 {
            assert_eq!(should_fail("one.shot"), None);
        }
        let st = stats("one.shot").unwrap();
        assert_eq!(st.evals, 11);
    }

    #[test]
    fn prob_bounds_are_absolute() {
        let _s = scenario();
        arm("always", FaultMode::Err, 1.0);
        arm("never", FaultMode::Err, 0.0);
        for k in 0..64 {
            assert!(should_fail_keyed("always", k).is_some());
            assert!(should_fail_keyed("never", k).is_none());
        }
    }

    #[test]
    fn fail_macro_err_form_returns() {
        let _s = scenario();
        arm("macro.err", FaultMode::Err, 1.0);
        fn site() -> Result<u32, String> {
            fail!("macro.err", crate::injected("macro.err"));
            Ok(7)
        }
        let err = site().unwrap_err();
        assert!(is_injected(&err));
        disarm("macro.err");
        assert_eq!(site().unwrap(), 7);
    }

    #[test]
    fn delay_spec_parses_and_sleeps_then_succeeds() {
        let _s = scenario();
        let n = arm_spec("slow.site:delay:30:1.0").unwrap();
        assert_eq!(n, 1);
        let t0 = std::time::Instant::now();
        // Fires (sleeps) but reports None, so err-form sites still succeed.
        assert_eq!(should_fail_keyed("slow.site", 0), None);
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(25),
            "delay did not sleep: {:?}",
            t0.elapsed()
        );
        assert_eq!(stats("slow.site").unwrap().fires, 1);
        // Malformed delay specs are rejected whole.
        assert!(arm_spec("x:delay:1.0").is_err());
        assert!(arm_spec("x:delay:abc:1.0").is_err());
        assert!(arm_spec("x:delay:5:1.0:2:9").is_err());
    }

    #[test]
    fn would_fire_matches_keyed_decision() {
        let _s = scenario();
        set_seed(42);
        arm("pure.scan", FaultMode::Err, 0.34);
        for k in 0..128 {
            assert_eq!(
                would_fire(42, "pure.scan", k, 0.34),
                should_fail_keyed("pure.scan", k).is_some(),
                "key {k}"
            );
        }
    }

    #[test]
    fn fail_macro_panic_form_panics() {
        let _s = scenario();
        arm("macro.panic", FaultMode::Panic, 1.0);
        let caught = std::panic::catch_unwind(|| fail!("macro.panic"));
        let msg = afrt::panic_message(caught.unwrap_err().as_ref());
        assert!(is_injected(&msg), "{msg}");
    }
}
