//! Retry with exponential backoff, deterministic jitter, total deadline,
//! and an optional shared retry budget.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// How an operation is retried. All delays are expressed in milliseconds so
/// the policy is `Copy`-cheap, comparable, and trivially serializable.
///
/// Jitter is **deterministic**: the factor applied to attempt `n` is drawn
/// from SplitMix64 of `(seed, n)`, so two runs with the same policy produce
/// the same backoff timeline — a requirement for the bit-identical chaos
/// tests (`tests/chaos.rs`) and the retry-determinism proptests.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Exponential growth factor between consecutive delays.
    pub multiplier: f64,
    /// Jitter amplitude as a fraction of the delay: the applied factor is
    /// uniform in `[1 - jitter, 1 + jitter]`. `0.0` disables jitter.
    pub jitter: f64,
    /// Total wall-clock budget across all attempts (`None` = unbounded).
    /// Once exceeded, the next failure is returned instead of retried.
    pub deadline_ms: Option<u64>,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_ms: 10,
            max_delay_ms: 1_000,
            multiplier: 2.0,
            jitter: 0.1,
            deadline_ms: None,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A fast policy for tests: `attempts` tries with sub-millisecond
    /// backoff, no jitter.
    #[must_use]
    pub fn quick(attempts: u32) -> Self {
        Self {
            max_attempts: attempts.max(1),
            base_delay_ms: 0,
            max_delay_ms: 0,
            jitter: 0.0,
            ..Self::default()
        }
    }

    /// The (deterministic) delay before retry number `retry` (1-based: the
    /// delay slept between attempt `retry` and attempt `retry + 1`).
    #[must_use]
    pub fn delay_ms(&self, retry: u32) -> u64 {
        if self.base_delay_ms == 0 {
            return 0;
        }
        let exp = self
            .multiplier
            .max(1.0)
            .powi(retry.saturating_sub(1) as i32);
        let raw = (self.base_delay_ms as f64 * exp).min(self.max_delay_ms as f64);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return raw as u64;
        }
        // Uniform in [1 - jitter, 1 + jitter], drawn from SplitMix64 of
        // (seed, retry): same policy, same timeline, every run.
        let u = (afrt::split_seed(self.seed, u64::from(retry)) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64);
        let factor = 1.0 - jitter + 2.0 * jitter * u;
        (raw * factor).round() as u64
    }

    /// The full deterministic backoff timeline: delays slept after attempts
    /// `1..max_attempts` when every attempt fails transiently.
    #[must_use]
    pub fn timeline(&self) -> Vec<u64> {
        (1..self.max_attempts).map(|r| self.delay_ms(r)).collect()
    }

    /// Runs `op` under this policy. `op` receives the 0-based attempt
    /// number. A failure is retried only while `is_transient` approves it,
    /// attempts remain, and the deadline is not exhausted; otherwise the
    /// last error is returned.
    ///
    /// Obs counters (when recording is on): `retry.<name>.retries` and
    /// `retry.<name>.exhausted`.
    ///
    /// # Errors
    ///
    /// The last error from `op` once retrying stops.
    pub fn run<T, E>(
        &self,
        name: &str,
        is_transient: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_inner(name, None, is_transient, &mut op)
    }

    /// [`RetryPolicy::run`] gated by a shared [`RetryBudget`]: each retry
    /// withdraws one token, and a success after retries deposits back.
    /// Budget exhaustion stops retrying (counter `retry.<name>.budget_dry`).
    ///
    /// # Errors
    ///
    /// The last error from `op` once retrying stops.
    pub fn run_budgeted<T, E>(
        &self,
        name: &str,
        budget: &RetryBudget,
        is_transient: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_inner(name, Some(budget), is_transient, &mut op)
    }

    fn run_inner<T, E>(
        &self,
        name: &str,
        budget: Option<&RetryBudget>,
        is_transient: impl Fn(&E) -> bool,
        op: &mut impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let started = Instant::now();
        let max = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => {
                    if attempt > 0 {
                        if let Some(b) = budget {
                            b.deposit();
                        }
                    }
                    return Ok(v);
                }
                Err(e) => {
                    let retry = attempt + 1; // 1-based retry number
                    let out_of_time = self
                        .deadline_ms
                        .is_some_and(|d| started.elapsed() >= Duration::from_millis(d));
                    if retry >= max || !is_transient(&e) || out_of_time {
                        af_obs::counter(&format!("retry.{name}.exhausted"), 1);
                        return Err(e);
                    }
                    if let Some(b) = budget {
                        if !b.try_withdraw() {
                            af_obs::counter(&format!("retry.{name}.budget_dry"), 1);
                            return Err(e);
                        }
                    }
                    af_obs::counter(&format!("retry.{name}.retries"), 1);
                    let delay = self.delay_ms(retry);
                    if delay > 0 {
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                    attempt += 1;
                }
            }
        }
    }
}

/// A shared token bucket bounding how much retrying a whole subsystem may
/// do: retry storms under a persistent outage drain it, after which
/// operations fail fast; successes slowly refill it.
///
/// Tokens are tracked in thousandths so fractional deposits work without
/// floats in the hot path.
#[derive(Debug)]
pub struct RetryBudget {
    milli_tokens: AtomicI64,
    max_milli: i64,
    deposit_milli: i64,
}

impl RetryBudget {
    /// A budget of `max_tokens` retries, refilled by `deposit_per_success`
    /// tokens on every successful retried operation.
    #[must_use]
    pub fn new(max_tokens: u32, deposit_per_success: f64) -> Self {
        let max_milli = i64::from(max_tokens) * 1_000;
        Self {
            milli_tokens: AtomicI64::new(max_milli),
            max_milli,
            deposit_milli: (deposit_per_success.max(0.0) * 1_000.0) as i64,
        }
    }

    /// Takes one retry token; `false` means the budget is dry.
    pub fn try_withdraw(&self) -> bool {
        let prev = self.milli_tokens.fetch_sub(1_000, Ordering::Relaxed);
        if prev < 1_000 {
            self.milli_tokens.fetch_add(1_000, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Credits a successful retried operation.
    pub fn deposit(&self) {
        let prev = self
            .milli_tokens
            .fetch_add(self.deposit_milli, Ordering::Relaxed);
        if prev + self.deposit_milli > self.max_milli {
            self.milli_tokens.store(self.max_milli, Ordering::Relaxed);
        }
    }

    /// Remaining whole tokens.
    #[must_use]
    pub fn remaining(&self) -> u32 {
        (self.milli_tokens.load(Ordering::Relaxed).max(0) / 1_000) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 50,
            multiplier: 2.0,
            jitter: 0.2,
            deadline_ms: None,
            seed: 7,
        };
        let a = p.timeline();
        let b = p.timeline();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for (i, d) in a.iter().enumerate() {
            let raw = (10.0 * 2.0f64.powi(i as i32)).min(50.0);
            assert!((*d as f64) >= raw * 0.8 - 1.0 && (*d as f64) <= raw * 1.2 + 1.0);
        }
        // Different seed, different jitter.
        let c = RetryPolicy { seed: 8, ..p }.timeline();
        assert_ne!(a, c);
    }

    #[test]
    fn retries_transient_until_success() {
        let p = RetryPolicy::quick(5);
        let mut calls = 0;
        let out: Result<u32, String> = p.run(
            "test.op",
            |_| true,
            |attempt| {
                calls += 1;
                if attempt < 3 {
                    Err("transient".to_string())
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(calls, 4);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let p = RetryPolicy::quick(5);
        let mut calls = 0;
        let out: Result<(), String> = p.run(
            "test.perm",
            |e: &String| e.contains("transient"),
            |_| {
                calls += 1;
                Err("permanent".to_string())
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempts_are_exhausted() {
        let p = RetryPolicy::quick(3);
        let mut calls = 0;
        let out: Result<(), String> = p.run(
            "test.exhaust",
            |_| true,
            |_| {
                calls += 1;
                Err("transient".to_string())
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn deadline_stops_retrying() {
        let p = RetryPolicy {
            max_attempts: 1_000,
            base_delay_ms: 5,
            max_delay_ms: 5,
            jitter: 0.0,
            deadline_ms: Some(20),
            ..RetryPolicy::default()
        };
        let mut calls = 0u32;
        let out: Result<(), String> = p.run(
            "test.deadline",
            |_| true,
            |_| {
                calls += 1;
                Err("transient".to_string())
            },
        );
        assert!(out.is_err());
        assert!(calls < 100, "deadline should stop long before max_attempts");
    }

    #[test]
    fn budget_drains_and_refills() {
        let budget = RetryBudget::new(2, 1.0);
        let p = RetryPolicy::quick(10);
        // Drains: two retries allowed, then dry.
        let out: Result<(), String> =
            p.run_budgeted("test.budget", &budget, |_| true, |_| Err("t".into()));
        assert!(out.is_err());
        assert_eq!(budget.remaining(), 0);
        assert!(!budget.try_withdraw());
        // A success after one retry deposits back.
        let out: Result<u32, String> = p.run_budgeted(
            "test.budget",
            &budget,
            |_| true,
            |attempt| if attempt == 0 { Err("t".into()) } else { Ok(1) },
        );
        // First retry had no budget... withdraw failed -> error. Deposit only
        // happens on success, so seed the bucket and try again.
        let _ = out;
        budget.deposit();
        assert_eq!(budget.remaining(), 1);
        let out: Result<u32, String> = p.run_budgeted(
            "test.budget",
            &budget,
            |_| true,
            |attempt| if attempt == 0 { Err("t".into()) } else { Ok(1) },
        );
        assert_eq!(out.unwrap(), 1);
        assert_eq!(budget.remaining(), 1, "success refunded the spent token");
    }
}
