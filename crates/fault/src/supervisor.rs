//! A supervisor for named worker threads: the supervised body is re-invoked
//! after a panic (with backoff), and a degraded-state flag is exposed for
//! health endpoints.
//!
//! Semantics:
//!
//! - A **normal return** from the body means the worker is done (its input
//!   queue closed, shutdown requested); the supervisor exits.
//! - A **panic** is caught, logged (`af_obs::warn` + counter
//!   `supervisor.<name>.restarts`), and the body is re-invoked after the
//!   backoff delay for the current consecutive-panic count. A run that
//!   survives longer than the recovery grace resets that count.
//! - While restarting — and for a grace period after the restart — the
//!   supervisor reports [`Supervisor::is_degraded`]` == true`, which
//!   `/healthz` surfaces as `status: "degraded"` before recovering to
//!   `"ok"`.
//! - [`Supervisor::stop`] only marks intent: the body is responsible for
//!   returning (typically because its queue was closed). No further
//!   restarts happen after `stop`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::RetryPolicy;

/// A point-in-time snapshot of a supervisor's health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorHealth {
    /// The supervised thread's name.
    pub name: String,
    /// Total panics recovered so far.
    pub restarts: u64,
    /// Whether the worker is currently degraded (restarting or inside the
    /// post-restart grace window).
    pub degraded: bool,
    /// The message of the most recent panic, if any.
    pub last_error: Option<String>,
}

struct Shared {
    name: String,
    stop: AtomicBool,
    running: AtomicBool,
    restarts: AtomicU64,
    degraded_until: Mutex<Option<Instant>>,
    last_error: Mutex<Option<String>>,
}

/// Handle to a supervised thread (see module docs for semantics).
pub struct Supervisor {
    shared: Arc<Shared>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns `body` on a thread named `name`, restarting it on panic with
    /// `backoff` delays and reporting degraded for `grace` after each
    /// restart.
    ///
    /// # Errors
    ///
    /// When the OS refuses to spawn the thread.
    pub fn spawn<F>(
        name: &str,
        backoff: RetryPolicy,
        grace: Duration,
        body: F,
    ) -> std::io::Result<Self>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            name: name.to_string(),
            stop: AtomicBool::new(false),
            running: AtomicBool::new(true),
            restarts: AtomicU64::new(0),
            degraded_until: Mutex::new(None),
            last_error: Mutex::new(None),
        });
        let sh = Arc::clone(&shared);
        let thread = thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let mut consecutive = 0u32;
                loop {
                    let run_started = Instant::now();
                    match catch_unwind(AssertUnwindSafe(&body)) {
                        Ok(()) => break, // worker finished cleanly
                        Err(payload) => {
                            if run_started.elapsed() >= grace {
                                consecutive = 0;
                            }
                            consecutive += 1;
                            sh.restarts.fetch_add(1, Ordering::Relaxed);
                            let msg = afrt::panic_message(payload.as_ref());
                            af_obs::counter(&format!("supervisor.{}.restarts", sh.name), 1);
                            af_obs::warn(&format!(
                            "supervisor `{}`: worker panicked ({msg}); restart #{} after backoff",
                            sh.name,
                            sh.restarts.load(Ordering::Relaxed)
                        ));
                            let delay = Duration::from_millis(backoff.delay_ms(consecutive));
                            *sh.degraded_until
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) =
                                Some(Instant::now() + delay + grace);
                            *sh.last_error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(msg);
                            if sh.stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // Interruptible backoff sleep so shutdown is prompt.
                            let deadline = Instant::now() + delay;
                            while Instant::now() < deadline {
                                if sh.stop.load(Ordering::Relaxed) {
                                    break;
                                }
                                thread::sleep(Duration::from_millis(
                                    ((deadline - Instant::now()).as_millis() as u64).min(10),
                                ));
                            }
                            if sh.stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                    }
                }
                sh.running.store(false, Ordering::Relaxed);
            })?;
        Ok(Self {
            shared,
            thread: Some(thread),
        })
    }

    /// Whether the worker is restarting or inside its post-restart grace
    /// window.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.shared
            .degraded_until
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some_and(|until| Instant::now() < until)
    }

    /// Whether the supervised loop is still alive.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Total panics recovered so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::Relaxed)
    }

    /// A point-in-time health snapshot.
    #[must_use]
    pub fn health(&self) -> SupervisorHealth {
        SupervisorHealth {
            name: self.shared.name.clone(),
            restarts: self.restarts(),
            degraded: self.is_degraded(),
            last_error: self
                .shared
                .last_error
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
        }
    }

    /// Marks shutdown intent: no restart happens after the current run
    /// returns or panics. The body itself must return for the thread to
    /// exit (close its input queue first).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Stops and joins the supervised thread.
    pub fn join(&mut self) {
        self.stop();
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn restarts_after_panic_then_recovers() {
        let runs = Arc::new(AtomicU32::new(0));
        let runs2 = Arc::clone(&runs);
        let sup = Supervisor::spawn(
            "test-worker",
            RetryPolicy::quick(4),
            Duration::from_millis(40),
            move || {
                let n = runs2.fetch_add(1, Ordering::SeqCst);
                if n == 0 {
                    panic!("boom");
                }
                // Second run: finish cleanly.
            },
        )
        .unwrap();
        // The panic happened and the worker was restarted.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sup.is_running() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(!sup.is_running());
        assert_eq!(sup.restarts(), 1);
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        let health = sup.health();
        assert_eq!(health.last_error.as_deref(), Some("boom"));
        // Degradation clears once the grace window passes.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sup.is_degraded() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(!sup.is_degraded());
    }

    #[test]
    fn clean_return_never_degrades() {
        let mut sup = Supervisor::spawn(
            "test-clean",
            RetryPolicy::quick(2),
            Duration::from_millis(10),
            || {},
        )
        .unwrap();
        sup.join();
        assert!(!sup.is_degraded());
        assert_eq!(sup.restarts(), 0);
        assert!(sup.health().last_error.is_none());
    }

    #[test]
    fn stop_prevents_further_restarts() {
        let runs = Arc::new(AtomicU32::new(0));
        let runs2 = Arc::clone(&runs);
        let stop_gate = Arc::new(AtomicBool::new(false));
        let gate2 = Arc::clone(&stop_gate);
        let mut sup = Supervisor::spawn(
            "test-stop",
            RetryPolicy {
                max_attempts: 100,
                base_delay_ms: 20,
                max_delay_ms: 20,
                jitter: 0.0,
                ..RetryPolicy::default()
            },
            Duration::from_millis(10),
            move || {
                runs2.fetch_add(1, Ordering::SeqCst);
                if !gate2.load(Ordering::SeqCst) {
                    panic!("keep crashing");
                }
            },
        )
        .unwrap();
        // Let it crash at least once, then stop during backoff.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sup.restarts() == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        stop_gate.store(true, Ordering::SeqCst);
        sup.join();
        assert!(!sup.is_running());
    }
}
