//! Property tests for the determinism contract: keyed failpoint decisions
//! and retry schedules are pure functions of `(fault seed, site, key)` and
//! of the policy, so they cannot depend on thread count or scheduling.
//!
//! Each case holds [`af_fault::scenario`] while the registry is armed, so
//! cases never observe each other's failpoints.

use af_fault::{FaultMode, RetryPolicy};
use proptest::prelude::*;

/// Evaluates the armed `prop.site` failpoint for keys `0..n` via an afrt
/// `par_map` fan-out at the given worker count.
fn firing_pattern(threads: usize, n: u64) -> Vec<bool> {
    let runtime = afrt::Runtime::with_threads(threads);
    let keys: Vec<u64> = (0..n).collect();
    runtime
        .par_map(&keys, |_, k| {
            af_fault::should_fail_keyed("prop.site", *k).is_some()
        })
        .unwrap()
}

/// Runs `n` flaky operations under `policy`; operation `i` fails while the
/// `prop.flaky` failpoint fires for key `mix(i, attempt)`. Returns, per
/// operation, the result and the sequence of attempt numbers executed.
fn retry_outcomes(
    threads: usize,
    n: u64,
    policy: &RetryPolicy,
) -> Vec<(Result<u32, String>, Vec<u32>)> {
    let runtime = afrt::Runtime::with_threads(threads);
    let items: Vec<u64> = (0..n).collect();
    runtime
        .par_map(&items, |_, i| {
            let mut attempts = Vec::new();
            let result = policy.run(
                "prop.flaky",
                |_e: &String| true,
                |attempt| {
                    attempts.push(attempt);
                    match af_fault::should_fail_keyed(
                        "prop.flaky",
                        af_fault::mix(*i, u64::from(attempt)),
                    ) {
                        Some(_) => Err(format!("flaky {i} attempt {attempt}")),
                        None => Ok(attempt),
                    }
                },
            );
            (result, attempts)
        })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The per-key firing pattern is identical at 1, 4, and 8 workers and
    /// matches what a fresh arming of the same (seed, prob) produces.
    #[test]
    fn keyed_firing_is_pure_across_thread_counts(
        seed in 0u64..=u64::MAX,
        prob in 0.0f64..=1.0,
        n in 1u64..48,
    ) {
        let _guard = af_fault::scenario();
        af_fault::set_seed(seed);
        af_fault::arm("prop.site", FaultMode::Err, prob);
        let p1 = firing_pattern(1, n);
        let p4 = firing_pattern(4, n);
        let p8 = firing_pattern(8, n);
        prop_assert_eq!(&p1, &p4);
        prop_assert_eq!(&p1, &p8);

        // Re-arming resets stats but not the decision function.
        af_fault::disarm_all();
        af_fault::set_seed(seed);
        af_fault::arm("prop.site", FaultMode::Err, prob);
        prop_assert_eq!(&p1, &firing_pattern(1, n));
        let stats = af_fault::stats("prop.site").unwrap();
        prop_assert_eq!(stats.evals, n);
        prop_assert_eq!(stats.fires, p1.iter().filter(|f| **f).count() as u64);
    }

    /// Same seed + same failpoint schedule → identical retry timelines and
    /// identical per-operation results at 1, 4, and 8 afrt workers.
    #[test]
    fn retry_schedule_is_deterministic_across_thread_counts(
        fault_seed in 0u64..=u64::MAX,
        policy_seed in 0u64..=u64::MAX,
        prob in 0.0f64..0.9,
        n in 1u64..24,
    ) {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 0, // keyed draws make delays irrelevant; keep cases fast
            seed: policy_seed,
            ..RetryPolicy::default()
        };

        let _guard = af_fault::scenario();
        af_fault::set_seed(fault_seed);
        af_fault::arm("prop.flaky", FaultMode::Err, prob);
        let r1 = retry_outcomes(1, n, &policy);
        let r4 = retry_outcomes(4, n, &policy);
        let r8 = retry_outcomes(8, n, &policy);
        prop_assert_eq!(&r1, &r4);
        prop_assert_eq!(&r1, &r8);

        // Every operation either succeeded on the first clean attempt or
        // exhausted the policy with transient failures all the way down.
        for (i, (result, attempts)) in r1.iter().enumerate() {
            prop_assert!(!attempts.is_empty());
            prop_assert!(attempts.len() <= policy.max_attempts as usize);
            let expected: Vec<u32> = (0..attempts.len() as u32).collect();
            prop_assert_eq!(attempts, &expected, "op {} ran attempts in order", i);
            match result {
                Ok(attempt) => prop_assert_eq!(*attempt, *attempts.last().unwrap()),
                Err(_) => prop_assert_eq!(attempts.len(), policy.max_attempts as usize),
            }
        }
    }

    /// The backoff timeline is a pure function of the policy: recomputing
    /// it never disagrees, and delays respect base/cap/jitter bounds.
    #[test]
    fn timeline_is_pure_and_bounded(
        seed in 0u64..=u64::MAX,
        base in 1u64..200,
        attempts in 2u32..8,
        jitter in 0.0f64..=0.5,
    ) {
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_delay_ms: base,
            max_delay_ms: base * 16,
            jitter,
            seed,
            ..RetryPolicy::default()
        };
        let t = policy.timeline();
        prop_assert_eq!(t.len(), attempts as usize - 1);
        prop_assert_eq!(&t, &policy.timeline());
        for (i, d) in t.iter().enumerate() {
            let cap = (policy.max_delay_ms as f64 * (1.0 + jitter)).ceil() as u64;
            prop_assert!(*d <= cap, "delay {} of {} exceeds cap {}", d, i, cap);
        }
    }
}
