//! Post-layout performance metrics: the five quantities of the paper's
//! Table 2 (Offset Voltage, CMRR, BandWidth/UGB, DC Gain, Noise).

use serde::{Deserialize, Serialize};

use af_extract::Parasitics;
use af_netlist::{Circuit, NetId, Terminal};

use crate::mna::{AdjointSolution, Network, SimError, SupplyMode};
use crate::Complex;

/// Simulator settings.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Sweep start frequency (Hz).
    pub f_start: f64,
    /// Sweep stop frequency (Hz).
    pub f_stop: f64,
    /// Points per decade of the log sweep.
    pub points_per_decade: usize,
    /// Supply/bias voltage-noise PSD for coupling noise (V²/Hz).
    pub supply_noise_v2hz: f64,
    /// MOS channel-noise excess factor γ.
    pub gamma_noise: f64,
    /// Temperature in kelvin.
    pub temperature: f64,
    /// Overdrive used to recover bias currents from gm (V).
    pub v_overdrive: f64,
    /// Upper clamp on reported CMRR (intrinsic device-mismatch floor), dB.
    pub cmrr_cap_db: f64,
    /// Offset at which mismatch doubles the common-mode gain (µV). Links
    /// routing-induced offset to CMRR degradation (operating-point shift →
    /// Δgm/gm → CM-to-DM conversion), a DC nonlinearity a linear AC solve
    /// cannot produce on its own.
    pub cmrr_mismatch_ref_uv: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            f_start: 1e3,
            f_stop: 1e11,
            points_per_decade: 12,
            // ~4 µV/√Hz supply/bias noise: busy mixed-signal supplies seen by
            // an unregulated analog block.
            supply_noise_v2hz: 1.6e-11,
            gamma_noise: 0.8,
            temperature: 300.0,
            v_overdrive: 0.18,
            cmrr_cap_db: 160.0,
            cmrr_mismatch_ref_uv: 150.0,
        }
    }
}

/// The five Table 2 metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Performance {
    /// Input-referred offset voltage (µV); lower is better.
    pub offset_uv: f64,
    /// Common-mode rejection ratio (dB); higher is better.
    pub cmrr_db: f64,
    /// Unity-gain bandwidth (MHz) — the paper's "BandWidth"; higher is
    /// better.
    pub bandwidth_mhz: f64,
    /// Low-frequency differential gain (dB); higher is better.
    pub dc_gain_db: f64,
    /// Integrated output noise (µV rms); lower is better.
    pub noise_uvrms: f64,
}

impl Performance {
    /// The metrics as the canonical 5-vector
    /// `[offset_uv, cmrr_db, bandwidth_mhz, dc_gain_db, noise_uvrms]`.
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.offset_uv,
            self.cmrr_db,
            self.bandwidth_mhz,
            self.dc_gain_db,
            self.noise_uvrms,
        ]
    }

    /// Figure of merit with equal weighting ("equal weighting for all terms
    /// in FoM led to the best results"), normalized against a reference.
    ///
    /// Lower is better. Each term is a ratio to the reference value, with
    /// higher-is-better metrics inverted.
    pub fn fom_against(&self, reference: &Performance) -> f64 {
        let safe = |x: f64| x.abs().max(1e-9);
        (self.offset_uv / safe(reference.offset_uv))
            + (safe(reference.cmrr_db) / safe(self.cmrr_db))
            + (safe(reference.bandwidth_mhz) / safe(self.bandwidth_mhz))
            + (safe(reference.dc_gain_db) / safe(self.dc_gain_db))
            + (self.noise_uvrms / safe(reference.noise_uvrms))
    }
}

impl std::fmt::Display for Performance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "offset {:.1} uV, CMRR {:.1} dB, UGB {:.1} MHz, gain {:.1} dB, noise {:.1} uVrms",
            self.offset_uv, self.cmrr_db, self.bandwidth_mhz, self.dc_gain_db, self.noise_uvrms
        )
    }
}

/// Simulates a circuit, optionally annotated with extracted parasitics.
///
/// `parasitics = None` reproduces the paper's "Schematic" column (no layout
/// effects, zero offset).
///
/// # Errors
///
/// [`SimError::Singular`] if the MNA system cannot be solved.
pub fn simulate(
    circuit: &Circuit,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
) -> Result<Performance, SimError> {
    let network = Network::build(
        circuit,
        parasitics,
        cfg.supply_noise_v2hz,
        cfg.gamma_noise,
        cfg.temperature,
    );
    let freqs = log_sweep(cfg.f_start, cfg.f_stop, cfg.points_per_decade);

    // Differential sweep.
    let dm = [Complex::real(0.5), Complex::real(-0.5)];
    let mut gains = Vec::with_capacity(freqs.len());
    for &f in &freqs {
        let sol = network.solve_at(omega(f), dm, &[])?;
        gains.push(network.output(&sol).abs());
    }
    let a0 = gains[0];
    let dc_gain_db = 20.0 * a0.max(1e-30).log10();
    // Gain–bandwidth product: A0 · f_-3dB. For a dominant-pole amplifier
    // this equals the unity-gain bandwidth (the paper's ŷ_UGB) while being
    // immune to high-frequency coupling-feedthrough plateaus that can push
    // the literal |H| = 1 crossing far past the amplifier's real speed.
    let f3db = first_crossing(&freqs, &gains, a0 / std::f64::consts::SQRT_2);
    let bandwidth_mhz = a0 * f3db / 1e6;

    // Offset via mismatch injection (zero without parasitics).
    let offset_uv = match parasitics {
        None => 0.0,
        Some(px) => offset_voltage(circuit, &network, px, cfg, a0)? * 1e6,
    };

    // Common-mode rejection at low frequency. The linear AC solve gives the
    // intrinsic common-mode gain; routing-induced offset shifts the DC
    // operating point (Δgm/gm ≈ V_os/V_ov), which converts common mode to
    // differential mode on top of it. That DC nonlinearity is folded in as a
    // multiplicative common-mode-gain penalty referenced to
    // `cmrr_mismatch_ref_uv`.
    let cm = [Complex::ONE, Complex::ONE];
    let sol_cm = network.solve_at(omega(cfg.f_start), cm, &[])?;
    let acm_intrinsic = network.output(&sol_cm).abs();
    let mismatch_factor = 1.0 + offset_uv / cfg.cmrr_mismatch_ref_uv;
    let acm = acm_intrinsic * mismatch_factor;
    let cmrr_db = (20.0 * (a0.max(1e-30) / acm.max(1e-30)).log10()).min(cfg.cmrr_cap_db);

    // Integrated output noise via adjoint transimpedances.
    let mut psd = Vec::with_capacity(freqs.len());
    for &f in &freqs {
        let adj = network.adjoint_at(omega(f))?;
        let mut s_out = 0.0;
        for src in network.noise_sources() {
            let z = (adj.z(src.p) - adj.z(src.n)).abs();
            s_out += src.psd.at(f) * z * z;
        }
        psd.push(s_out);
    }
    let mut noise_v2 = 0.0;
    for i in 1..freqs.len() {
        noise_v2 += 0.5 * (psd[i] + psd[i - 1]) * (freqs[i] - freqs[i - 1]);
    }
    let noise_uvrms = noise_v2.sqrt() * 1e6;

    Ok(Performance {
        offset_uv,
        cmrr_db,
        bandwidth_mhz,
        dc_gain_db,
        noise_uvrms,
    })
}

/// Input-referred offset.
///
/// The DC bias current of each net flows through its extracted wire
/// resistance, producing a series voltage drop across the wire's pi split
/// (primary → secondary). A series source of `v` in a wire of resistance `R`
/// is the Norton pair `±v/R = ±I_bias` injected at the split nodes, so its
/// output contribution is `I_bias · (z(secondary) − z(primary))`. For a
/// perfectly mirrored pair the two contributions cancel; any routing
/// asymmetry leaves a net differential error, referred to the input by the
/// DC gain.
fn offset_voltage(
    circuit: &Circuit,
    network: &Network,
    px: &Parasitics,
    cfg: &SimConfig,
    a_dm: f64,
) -> Result<f64, SimError> {
    let adj = network.adjoint_at(omega(cfg.f_start))?;
    let mut total = 0.0;
    for &(a, b) in &circuit.matched_net_pairs() {
        // Signed complex sum: the transimpedances of a mirrored pair have
        // opposite polarity toward the output, so identical wiring cancels
        // exactly and only the asymmetry survives.
        let err = bias_drop_output_error(circuit, network, &adj, px, a, cfg.v_overdrive)
            + bias_drop_output_error(circuit, network, &adj, px, b, cfg.v_overdrive);
        total += err.abs();
    }
    Ok(total / a_dm.max(1e-9))
}

/// Output error caused by the net's DC bias current crossing its wire
/// resistance: `I_bias · (z(secondary) − z(primary))` (signed complex).
fn bias_drop_output_error(
    circuit: &Circuit,
    network: &Network,
    adj: &AdjointSolution,
    px: &Parasitics,
    net: NetId,
    v_ov: f64,
) -> Complex {
    if px.net(net).resistance <= 1e-6 {
        return Complex::ZERO;
    }
    let i_bias = bias_current(circuit, net, v_ov);
    let z = adj.z(network.secondary(net)) - adj.z(network.primary(net));
    z * i_bias
}

/// Bias current flowing through a net's wiring: the sum of drain currents of
/// MOS devices whose drain sits on the net (`I_D = gm·V_ov/2`).
fn bias_current(circuit: &Circuit, net: NetId, v_ov: f64) -> f64 {
    circuit
        .pins()
        .iter()
        .filter(|p| p.net == net && p.terminal == Terminal::Drain)
        .filter_map(|p| circuit.device(p.device).params.as_mos())
        .map(|m| m.gm * v_ov / 2.0)
        .sum()
}

/// Power-supply rejection ratio at low frequency (dB): differential gain
/// over the vdd-to-output transfer — an *extension* beyond the paper's five
/// metrics, made possible by the supply-as-source network mode.
///
/// # Errors
///
/// [`SimError::Singular`] if either network cannot be solved.
pub fn psrr_db(
    circuit: &Circuit,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
) -> Result<f64, SimError> {
    let w = omega(cfg.f_start);
    let normal = Network::build(
        circuit,
        parasitics,
        cfg.supply_noise_v2hz,
        cfg.gamma_noise,
        cfg.temperature,
    );
    let dm = [Complex::real(0.5), Complex::real(-0.5)];
    let a_dm = normal.output(&normal.solve_at(w, dm, &[])?).abs();

    let supply = Network::build_with_mode(
        circuit,
        parasitics,
        cfg.supply_noise_v2hz,
        cfg.gamma_noise,
        cfg.temperature,
        SupplyMode::VddAsSource,
    );
    let a_vdd = supply
        .output(&supply.solve_at(w, [Complex::ONE, Complex::ZERO], &[])?)
        .abs();
    Ok(20.0 * (a_dm.max(1e-30) / a_vdd.max(1e-30)).log10())
}

fn omega(f: f64) -> f64 {
    2.0 * std::f64::consts::PI * f
}

/// Logarithmic frequency grid, inclusive of both ends.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start, "bad sweep range");
    assert!(points_per_decade > 0, "need at least one point per decade");
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| f_start * 10f64.powf(decades * i as f64 / (n - 1) as f64))
        .collect()
}

/// First frequency where a falling magnitude response crosses `level`, by
/// log-log interpolation; 0 when it starts below, the last frequency when it
/// never crosses.
fn first_crossing(freqs: &[f64], gains: &[f64], level: f64) -> f64 {
    if gains[0] < level {
        return 0.0;
    }
    for i in 1..gains.len() {
        if gains[i] < level {
            let (g0, g1) = (gains[i - 1].max(1e-30), gains[i].max(1e-30));
            let (f0, f1) = (freqs[i - 1], freqs[i]);
            let t = (g0.log10() - level.max(1e-30).log10()) / (g0.log10() - g1.log10());
            return f0 * (f1 / f0).powf(t.clamp(0.0, 1.0));
        }
    }
    *freqs.last().expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;

    #[test]
    fn sweep_grid() {
        let f = log_sweep(1e3, 1e6, 10);
        assert_eq!(f.len(), 31);
        assert!((f[0] - 1e3).abs() < 1e-9);
        assert!((f.last().unwrap() - 1e6).abs() < 1e-3);
        for w in f.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn first_crossing_interpolates() {
        let freqs = vec![1.0, 10.0, 100.0];
        let gains = vec![10.0, 1.0, 0.1];
        let u = first_crossing(&freqs, &gains, 1.0);
        assert!((u - 10.0).abs() < 1e-9);
        assert_eq!(first_crossing(&freqs, &[0.5, 0.2, 0.1], 1.0), 0.0);
        // -3 dB of a flat-then-falling response
        let f3 = first_crossing(&freqs, &gains, 10.0 / std::f64::consts::SQRT_2);
        assert!(f3 > 1.0 && f3 < 10.0);
        // never crossing -> last frequency
        assert_eq!(first_crossing(&freqs, &[5.0, 5.0, 5.0], 1.0), 100.0);
    }

    #[test]
    fn schematic_ota1_metrics_sane() {
        let c = benchmarks::ota1();
        let p = simulate(&c, None, &SimConfig::default()).unwrap();
        assert!(p.dc_gain_db > 20.0, "two-stage OTA gain {p:?}");
        assert!(p.bandwidth_mhz > 1.0, "{p:?}");
        assert!(p.cmrr_db > 40.0, "{p:?}");
        assert_eq!(p.offset_uv, 0.0, "schematic offset is zero");
        assert!(p.noise_uvrms > 0.0, "{p:?}");
    }

    #[test]
    fn schematic_all_benchmarks_simulate() {
        for c in benchmarks::all() {
            let p = simulate(&c, None, &SimConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", c.name()));
            assert!(p.dc_gain_db.is_finite(), "{}: {p:?}", c.name());
            assert!(p.noise_uvrms.is_finite(), "{}: {p:?}", c.name());
        }
    }

    #[test]
    fn ota2_has_lower_cmrr_than_ota1() {
        let p1 = simulate(&benchmarks::ota1(), None, &SimConfig::default()).unwrap();
        let p2 = simulate(&benchmarks::ota2(), None, &SimConfig::default()).unwrap();
        assert!(
            p1.cmrr_db > p2.cmrr_db,
            "OTA1 {} dB vs OTA2 {} dB",
            p1.cmrr_db,
            p2.cmrr_db
        );
    }

    #[test]
    fn psrr_is_finite_and_positive_for_otas() {
        for c in [benchmarks::ota1(), benchmarks::ota3()] {
            let p = psrr_db(&c, None, &SimConfig::default()).unwrap();
            assert!(p.is_finite(), "{}: {p}", c.name());
            assert!(
                p > 0.0,
                "{}: supply should be rejected, got {p} dB",
                c.name()
            );
        }
    }

    #[test]
    fn performance_display() {
        let p = Performance {
            offset_uv: 12.3,
            cmrr_db: 80.0,
            bandwidth_mhz: 50.0,
            dc_gain_db: 40.0,
            noise_uvrms: 300.0,
        };
        let s = p.to_string();
        assert!(s.contains("12.3 uV") && s.contains("80.0 dB") && s.contains("300.0 uVrms"));
    }

    #[test]
    fn fom_prefers_better_performance() {
        let base = Performance {
            offset_uv: 100.0,
            cmrr_db: 80.0,
            bandwidth_mhz: 50.0,
            dc_gain_db: 40.0,
            noise_uvrms: 300.0,
        };
        let better = Performance {
            offset_uv: 50.0,
            cmrr_db: 90.0,
            bandwidth_mhz: 60.0,
            dc_gain_db: 45.0,
            noise_uvrms: 200.0,
        };
        assert!(better.fom_against(&base) < base.fom_against(&base));
    }
}
