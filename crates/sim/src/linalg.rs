//! Dense complex linear solves (LU with partial pivoting).

use crate::Complex;

/// Solves `A·x = b` in place via LU decomposition with partial pivoting.
///
/// `a` is row-major `n × n`; `b` has length `n`. Returns `None` for singular
/// (or numerically singular) systems.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn solve(a: &mut [Complex], b: &mut [Complex], n: usize) -> Option<Vec<Complex>> {
    assert_eq!(a.len(), n * n, "matrix must be n×n");
    assert_eq!(b.len(), n, "rhs must have length n");
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // pivot
        let mut best = col;
        let mut best_mag = a[perm[col] * n + col].abs();
        for (row, &p) in perm.iter().enumerate().skip(col + 1) {
            let m = a[p * n + col].abs();
            if m > best_mag {
                best_mag = m;
                best = row;
            }
        }
        if best_mag < 1e-300 {
            return None;
        }
        perm.swap(col, best);
        let p = perm[col];
        let pivot = a[p * n + col];
        // the elimination mutates `a` rows addressed through `perm`, so the
        // index loop is the clear formulation here
        #[allow(clippy::needless_range_loop)]
        for row in (col + 1)..n {
            let r = perm[row];
            let factor = a[r * n + col] / pivot;
            a[r * n + col] = factor;
            for k in (col + 1)..n {
                let sub = factor * a[p * n + k];
                a[r * n + k] -= sub;
            }
            let sub = factor * b[p];
            b[r] -= sub;
        }
    }
    // back substitution
    let mut x = vec![Complex::ZERO; n];
    for col in (0..n).rev() {
        let p = perm[col];
        let mut acc = b[p];
        for k in (col + 1)..n {
            acc -= a[p * n + k] * x[k];
        }
        x[col] = acc / a[p * n + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn solves_real_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let mut a = vec![c(2.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(3.0, 0.0)];
        let mut b = vec![c(5.0, 0.0), c(10.0, 0.0)];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - c(1.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn solves_complex_system() {
        // (1+j) x = 2 -> x = 1 - j
        let mut a = vec![c(1.0, 1.0)];
        let mut b = vec![c(2.0, 0.0)];
        let x = solve(&mut a, &mut b, 1).unwrap();
        assert!((x[0] - c(1.0, -1.0)).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3; 2]
        let mut a = vec![c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0)];
        let mut b = vec![c(2.0, 0.0), c(3.0, 0.0)];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - c(3.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(2.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut a = vec![c(1.0, 0.0), c(2.0, 0.0), c(2.0, 0.0), c(4.0, 0.0)];
        let mut b = vec![c(1.0, 0.0), c(2.0, 0.0)];
        assert!(solve(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn random_roundtrip() {
        // fixed pseudo-random 5x5; verify A x ≈ b
        let n = 5;
        let mut seed = 0x12345u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a0: Vec<Complex> = (0..n * n).map(|_| c(rnd(), rnd())).collect();
        let xs: Vec<Complex> = (0..n).map(|_| c(rnd(), rnd())).collect();
        let mut b: Vec<Complex> = (0..n)
            .map(|i| {
                let mut acc = Complex::ZERO;
                for j in 0..n {
                    acc += a0[i * n + j] * xs[j];
                }
                acc
            })
            .collect();
        let mut a = a0.clone();
        let x = solve(&mut a, &mut b, n).unwrap();
        for (got, want) in x.iter().zip(&xs) {
            assert!((*got - *want).abs() < 1e-9);
        }
    }
}
