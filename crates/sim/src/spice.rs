//! SPICE deck export of the small-signal network.
//!
//! Emits a linear AC deck (G/R/C/V elements only) equivalent to the MNA
//! network this crate simulates — including the parasitic pi models — so
//! results can be cross-validated against ngspice/Spectre:
//!
//! * each MOSFET becomes its small-signal equivalent (`G` VCCS for gm, `R`
//!   for 1/gds, `C` for cgs/cgd/cdb),
//! * each net with extracted wire resistance is split into `<net>` and
//!   `<net>_w` joined by `R`, matching [`crate::Network`]'s pi model,
//! * coupling capacitances become `C` elements between net nodes,
//! * the differential input is driven by `vinp`/`vinn` AC sources.

use std::fmt::Write as _;

use af_extract::Parasitics;
use af_netlist::{Circuit, DeviceKind, DeviceParams, NetId, Terminal};

/// Renders the circuit (optionally parasitic-annotated) as a SPICE deck.
///
/// The deck contains an `.ac` analysis and a `.print` of the output net so
/// it runs as-is in ngspice.
pub fn to_spice(circuit: &Circuit, parasitics: Option<&Parasitics>) -> String {
    let io = circuit.io();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "* {} — small-signal deck exported by af-sim",
        circuit.name()
    );
    let _ = writeln!(out, "* vdd/vss are AC ground; inputs driven differentially");

    let net_name = |id: NetId| circuit.net(id).name.clone();
    // Node of a pin: supplies collapse to 0; split nets move non-driver pins
    // behind the wire resistance, mirroring mna.rs.
    let is_gnd = |id: NetId| id == io.vdd || id == io.vss;
    let split: Vec<bool> = circuit
        .nets()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let id = NetId::new(i as u32);
            !is_gnd(id)
                && parasitics
                    .map(|p| p.net(id).resistance > 1e-6)
                    .unwrap_or(false)
        })
        .collect();
    let driver_pin = |id: NetId| {
        circuit
            .net(id)
            .pins
            .iter()
            .copied()
            .find(|&pid| matches!(circuit.pin(pid).terminal, Terminal::Drain | Terminal::Pos))
            .or_else(|| circuit.net(id).pins.first().copied())
    };
    let node_of_pin = |pid: af_netlist::PinId| -> String {
        let pin = circuit.pin(pid);
        let id = pin.net;
        if is_gnd(id) {
            return "0".to_string();
        }
        if split[id.index()] && Some(pid) != driver_pin(id) {
            format!("{}_w", net_name(id))
        } else {
            net_name(id)
        }
    };

    // Parasitic elements.
    if let Some(px) = parasitics {
        let _ = writeln!(out, "\n* wire parasitics (pi models)");
        for (i, net) in circuit.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            if is_gnd(id) {
                continue;
            }
            let rec = px.net(id);
            if split[i] {
                let _ = writeln!(out, "Rw_{n} {n} {n}_w {:.6}", rec.resistance, n = net.name);
                let _ = writeln!(
                    out,
                    "Cw_{n}_a {n} 0 {:.6e}",
                    rec.cap_ground / 2.0,
                    n = net.name
                );
                let _ = writeln!(
                    out,
                    "Cw_{n}_b {n}_w 0 {:.6e}",
                    rec.cap_ground / 2.0,
                    n = net.name
                );
            } else if rec.cap_ground > 0.0 {
                let _ = writeln!(out, "Cw_{n} {n} 0 {:.6e}", rec.cap_ground, n = net.name);
            }
        }
        let _ = writeln!(out, "\n* coupling capacitances");
        for (k, cc) in px.couplings().iter().enumerate() {
            let (a, b) = (
                if is_gnd(cc.a) {
                    "0".into()
                } else {
                    net_name(cc.a)
                },
                if is_gnd(cc.b) {
                    "0".into()
                } else {
                    net_name(cc.b)
                },
            );
            if a == b {
                continue;
            }
            let _ = writeln!(out, "Cc{k} {a} {b} {:.6e}", cc.cap);
        }
    }

    // Devices as small-signal equivalents.
    let _ = writeln!(out, "\n* devices (small-signal equivalents)");
    for (di, dev) in circuit.devices().iter().enumerate() {
        let pin_of = |t: Terminal| {
            circuit
                .pins()
                .iter()
                .enumerate()
                .find(|(_, p)| p.device.index() == di && p.terminal == t)
                .map(|(i, _)| node_of_pin(af_netlist::PinId::new(i as u32)))
        };
        match (&dev.kind, &dev.params) {
            (DeviceKind::Nmos | DeviceKind::Pmos, DeviceParams::Mos(m)) => {
                let (Some(g), Some(d), Some(s)) = (
                    pin_of(Terminal::Gate),
                    pin_of(Terminal::Drain),
                    pin_of(Terminal::Source),
                ) else {
                    continue;
                };
                let b = pin_of(Terminal::Bulk).unwrap_or_else(|| "0".into());
                let n = &dev.name;
                let _ = writeln!(out, "G{n} {d} {s} {g} {s} {:.6e}", m.gm);
                let _ = writeln!(out, "Rds{n} {d} {s} {:.6}", 1.0 / m.gds);
                let _ = writeln!(out, "Cgs{n} {g} {s} {:.6e}", m.cgs);
                let _ = writeln!(out, "Cgd{n} {g} {d} {:.6e}", m.cgd);
                let _ = writeln!(out, "Cdb{n} {d} {b} {:.6e}", m.cdb);
            }
            (DeviceKind::Capacitor, DeviceParams::Cap(c)) => {
                if let (Some(p), Some(q)) = (pin_of(Terminal::Pos), pin_of(Terminal::Neg)) {
                    let _ = writeln!(out, "C{} {p} {q} {:.6e}", dev.name, c.c);
                }
            }
            (DeviceKind::Resistor, DeviceParams::Res(r)) => {
                if let (Some(p), Some(q)) = (pin_of(Terminal::Pos), pin_of(Terminal::Neg)) {
                    let _ = writeln!(out, "R{} {p} {q} {:.6}", dev.name, r.r);
                }
            }
            _ => {}
        }
    }

    // Sources & analysis.
    let _ = writeln!(out, "\n* differential drive");
    let _ = writeln!(out, "Vinp {} 0 AC 0.5", net_name(io.vinp));
    let _ = writeln!(out, "Vinn {} 0 AC -0.5", net_name(io.vinn));
    let _ = writeln!(out, "\n.ac dec 20 1k 100g");
    match io.voutn {
        Some(n) => {
            let _ = writeln!(out, ".print ac v({},{})", net_name(io.vout), net_name(n));
        }
        None => {
            let _ = writeln!(out, ".print ac v({})", net_name(io.vout));
        }
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;

    #[test]
    fn schematic_deck_structure() {
        let c = benchmarks::ota1();
        let deck = to_spice(&c, None);
        assert!(deck.starts_with("* OTA1"));
        assert!(deck.contains("GM1 "), "gm VCCS for M1:\n{deck}");
        assert!(deck.contains("RdsM1 "));
        assert!(deck.contains("CgsM1 "));
        assert!(
            deck.contains("CCC ") || deck.contains("CCC\t"),
            "compensation cap"
        );
        assert!(deck.contains("Vinp vinp 0 AC 0.5"));
        assert!(deck.contains(".ac dec"));
        assert!(deck.trim_end().ends_with(".end"));
        // supplies collapse to node 0
        assert!(!deck.contains(" vdd "), "vdd must be ground:\n{deck}");
    }

    #[test]
    fn parasitic_deck_contains_wire_elements() {
        use af_place::{place, PlacementVariant};
        use af_route::{Router, RouterConfig, RoutingGuidance};
        use af_tech::Technology;
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let l = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let px = af_extract::extract(&c, &t, &l);
        let deck = to_spice(&c, Some(&px));
        assert!(deck.contains("Rw_vout "), "wire resistance exported");
        assert!(deck.contains("Cc0 "), "coupling caps exported");
        // split nets reference the _w node somewhere
        assert!(deck.contains("_w"), "pi-split nodes present");
    }

    #[test]
    fn fully_differential_print_statement() {
        let c = benchmarks::ota3();
        let deck = to_spice(&c, None);
        assert!(deck.contains(".print ac v(voutp,voutn)"));
    }
}
