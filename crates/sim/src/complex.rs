use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number over `f64` (the workspace avoids external numeric
/// dependencies, so this is implemented locally).
///
/// # Examples
///
/// ```
/// use af_sim::Complex;
///
/// let a = Complex::new(3.0, 4.0);
/// assert!((a.abs() - 5.0).abs() < 1e-12);
/// let b = a * a.conj();
/// assert!((b.re - 25.0).abs() < 1e-12 && b.im.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// Imaginary unit.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Purely real value.
    pub const fn real(re: f64) -> Self {
        Self::new(re, 0.0)
    }

    /// Purely imaginary value.
    pub const fn imag(im: f64) -> Self {
        Self::new(0.0, im)
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Whether both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.abs_sq();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = (a / b) * b;
        assert!((q - a).abs() < 1e-12);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn polar_properties() {
        let j = Complex::J;
        assert!((j.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(j * j, Complex::real(-1.0));
        assert_eq!(Complex::new(2.0, 3.0).conj(), Complex::new(2.0, -3.0));
        assert!((Complex::new(3.0, 4.0).abs_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
        assert_eq!(Complex::from(5.0), Complex::real(5.0));
        assert!(Complex::ONE.is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
    }
}
