//! Modified nodal analysis network construction and complex AC solves.
//!
//! Net-to-node mapping:
//!
//! * supply nets (`vdd`, `vss`) are AC ground,
//! * differential inputs are ideal voltage sources,
//! * every other net is an unknown node; nets with extracted series
//!   resistance are split into a **pi model**: a primary (driver-side) node
//!   and a secondary (load-side) node joined by the wire resistance, with
//!   the ground capacitance halved onto each side. The driving pin (the
//!   first drain/`Pos` terminal on the net) stays on the primary node and
//!   every other pin attaches to the secondary — so wire RC genuinely sits
//!   in the signal path between driver and loads.
//!
//! MOS devices stamp the textbook small-signal model (gm VCCS, gds, cgs,
//! cgd, cdb); the same stamps serve NMOS and PMOS. Channel thermal noise,
//! resistor thermal noise, and supply/bias coupling noise are registered as
//! noise current sources with their transfer computed by transimpedance
//! solves.

use af_extract::Parasitics;
use af_netlist::{Circuit, DeviceKind, DeviceParams, NetId, Terminal};

use crate::linalg::solve;
use crate::Complex;

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380649e-23;

/// How supply nets are treated during network assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupplyMode {
    /// Supplies are ideal AC ground (normal differential analysis).
    #[default]
    AcGround,
    /// `vdd` is driven as source 0 and both signal inputs are grounded —
    /// the configuration for PSRR analysis. `vss` stays ground.
    VddAsSource,
}

/// Reference to a circuit node in the assembled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// AC ground (supplies).
    Gnd,
    /// Ideal source `k` (0 = vinp, 1 = vinn).
    Src(usize),
    /// Unknown node with matrix index.
    Idx(usize),
}

/// Linear elements of the small-signal network.
#[derive(Debug, Clone, Copy)]
enum Element {
    /// Conductance `g` between two nodes.
    Conductance(NodeRef, NodeRef, f64),
    /// Capacitance `c` between two nodes.
    Cap(NodeRef, NodeRef, f64),
    /// Voltage-controlled current source: `i = gm (v_cp − v_cn)` flowing
    /// out of `op` into `on`.
    Vccs {
        op: NodeRef,
        on: NodeRef,
        cp: NodeRef,
        cn: NodeRef,
        gm: f64,
    },
}

/// Spectral shape of a noise current source.
#[derive(Debug, Clone, Copy)]
pub enum NoisePsd {
    /// Frequency-flat PSD in A²/Hz.
    White(f64),
    /// Supply noise coupled through a capacitance: `S_i(f) = sv2 · (ωc)²`
    /// with `sv2` the supply-voltage PSD in V²/Hz.
    SupplyCoupling {
        /// Coupling capacitance in farads.
        c: f64,
        /// Supply voltage noise PSD in V²/Hz.
        sv2: f64,
    },
}

impl NoisePsd {
    /// PSD value at frequency `f` (A²/Hz).
    pub fn at(&self, f: f64) -> f64 {
        match *self {
            NoisePsd::White(s) => s,
            NoisePsd::SupplyCoupling { c, sv2 } => {
                let w = 2.0 * std::f64::consts::PI * f;
                sv2 * (w * c) * (w * c)
            }
        }
    }
}

/// A noise current source between two nodes.
#[derive(Debug, Clone, Copy)]
pub struct NoiseSource {
    /// Positive injection node.
    pub p: NodeRef,
    /// Return node.
    pub n: NodeRef,
    /// Spectral density.
    pub psd: NoisePsd,
}

/// Stamp record of one MOS device, kept for current probing.
#[derive(Debug, Clone, Copy)]
pub struct MosStamp {
    /// Gate node.
    pub g: NodeRef,
    /// Drain node.
    pub d: NodeRef,
    /// Source node.
    pub s: NodeRef,
    /// Transconductance (S).
    pub gm: f64,
    /// Output conductance (S).
    pub gds: f64,
    /// Net the drain terminal connects to.
    pub drain_net: NetId,
}

/// An assembled small-signal network ready for AC solves.
#[derive(Debug, Clone)]
pub struct Network {
    n: usize,
    elements: Vec<Element>,
    noise: Vec<NoiseSource>,
    out_p: NodeRef,
    out_n: Option<NodeRef>,
    primary: Vec<NodeRef>,
    secondary: Vec<NodeRef>,
    mos: Vec<MosStamp>,
}

/// The solved node voltages of one AC operating point.
#[derive(Debug, Clone)]
pub struct Solution {
    x: Vec<Complex>,
    vs: [Complex; 2],
}

impl Solution {
    /// Voltage at a node reference.
    pub fn voltage(&self, r: NodeRef) -> Complex {
        match r {
            NodeRef::Gnd => Complex::ZERO,
            NodeRef::Src(k) => self.vs[k],
            NodeRef::Idx(i) => self.x[i],
        }
    }
}

/// Adjoint transimpedances: `z(node)` is the output voltage produced by a
/// unit current injected at `node`.
#[derive(Debug, Clone)]
pub struct AdjointSolution {
    y: Vec<Complex>,
}

impl AdjointSolution {
    /// Transimpedance from `node` to the output (0 for ground/sources).
    pub fn z(&self, node: NodeRef) -> Complex {
        match node {
            NodeRef::Idx(i) => self.y[i],
            _ => Complex::ZERO,
        }
    }
}

/// Error from network assembly or solving.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The MNA matrix is singular (floating node or degenerate circuit).
    Singular,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Singular => write!(f, "singular MNA system"),
        }
    }
}

impl std::error::Error for SimError {}

impl Network {
    /// Builds the network from a circuit, optionally annotated with
    /// extracted parasitics (`None` = schematic-level simulation).
    ///
    /// `supply_noise_v2hz` is the supply/bias voltage-noise PSD used for
    /// coupling noise injection (V²/Hz).
    pub fn build(
        circuit: &Circuit,
        parasitics: Option<&Parasitics>,
        supply_noise_v2hz: f64,
        gamma_noise: f64,
        temperature: f64,
    ) -> Self {
        Self::build_with_mode(
            circuit,
            parasitics,
            supply_noise_v2hz,
            gamma_noise,
            temperature,
            SupplyMode::AcGround,
        )
    }

    /// Builds the network with an explicit supply treatment (see
    /// [`SupplyMode`]); [`Network::build`] uses [`SupplyMode::AcGround`].
    pub fn build_with_mode(
        circuit: &Circuit,
        parasitics: Option<&Parasitics>,
        supply_noise_v2hz: f64,
        gamma_noise: f64,
        temperature: f64,
        mode: SupplyMode,
    ) -> Self {
        let io = circuit.io();
        let nnets = circuit.nets().len();
        let mut primary = vec![NodeRef::Gnd; nnets];
        let mut secondary = vec![NodeRef::Gnd; nnets];
        let mut n = 0usize;
        let mut alloc = || {
            let i = n;
            n += 1;
            NodeRef::Idx(i)
        };

        // Primary mapping.
        for (i, _) in circuit.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            primary[i] = match mode {
                SupplyMode::AcGround => {
                    if id == io.vdd || id == io.vss {
                        NodeRef::Gnd
                    } else if id == io.vinp {
                        NodeRef::Src(0)
                    } else if id == io.vinn {
                        NodeRef::Src(1)
                    } else {
                        alloc()
                    }
                }
                SupplyMode::VddAsSource => {
                    if id == io.vss || id == io.vinp || id == io.vinn {
                        NodeRef::Gnd
                    } else if id == io.vdd {
                        NodeRef::Src(0)
                    } else {
                        alloc()
                    }
                }
            };
        }

        let mut elements = Vec::new();
        let mut noise = Vec::new();
        let mut mos = Vec::new();
        let four_kt = 4.0 * BOLTZMANN * temperature;

        // Wire parasitics: pi split. Each split net keeps its driving pin
        // (first drain/Pos, else the first pin) on the primary node and
        // moves every other pin to the secondary node behind the wire R.
        let mut pin_node: Vec<NodeRef> = circuit
            .pins()
            .iter()
            .map(|p| primary[p.net.index()])
            .collect();
        for (i, net) in circuit.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            let p = primary[i];
            if p == NodeRef::Gnd {
                secondary[i] = p;
                continue;
            }
            let (r, cg) = match parasitics {
                Some(px) => {
                    let rec = px.net(id);
                    (rec.resistance, rec.cap_ground)
                }
                None => (0.0, 0.0),
            };
            if r > 1e-6 {
                let s = alloc();
                secondary[i] = s;
                elements.push(Element::Conductance(p, s, 1.0 / r));
                // wire thermal noise (tiny, but physical)
                noise.push(NoiseSource {
                    p,
                    n: s,
                    psd: NoisePsd::White(four_kt / r),
                });
                if cg > 0.0 {
                    if !matches!(p, NodeRef::Src(_)) {
                        elements.push(Element::Cap(p, NodeRef::Gnd, cg / 2.0));
                    }
                    elements.push(Element::Cap(s, NodeRef::Gnd, cg / 2.0));
                }
                // Driver pin: the first drain (or Pos plate) on the net.
                let driver = net
                    .pins
                    .iter()
                    .copied()
                    .find(|&pid| {
                        matches!(circuit.pin(pid).terminal, Terminal::Drain | Terminal::Pos)
                    })
                    .or_else(|| net.pins.first().copied());
                for &pid in &net.pins {
                    pin_node[pid.index()] = if Some(pid) == driver { p } else { s };
                }
            } else {
                secondary[i] = p;
                if cg > 0.0 && !matches!(p, NodeRef::Src(_)) {
                    elements.push(Element::Cap(p, NodeRef::Gnd, cg));
                }
            }
        }

        // Coupling capacitances + supply-coupling noise.
        if let Some(px) = parasitics {
            for c in px.couplings() {
                let (pa, pb) = (primary[c.a.index()], primary[c.b.index()]);
                let a_supply = pa == NodeRef::Gnd;
                let b_supply = pb == NodeRef::Gnd;
                match (a_supply, b_supply) {
                    (false, false) => elements.push(Element::Cap(pa, pb, c.cap)),
                    (false, true) => {
                        elements.push(Element::Cap(pa, NodeRef::Gnd, c.cap));
                        noise.push(NoiseSource {
                            p: pa,
                            n: NodeRef::Gnd,
                            psd: NoisePsd::SupplyCoupling {
                                c: c.cap,
                                sv2: supply_noise_v2hz,
                            },
                        });
                    }
                    (true, false) => {
                        elements.push(Element::Cap(pb, NodeRef::Gnd, c.cap));
                        noise.push(NoiseSource {
                            p: pb,
                            n: NodeRef::Gnd,
                            psd: NoisePsd::SupplyCoupling {
                                c: c.cap,
                                sv2: supply_noise_v2hz,
                            },
                        });
                    }
                    (true, true) => {}
                }
            }
        }

        // Devices.
        for (di, dev) in circuit.devices().iter().enumerate() {
            let node_of = |t: Terminal| -> Option<NodeRef> {
                circuit
                    .pins()
                    .iter()
                    .enumerate()
                    .find(|(_, p)| p.device.index() == di && p.terminal == t)
                    .map(|(pi, _)| pin_node[pi])
            };
            match (dev.kind, &dev.params) {
                (DeviceKind::Nmos | DeviceKind::Pmos, DeviceParams::Mos(m)) => {
                    let (Some(g), Some(d), Some(s)) = (
                        node_of(Terminal::Gate),
                        node_of(Terminal::Drain),
                        node_of(Terminal::Source),
                    ) else {
                        continue;
                    };
                    let b = node_of(Terminal::Bulk).unwrap_or(NodeRef::Gnd);
                    elements.push(Element::Vccs {
                        op: d,
                        on: s,
                        cp: g,
                        cn: s,
                        gm: m.gm,
                    });
                    let drain_net = circuit
                        .pins()
                        .iter()
                        .find(|p| p.device.index() == di && p.terminal == Terminal::Drain)
                        .map(|p| p.net)
                        .expect("drain pin exists");
                    mos.push(MosStamp {
                        g,
                        d,
                        s,
                        gm: m.gm,
                        gds: m.gds,
                        drain_net,
                    });
                    elements.push(Element::Conductance(d, s, m.gds));
                    elements.push(Element::Cap(g, s, m.cgs));
                    elements.push(Element::Cap(g, d, m.cgd));
                    elements.push(Element::Cap(d, b, m.cdb));
                    noise.push(NoiseSource {
                        p: d,
                        n: s,
                        psd: NoisePsd::White(four_kt * gamma_noise * m.gm),
                    });
                }
                (DeviceKind::Capacitor, DeviceParams::Cap(cp)) => {
                    if let (Some(p), Some(nn)) = (node_of(Terminal::Pos), node_of(Terminal::Neg)) {
                        elements.push(Element::Cap(p, nn, cp.c));
                    }
                }
                (DeviceKind::Resistor, DeviceParams::Res(rp)) => {
                    if let (Some(p), Some(nn)) = (node_of(Terminal::Pos), node_of(Terminal::Neg)) {
                        elements.push(Element::Conductance(p, nn, 1.0 / rp.r));
                        noise.push(NoiseSource {
                            p,
                            n: nn,
                            psd: NoisePsd::White(four_kt / rp.r),
                        });
                    }
                }
                _ => {}
            }
        }

        let out_p = primary[io.vout.index()];
        let out_n = io.voutn.map(|v| primary[v.index()]);

        Self {
            n,
            elements,
            noise,
            out_p,
            out_n,
            primary,
            secondary,
            mos,
        }
    }

    /// Stamped MOS devices (for small-signal current probing).
    pub fn mos_stamps(&self) -> &[MosStamp] {
        &self.mos
    }

    /// Small-signal drain current of a MOS stamp under a solution:
    /// `i_d = gm (v_g − v_s) + gds (v_d − v_s)`.
    pub fn drain_current(&self, m: &MosStamp, sol: &Solution) -> Complex {
        let vg = sol.voltage(m.g);
        let vd = sol.voltage(m.d);
        let vs = sol.voltage(m.s);
        (vg - vs) * m.gm + (vd - vs) * m.gds
    }

    /// Number of unknown nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Registered noise sources.
    pub fn noise_sources(&self) -> &[NoiseSource] {
        &self.noise
    }

    /// Primary node of a net.
    pub fn primary(&self, net: NetId) -> NodeRef {
        self.primary[net.index()]
    }

    /// Secondary (gate-side) node of a net.
    pub fn secondary(&self, net: NetId) -> NodeRef {
        self.secondary[net.index()]
    }

    /// Solves the network at angular frequency `omega` with the given source
    /// voltages and extra current injections (amps into each node).
    ///
    /// # Errors
    ///
    /// [`SimError::Singular`] when the system cannot be solved.
    pub fn solve_at(
        &self,
        omega: f64,
        vs: [Complex; 2],
        injections: &[(NodeRef, Complex)],
    ) -> Result<Solution, SimError> {
        let n = self.n;
        let mut a = vec![Complex::ZERO; n * n];
        let mut b = vec![Complex::ZERO; n];
        self.assemble(omega, vs, &mut a, &mut b);
        for &(node, current) in injections {
            if let NodeRef::Idx(i) = node {
                b[i] += current;
            }
        }
        let x = solve(&mut a, &mut b, n).ok_or(SimError::Singular)?;
        Ok(Solution { x, vs })
    }

    /// Stamps every element into `a`/`b` at angular frequency `omega`.
    fn assemble(&self, omega: f64, vs: [Complex; 2], a: &mut Vec<Complex>, b: &mut Vec<Complex>) {
        let n = self.n;

        let stamp_pair =
            |a: &mut Vec<Complex>, b: &mut Vec<Complex>, p: NodeRef, q: NodeRef, y: Complex| {
                // current y (Vp - Vq) leaving p, entering q
                if let NodeRef::Idx(i) = p {
                    a[i * n + i] += y;
                    match q {
                        NodeRef::Idx(j) => a[i * n + j] -= y,
                        NodeRef::Src(k) => b[i] += y * vs[k],
                        NodeRef::Gnd => {}
                    }
                }
                if let NodeRef::Idx(j) = q {
                    a[j * n + j] += y;
                    match p {
                        NodeRef::Idx(i) => a[j * n + i] -= y,
                        NodeRef::Src(k) => b[j] += y * vs[k],
                        NodeRef::Gnd => {}
                    }
                }
            };

        for el in &self.elements {
            match *el {
                Element::Conductance(p, q, g) => {
                    stamp_pair(a, b, p, q, Complex::real(g));
                }
                Element::Cap(p, q, c) => {
                    stamp_pair(a, b, p, q, Complex::imag(omega * c));
                }
                Element::Vccs { op, on, cp, cn, gm } => {
                    // i = gm (Vcp - Vcn) leaves op, enters on
                    let add =
                        |a: &mut Vec<Complex>, b: &mut Vec<Complex>, row: NodeRef, sign: f64| {
                            let NodeRef::Idx(r) = row else { return };
                            match cp {
                                NodeRef::Idx(c) => a[r * n + c] += Complex::real(sign * gm),
                                NodeRef::Src(k) => b[r] -= vs[k] * (sign * gm),
                                NodeRef::Gnd => {}
                            }
                            match cn {
                                NodeRef::Idx(c) => a[r * n + c] -= Complex::real(sign * gm),
                                NodeRef::Src(k) => b[r] += vs[k] * (sign * gm),
                                NodeRef::Gnd => {}
                            }
                        };
                    add(a, b, op, 1.0);
                    add(a, b, on, -1.0);
                }
            }
        }
    }

    /// Adjoint solve at angular frequency `omega`: returns the
    /// transimpedance from a unit current injected at any node to the
    /// (differential) output, for all nodes at once (`Aᵀ y = e_out`).
    ///
    /// # Errors
    ///
    /// [`SimError::Singular`] when the system cannot be solved.
    pub fn adjoint_at(&self, omega: f64) -> Result<AdjointSolution, SimError> {
        let n = self.n;
        // Assemble A with zero sources (source terms only affect b).
        let zero = [Complex::ZERO, Complex::ZERO];
        let probe = self.solve_at(omega, zero, &[]); // cheap validity check
        probe.as_ref().map_err(|e| e.clone()).ok();
        let mut a = vec![Complex::ZERO; n * n];
        let mut b = vec![Complex::ZERO; n];
        self.assemble(omega, zero, &mut a, &mut b);
        // Transpose in place.
        for i in 0..n {
            for j in (i + 1)..n {
                a.swap(i * n + j, j * n + i);
            }
        }
        let mut rhs = vec![Complex::ZERO; n];
        if let NodeRef::Idx(i) = self.out_p {
            rhs[i] += Complex::ONE;
        }
        if let Some(NodeRef::Idx(i)) = self.out_n {
            rhs[i] -= Complex::ONE;
        }
        let y = solve(&mut a, &mut rhs, n).ok_or(SimError::Singular)?;
        Ok(AdjointSolution { y })
    }

    /// Output voltage of a solution: differential `voutp − voutn` for
    /// fully-differential circuits, single-ended otherwise.
    pub fn output(&self, sol: &Solution) -> Complex {
        let vp = sol.voltage(self.out_p);
        match self.out_n {
            Some(on) => vp - sol.voltage(on),
            None => vp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;

    #[test]
    fn build_schematic_network() {
        let c = benchmarks::ota1();
        let net = Network::build(&c, None, 0.0, 0.8, 300.0);
        assert!(net.num_nodes() >= 8, "expected one node per internal net");
        assert!(!net.noise_sources().is_empty());
        // supplies are ground
        assert_eq!(net.primary(c.io().vdd), NodeRef::Gnd);
        assert_eq!(net.primary(c.io().vss), NodeRef::Gnd);
        assert_eq!(net.primary(c.io().vinp), NodeRef::Src(0));
    }

    #[test]
    fn rc_divider_transfer() {
        // Build a tiny synthetic circuit: vinp - R - out - C - gnd using the
        // netlist builder, then verify the MNA pole.
        use af_netlist::{CapParams, CircuitBuilder, DeviceParams, NetType, ResParams};
        let mut b = CircuitBuilder::new("rc");
        b.add_net("vdd", NetType::Power).unwrap();
        b.add_net("vss", NetType::Ground).unwrap();
        b.add_net("vinp", NetType::Input).unwrap();
        b.add_net("vinn", NetType::Input).unwrap();
        b.add_net("out", NetType::Output).unwrap();
        b.add_device(
            "R1",
            DeviceKind::Resistor,
            DeviceParams::Res(ResParams { r: 1_000.0 }),
            &[(Terminal::Pos, "vinp"), (Terminal::Neg, "out")],
        )
        .unwrap();
        b.add_device(
            "C1",
            DeviceKind::Capacitor,
            DeviceParams::Cap(CapParams { c: 1e-9 }),
            &[(Terminal::Pos, "out"), (Terminal::Neg, "vss")],
        )
        .unwrap();
        // dummy element so vinn isn't floating in the netlist sense
        b.add_device(
            "R2",
            DeviceKind::Resistor,
            DeviceParams::Res(ResParams { r: 1e6 }),
            &[(Terminal::Pos, "vinn"), (Terminal::Neg, "out")],
        )
        .unwrap();
        b.set_io("vinp", "vinn", "out", None, "vdd", "vss").unwrap();
        let c = b.finish().unwrap();
        let net = Network::build(&c, None, 0.0, 0.8, 300.0);

        // drive vinp = 1, vinn = 0 (R2 is huge, nearly no effect)
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1_000.0 * 1e-9); // ~159 kHz
        let lo = net
            .solve_at(
                2.0 * std::f64::consts::PI * 10.0,
                [Complex::ONE, Complex::ZERO],
                &[],
            )
            .unwrap();
        let hi = net
            .solve_at(
                2.0 * std::f64::consts::PI * fc,
                [Complex::ONE, Complex::ZERO],
                &[],
            )
            .unwrap();
        let mag_lo = net.output(&lo).abs();
        let mag_hi = net.output(&hi).abs();
        assert!(
            (mag_lo - 1.0).abs() < 1e-2,
            "low-frequency gain ~1, got {mag_lo}"
        );
        assert!(
            (mag_hi - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "gain at fc should be ~0.707, got {mag_hi}"
        );
    }

    #[test]
    fn common_source_gain_sign_and_magnitude() {
        use af_netlist::{CircuitBuilder, DeviceParams, MosParams, NetType, ResParams};
        let mut b = CircuitBuilder::new("cs");
        b.add_net("vdd", NetType::Power).unwrap();
        b.add_net("vss", NetType::Ground).unwrap();
        b.add_net("vinp", NetType::Input).unwrap();
        b.add_net("vinn", NetType::Input).unwrap();
        b.add_net("out", NetType::Output).unwrap();
        let m = MosParams::from_sizing(10.0, 0.5, 100e-6);
        b.add_device(
            "M1",
            DeviceKind::Nmos,
            DeviceParams::Mos(m),
            &[
                (Terminal::Gate, "vinp"),
                (Terminal::Drain, "out"),
                (Terminal::Source, "vss"),
                (Terminal::Bulk, "vss"),
            ],
        )
        .unwrap();
        b.add_device(
            "RL",
            DeviceKind::Resistor,
            DeviceParams::Res(ResParams { r: 10_000.0 }),
            &[(Terminal::Pos, "out"), (Terminal::Neg, "vdd")],
        )
        .unwrap();
        b.add_device(
            "RB",
            DeviceKind::Resistor,
            DeviceParams::Res(ResParams { r: 1e9 }),
            &[(Terminal::Pos, "vinn"), (Terminal::Neg, "vss")],
        )
        .unwrap();
        b.set_io("vinp", "vinn", "out", None, "vdd", "vss").unwrap();
        let c = b.finish().unwrap();
        let net = Network::build(&c, None, 0.0, 0.8, 300.0);
        let sol = net
            .solve_at(
                2.0 * std::f64::consts::PI * 100.0,
                [Complex::ONE, Complex::ZERO],
                &[],
            )
            .unwrap();
        let out = net.output(&sol);
        // expected gain = -gm * (RL || ro)
        let ro = 1.0 / m.gds;
        let rl = 10_000.0 * ro / (10_000.0 + ro);
        let expected = -m.gm * rl;
        assert!(
            (out.re - expected).abs() < 0.02 * expected.abs(),
            "gain {out} vs expected {expected}"
        );
        assert!(out.re < 0.0, "common source must invert");
    }

    #[test]
    fn adjoint_matches_direct_injection() {
        // reciprocity check: the adjoint transimpedance must equal the
        // output voltage from a direct unit-current injection, node by node
        let c = benchmarks::ota1();
        let net = Network::build(&c, None, 0.0, 0.8, 300.0);
        for f in [1e3, 1e6, 1e9] {
            let w = 2.0 * std::f64::consts::PI * f;
            let adj = net.adjoint_at(w).unwrap();
            for name in ["n1", "n2", "tail", "vout", "vbn"] {
                let node = net.primary(c.net_by_name(name).unwrap());
                let sol = net
                    .solve_at(w, [Complex::ZERO, Complex::ZERO], &[(node, Complex::ONE)])
                    .unwrap();
                let direct = net.output(&sol);
                let za = adj.z(node);
                assert!(
                    (direct - za).abs() < 1e-9 * (1.0 + direct.abs()),
                    "{name} @ {f}: direct {direct} vs adjoint {za}"
                );
            }
        }
    }

    #[test]
    fn transimpedance_injection() {
        let c = benchmarks::ota1();
        let net = Network::build(&c, None, 0.0, 0.8, 300.0);
        let n1 = c.net_by_name("n1").unwrap();
        let node = net.primary(n1);
        let sol = net
            .solve_at(
                2.0 * std::f64::consts::PI * 100.0,
                [Complex::ZERO, Complex::ZERO],
                &[(node, Complex::ONE)],
            )
            .unwrap();
        assert!(
            net.output(&sol).abs() > 0.0,
            "injection must reach the output"
        );
    }
}
