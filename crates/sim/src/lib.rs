#![warn(missing_docs)]
//! Small-signal analog performance simulation — the Cadence Spectre
//! substitute of the AnalogFold reproduction.
//!
//! The paper evaluates five post-layout metrics with Spectre on
//! PEX-annotated netlists. This crate computes the same five quantities from
//! a complex-valued modified-nodal-analysis (MNA) linearization of the OTA:
//!
//! * **DC Gain** — low-frequency differential gain,
//! * **BandWidth** — unity-gain bandwidth of the differential response (the
//!   paper's ŷ_UGB),
//! * **CMRR** — differential gain over common-mode gain; routing-induced
//!   parasitic asymmetry enters the MNA stamps directly and degrades it,
//! * **Offset Voltage** — input-referred error from asymmetric bias-current ×
//!   wire-resistance drops across matched net pairs, propagated through
//!   adjoint transimpedances,
//! * **Noise** — integrated output noise from MOS channel thermal noise,
//!   resistor noise, and supply/bias noise coupled through extracted
//!   coupling capacitances.
//!
//! The last mechanism is why routing guidance moves the noise number: routes
//! that run next to supply or bias wiring pick up coupling capacitance and
//! integrate supply noise into the output.
//!
//! # Examples
//!
//! ```
//! use af_netlist::benchmarks;
//! use af_sim::{simulate, SimConfig};
//!
//! let ota = benchmarks::ota1();
//! let perf = simulate(&ota, None, &SimConfig::default()).unwrap();
//! assert!(perf.dc_gain_db > 0.0);
//! ```

mod complex;
mod linalg;
mod metrics;
mod mna;
mod spice;

pub use complex::Complex;
pub use linalg::solve;
pub use metrics::{log_sweep, psrr_db, simulate, Performance, SimConfig};
pub use mna::{
    AdjointSolution, MosStamp, Network, NodeRef, NoisePsd, NoiseSource, SimError, Solution,
    SupplyMode, BOLTZMANN,
};
pub use spice::to_spice;
