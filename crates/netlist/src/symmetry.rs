use serde::{Deserialize, Serialize};

use crate::{DeviceId, NetId};

/// A device-level symmetry constraint for placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceSymmetry {
    /// Two devices mirrored across the circuit's symmetry axis.
    Pair(DeviceId, DeviceId),
    /// A single device centered on the axis.
    SelfSymmetric(DeviceId),
}

/// A net-level symmetry constraint for routing — the paper's `N^SP`
/// (symmetric net pairs) and `N^SS` (self-symmetric nets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetSymmetry {
    /// Two nets whose routes must mirror each other.
    Pair(NetId, NetId),
    /// A net whose route must be mirror-symmetric onto itself.
    SelfSymmetric(NetId),
}

/// All symmetry constraints of a circuit, around a single vertical axis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SymmetryConstraints {
    device_pairs: Vec<(DeviceId, DeviceId)>,
    self_devices: Vec<DeviceId>,
    net_pairs: Vec<(NetId, NetId)>,
    self_nets: Vec<NetId>,
    /// Electrically matched net pairs that are not geometric mirror twins
    /// (e.g. the two first-stage output branches of a two-stage OTA).
    matched_pairs: Vec<(NetId, NetId)>,
}

impl SymmetryConstraints {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a mirrored device pair.
    pub fn add_device_pair(&mut self, a: DeviceId, b: DeviceId) {
        assert_ne!(a, b, "device pair must reference two distinct devices");
        self.device_pairs.push((a, b));
    }

    /// Registers a self-symmetric device.
    pub fn add_self_device(&mut self, d: DeviceId) {
        self.self_devices.push(d);
    }

    /// Registers a symmetric net pair (`N^SP`).
    pub fn add_net_pair(&mut self, a: NetId, b: NetId) {
        assert_ne!(a, b, "net pair must reference two distinct nets");
        self.net_pairs.push((a, b));
    }

    /// Registers a self-symmetric net (`N^SS`).
    pub fn add_self_net(&mut self, n: NetId) {
        self.self_nets.push(n);
    }

    /// Registers an electrically matched pair that is not a layout-symmetric
    /// pair (used by mismatch/offset analysis).
    pub fn add_matched_pair(&mut self, a: NetId, b: NetId) {
        assert_ne!(a, b, "matched pair must reference two distinct nets");
        self.matched_pairs.push((a, b));
    }

    /// All electrically matched pairs: the layout-symmetric pairs plus any
    /// extra matched pairs.
    pub fn matched_net_pairs(&self) -> Vec<(NetId, NetId)> {
        let mut all = self.net_pairs.clone();
        all.extend(self.matched_pairs.iter().copied());
        all
    }

    /// Mirrored device pairs.
    pub fn device_pairs(&self) -> &[(DeviceId, DeviceId)] {
        &self.device_pairs
    }

    /// Self-symmetric devices.
    pub fn self_devices(&self) -> &[DeviceId] {
        &self.self_devices
    }

    /// Symmetric net pairs.
    pub fn net_pairs(&self) -> &[(NetId, NetId)] {
        &self.net_pairs
    }

    /// Self-symmetric nets.
    pub fn self_nets(&self) -> &[NetId] {
        &self.self_nets
    }

    /// The net mirrored to `n` under a pair constraint, if any.
    pub fn mirror_net(&self, n: NetId) -> Option<NetId> {
        for &(a, b) in &self.net_pairs {
            if a == n {
                return Some(b);
            }
            if b == n {
                return Some(a);
            }
        }
        None
    }

    /// The device mirrored to `d` under a pair constraint, if any.
    pub fn mirror_device(&self, d: DeviceId) -> Option<DeviceId> {
        for &(a, b) in &self.device_pairs {
            if a == d {
                return Some(b);
            }
            if b == d {
                return Some(a);
            }
        }
        None
    }

    /// Whether net `n` appears in any symmetry constraint.
    pub fn is_net_constrained(&self, n: NetId) -> bool {
        self.mirror_net(n).is_some() || self.self_nets.contains(&n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_lookup_is_symmetric() {
        let mut s = SymmetryConstraints::new();
        s.add_net_pair(NetId::new(1), NetId::new(2));
        assert_eq!(s.mirror_net(NetId::new(1)), Some(NetId::new(2)));
        assert_eq!(s.mirror_net(NetId::new(2)), Some(NetId::new(1)));
        assert_eq!(s.mirror_net(NetId::new(3)), None);
    }

    #[test]
    fn constrained_query() {
        let mut s = SymmetryConstraints::new();
        s.add_net_pair(NetId::new(0), NetId::new(1));
        s.add_self_net(NetId::new(5));
        assert!(s.is_net_constrained(NetId::new(0)));
        assert!(s.is_net_constrained(NetId::new(5)));
        assert!(!s.is_net_constrained(NetId::new(9)));
    }

    #[test]
    fn device_mirror() {
        let mut s = SymmetryConstraints::new();
        s.add_device_pair(DeviceId::new(3), DeviceId::new(4));
        s.add_self_device(DeviceId::new(7));
        assert_eq!(s.mirror_device(DeviceId::new(4)), Some(DeviceId::new(3)));
        assert_eq!(s.mirror_device(DeviceId::new(7)), None);
        assert_eq!(s.self_devices(), &[DeviceId::new(7)]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_degenerate_pair() {
        let mut s = SymmetryConstraints::new();
        s.add_net_pair(NetId::new(1), NetId::new(1));
    }
}
