use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PinId;

/// Functional type of a net — the paper's "special nets with specific types"
/// `N^T`. Guidance is generated for nets whose type is performance-critical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetType {
    /// Ordinary signal net.
    Signal,
    /// Differential input net.
    Input,
    /// Output net.
    Output,
    /// Internal high-impedance node (e.g. first-stage output) — most
    /// sensitive to parasitics.
    Sensitive,
    /// Bias distribution net.
    Bias,
    /// Power supply.
    Power,
    /// Ground.
    Ground,
}

impl NetType {
    /// Whether nets of this type receive performance-driven routing guidance
    /// (the paper's `N* ⊆ N`).
    pub fn is_guided(self) -> bool {
        matches!(
            self,
            NetType::Input | NetType::Output | NetType::Sensitive | NetType::Signal
        )
    }

    /// Whether this is a supply-class net (power or ground).
    pub fn is_supply(self) -> bool {
        matches!(self, NetType::Power | NetType::Ground)
    }
}

impl fmt::Display for NetType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetType::Signal => "signal",
            NetType::Input => "input",
            NetType::Output => "output",
            NetType::Sensitive => "sensitive",
            NetType::Bias => "bias",
            NetType::Power => "power",
            NetType::Ground => "ground",
        };
        f.write_str(s)
    }
}

/// A net: a named equipotential connecting one or more pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Net name, e.g. `"vinp"`.
    pub name: String,
    /// Functional type.
    pub ty: NetType,
    /// Pins attached to this net (filled by the circuit builder).
    pub pins: Vec<PinId>,
    /// Routing priority weight (used by placement net-weight variants and the
    /// router's net ordering). Higher routes earlier.
    pub weight: f64,
}

impl Net {
    /// Creates an empty net.
    pub fn new(name: impl Into<String>, ty: NetType) -> Self {
        Self {
            name: name.into(),
            ty,
            pins: Vec::new(),
            weight: 1.0,
        }
    }

    /// Number of pins on the net.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Whether the net needs routing (two or more pins).
    pub fn is_routable(&self) -> bool {
        self.pins.len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guided_types() {
        assert!(NetType::Input.is_guided());
        assert!(NetType::Sensitive.is_guided());
        assert!(!NetType::Power.is_guided());
        assert!(!NetType::Bias.is_guided());
        assert!(NetType::Power.is_supply());
        assert!(NetType::Ground.is_supply());
        assert!(!NetType::Signal.is_supply());
    }

    #[test]
    fn routability() {
        let mut n = Net::new("x", NetType::Signal);
        assert!(!n.is_routable());
        n.pins.push(PinId::new(0));
        assert!(!n.is_routable());
        n.pins.push(PinId::new(1));
        assert!(n.is_routable());
        assert_eq!(n.degree(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(NetType::Sensitive.to_string(), "sensitive");
    }
}
