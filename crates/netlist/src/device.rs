use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of a placeable analog device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// P-channel MOSFET.
    Pmos,
    /// N-channel MOSFET.
    Nmos,
    /// Metal/MOM capacitor.
    Capacitor,
    /// Poly resistor.
    Resistor,
    /// Matching dummy — placed and blocking, electrically inert.
    Dummy,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Pmos => "PMOS",
            DeviceKind::Nmos => "NMOS",
            DeviceKind::Capacitor => "CAP",
            DeviceKind::Resistor => "RES",
            DeviceKind::Dummy => "DUMMY",
        };
        f.write_str(s)
    }
}

/// One terminal of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminal {
    /// MOS gate.
    Gate,
    /// MOS drain.
    Drain,
    /// MOS source.
    Source,
    /// MOS bulk.
    Bulk,
    /// Positive plate / terminal of a two-terminal device.
    Pos,
    /// Negative plate / terminal of a two-terminal device.
    Neg,
}

impl Terminal {
    /// The terminals a device of `kind` exposes, in canonical order.
    pub fn for_kind(kind: DeviceKind) -> &'static [Terminal] {
        match kind {
            DeviceKind::Pmos | DeviceKind::Nmos => &[
                Terminal::Gate,
                Terminal::Drain,
                Terminal::Source,
                Terminal::Bulk,
            ],
            DeviceKind::Capacitor | DeviceKind::Resistor => &[Terminal::Pos, Terminal::Neg],
            DeviceKind::Dummy => &[],
        }
    }
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Terminal::Gate => "G",
            Terminal::Drain => "D",
            Terminal::Source => "S",
            Terminal::Bulk => "B",
            Terminal::Pos => "P",
            Terminal::Neg => "N",
        };
        f.write_str(s)
    }
}

/// Small-signal parameters of a MOSFET at its intended operating point.
///
/// The simulator stamps these directly: `gm` as a VCCS from gate–source to
/// drain–source, `gds` as a drain–source conductance, and the capacitances at
/// the corresponding terminals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Channel width in µm.
    pub w_um: f64,
    /// Channel length in µm.
    pub l_um: f64,
    /// Transconductance in siemens.
    pub gm: f64,
    /// Output conductance (1/ro) in siemens.
    pub gds: f64,
    /// Gate–source capacitance in farads.
    pub cgs: f64,
    /// Gate–drain (overlap + Miller) capacitance in farads.
    pub cgd: f64,
    /// Drain–bulk junction capacitance in farads.
    pub cdb: f64,
}

impl MosParams {
    /// Derives small-signal parameters from sizing and drain current using
    /// square-law estimates typical of a 40 nm-class process:
    ///
    /// * `gm = 2·I_D / V_ov` with `V_ov = 0.18 V`
    /// * `gds = λ·I_D`, `λ = 0.35 / L[µm]` (longer channels → better ro;
    ///   short-channel 40 nm devices have weak output resistance)
    /// * `C_ox ≈ 11 fF/µm²`, `cgs = ⅔·C_ox·W·L + C_ov·W`, `C_ov = 0.25 fF/µm`
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive.
    pub fn from_sizing(w_um: f64, l_um: f64, id_amps: f64) -> Self {
        assert!(
            w_um > 0.0 && l_um > 0.0 && id_amps > 0.0,
            "non-positive sizing"
        );
        let v_ov = 0.18;
        let gm = 2.0 * id_amps / v_ov;
        let gds = 0.35 / l_um * id_amps;
        let cox_per_um2 = 11.0e-15;
        let cov_per_um = 0.25e-15;
        let cgs = 2.0 / 3.0 * cox_per_um2 * w_um * l_um + cov_per_um * w_um;
        let cgd = cov_per_um * w_um;
        let cdb = 0.6e-15 * w_um;
        Self {
            w_um,
            l_um,
            gm,
            gds,
            cgs,
            cgd,
            cdb,
        }
    }

    /// Intrinsic gain `gm/gds`.
    pub fn intrinsic_gain(&self) -> f64 {
        self.gm / self.gds
    }
}

/// Value parameters of a capacitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapParams {
    /// Capacitance in farads.
    pub c: f64,
}

/// Value parameters of a resistor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResParams {
    /// Resistance in ohms.
    pub r: f64,
}

/// Electrical parameters of a device, matching its [`DeviceKind`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceParams {
    /// MOSFET small-signal parameters.
    Mos(MosParams),
    /// Capacitor value.
    Cap(CapParams),
    /// Resistor value.
    Res(ResParams),
    /// No electrical behaviour (dummies).
    None,
}

impl DeviceParams {
    /// MOS parameters if this is a MOSFET.
    pub fn as_mos(&self) -> Option<&MosParams> {
        match self {
            DeviceParams::Mos(m) => Some(m),
            _ => None,
        }
    }

    /// Capacitance if this is a capacitor.
    pub fn as_cap(&self) -> Option<&CapParams> {
        match self {
            DeviceParams::Cap(c) => Some(c),
            _ => None,
        }
    }

    /// Resistance if this is a resistor.
    pub fn as_res(&self) -> Option<&ResParams> {
        match self {
            DeviceParams::Res(r) => Some(r),
            _ => None,
        }
    }
}

/// A placeable device: name, kind, electrical parameters, and footprint.
///
/// The footprint (width × height in dbu) drives placement and routing
/// obstacles; it is estimated from sizing when the device is created through
/// [`crate::CircuitBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Instance name, e.g. `"M1"`.
    pub name: String,
    /// Device kind.
    pub kind: DeviceKind,
    /// Electrical parameters.
    pub params: DeviceParams,
    /// Footprint width in dbu.
    pub width: i64,
    /// Footprint height in dbu.
    pub height: i64,
}

impl Device {
    /// Estimated footprint for a device of `kind` with the given parameters.
    ///
    /// MOS area scales with W·L (folded into a near-square aspect), caps with
    /// capacitance density 2 fF/µm², resistors with resistance at 200 Ω/sq.
    pub fn footprint(kind: DeviceKind, params: &DeviceParams) -> (i64, i64) {
        match (kind, params) {
            (DeviceKind::Pmos | DeviceKind::Nmos, DeviceParams::Mos(m)) => {
                // Active area plus contact/guard overhead; folded to aspect <= 4.
                let area_um2 = (m.w_um * m.l_um * 8.0 + 1.0).max(1.0);
                let w = (area_um2.sqrt() * 1.6 * 1_000.0) as i64;
                let h = (area_um2.sqrt() * 0.9 * 1_000.0) as i64;
                (w.max(400), h.max(400))
            }
            (DeviceKind::Capacitor, DeviceParams::Cap(c)) => {
                let area_um2 = (c.c / 2.0e-15).max(1.0);
                let side = (area_um2.sqrt() * 1_000.0) as i64;
                (side.max(500), side.max(500))
            }
            (DeviceKind::Resistor, DeviceParams::Res(r)) => {
                let squares = (r.r / 200.0).max(1.0);
                let w = 500;
                let h = ((squares * 90.0) as i64).clamp(500, 4_000);
                (w, h)
            }
            (DeviceKind::Dummy, _) => (500, 500),
            _ => (500, 500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_per_kind() {
        assert_eq!(Terminal::for_kind(DeviceKind::Nmos).len(), 4);
        assert_eq!(Terminal::for_kind(DeviceKind::Capacitor).len(), 2);
        assert_eq!(Terminal::for_kind(DeviceKind::Dummy).len(), 0);
    }

    #[test]
    fn mos_params_square_law() {
        let m = MosParams::from_sizing(10.0, 0.5, 100e-6);
        assert!((m.gm - 2.0 * 100e-6 / 0.18).abs() < 1e-12);
        assert!((m.gds - 0.35 / 0.5 * 100e-6).abs() < 1e-15);
        assert!(m.intrinsic_gain() > 10.0);
        assert!(m.cgs > m.cgd);
    }

    #[test]
    fn longer_channel_more_gain() {
        let short = MosParams::from_sizing(10.0, 0.1, 100e-6);
        let long = MosParams::from_sizing(10.0, 1.0, 100e-6);
        assert!(long.intrinsic_gain() > short.intrinsic_gain());
    }

    #[test]
    #[should_panic(expected = "non-positive sizing")]
    fn rejects_bad_sizing() {
        let _ = MosParams::from_sizing(0.0, 0.5, 1e-6);
    }

    #[test]
    fn footprints_are_positive_and_monotone() {
        let small = DeviceParams::Mos(MosParams::from_sizing(2.0, 0.2, 10e-6));
        let large = DeviceParams::Mos(MosParams::from_sizing(50.0, 0.5, 10e-6));
        let (ws, hs) = Device::footprint(DeviceKind::Nmos, &small);
        let (wl, hl) = Device::footprint(DeviceKind::Nmos, &large);
        assert!(ws > 0 && hs > 0);
        assert!(wl > ws && hl > hs);

        let c_small = DeviceParams::Cap(CapParams { c: 50e-15 });
        let c_large = DeviceParams::Cap(CapParams { c: 2_000e-15 });
        let (a, _) = Device::footprint(DeviceKind::Capacitor, &c_small);
        let (b, _) = Device::footprint(DeviceKind::Capacitor, &c_large);
        assert!(b > a);
    }

    #[test]
    fn param_accessors() {
        let p = DeviceParams::Cap(CapParams { c: 1e-12 });
        assert!(p.as_cap().is_some());
        assert!(p.as_mos().is_none());
        assert!(p.as_res().is_none());
        let r = DeviceParams::Res(ResParams { r: 1_000.0 });
        assert_eq!(r.as_res().unwrap().r, 1_000.0);
    }

    #[test]
    fn display() {
        assert_eq!(DeviceKind::Pmos.to_string(), "PMOS");
        assert_eq!(Terminal::Gate.to_string(), "G");
    }
}
