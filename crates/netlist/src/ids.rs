use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index, usable for dense per-item storage.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a device (placeable module) within one [`crate::Circuit`].
    ///
    /// Ids are dense indices assigned in insertion order, so they can be used
    /// directly to index `Vec`s sized by the device count.
    DeviceId,
    "d"
);

id_type!(
    /// Identifier of a net within one [`crate::Circuit`].
    NetId,
    "n"
);

id_type!(
    /// Identifier of a pin (device terminal ↔ net attachment) within one
    /// [`crate::Circuit`].
    PinId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let d = DeviceId::new(3);
        assert_eq!(d.index(), 3);
        assert_eq!(d.to_string(), "d3");
        assert_eq!(usize::from(d), 3);
        assert_eq!(NetId::new(7).to_string(), "n7");
        assert_eq!(PinId::new(0).to_string(), "p0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId::new(1) < NetId::new(2));
        assert_eq!(DeviceId::new(5), DeviceId::new(5));
    }
}
