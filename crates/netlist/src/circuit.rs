use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{
    Device, DeviceId, DeviceKind, DeviceParams, Net, NetId, NetType, PinId, SymmetryConstraints,
    Terminal,
};

/// Error raised when building or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A referenced net name was never declared.
    UnknownNet(String),
    /// A device name was used twice.
    DuplicateDevice(String),
    /// A net name was used twice.
    DuplicateNet(String),
    /// A device was given a terminal it does not have.
    BadTerminal(String),
    /// Validation failed (message describes the violation).
    Invalid(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNet(n) => write!(f, "unknown net `{n}`"),
            NetlistError::DuplicateDevice(d) => write!(f, "duplicate device `{d}`"),
            NetlistError::DuplicateNet(n) => write!(f, "duplicate net `{n}`"),
            NetlistError::BadTerminal(m) => write!(f, "invalid terminal: {m}"),
            NetlistError::Invalid(m) => write!(f, "invalid netlist: {m}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A pin: the attachment of one device terminal to one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pin {
    /// Owning device.
    pub device: DeviceId,
    /// Which terminal of the device.
    pub terminal: Terminal,
    /// The net the terminal connects to.
    pub net: NetId,
}

/// The IO roles the performance simulator needs to know about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitIo {
    /// Positive differential input.
    pub vinp: NetId,
    /// Negative differential input.
    pub vinn: NetId,
    /// (Primary) output net.
    pub vout: NetId,
    /// Negative output for fully-differential circuits.
    pub voutn: Option<NetId>,
    /// Supply net.
    pub vdd: NetId,
    /// Ground net.
    pub vss: NetId,
}

/// A complete analog circuit: devices, nets, pins, symmetry, and IO roles.
///
/// Construct with [`CircuitBuilder`]; instances are immutable afterwards.
///
/// # Examples
///
/// ```
/// use af_netlist::benchmarks;
///
/// let c = benchmarks::ota1();
/// assert!(c.validate().is_ok());
/// for net in c.nets() {
///     assert!(net.degree() > 0 || net.ty.is_supply());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    devices: Vec<Device>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    symmetry: SymmetryConstraints,
    io: CircuitIo,
}

impl Circuit {
    /// Circuit name (e.g. `"OTA1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All devices in id order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All nets in id order.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All pins in id order.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Symmetry constraints.
    pub fn symmetry(&self) -> &SymmetryConstraints {
        &self.symmetry
    }

    /// IO roles for simulation.
    pub fn io(&self) -> &CircuitIo {
        &self.io
    }

    /// Device by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Pin by id.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Net id by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId::new(i as u32))
    }

    /// Device id by name.
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.devices
            .iter()
            .position(|d| d.name == name)
            .map(|i| DeviceId::new(i as u32))
    }

    /// Pins of one device.
    pub fn device_pins(&self, d: DeviceId) -> impl Iterator<Item = (PinId, &Pin)> {
        self.pins
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.device == d)
            .map(|(i, p)| (PinId::new(i as u32), p))
    }

    /// Number of devices of `kind` (dummies included only for
    /// `DeviceKind::Dummy`).
    pub fn count_kind(&self, kind: DeviceKind) -> usize {
        self.devices.iter().filter(|d| d.kind == kind).count()
    }

    /// Total placeable module count (all devices including dummies) — the
    /// "#Total" column of Table 1.
    pub fn total_modules(&self) -> usize {
        self.devices.len()
    }

    /// Nets that receive routing guidance (`N*`): nets whose type is guided
    /// and that will be routed. Input/output nets count with a single device
    /// pin because the placer adds a boundary IO pad as their second pin.
    pub fn guided_nets(&self) -> Vec<NetId> {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let io = matches!(n.ty, NetType::Input | NetType::Output);
                n.ty.is_guided() && (n.is_routable() || (io && !n.pins.is_empty()))
            })
            .map(|(i, _)| NetId::new(i as u32))
            .collect()
    }

    /// Symmetric net pairs (`N^SP`).
    pub fn symmetric_net_pairs(&self) -> &[(NetId, NetId)] {
        self.symmetry.net_pairs()
    }

    /// All electrically matched net pairs (symmetric pairs plus extra
    /// matched pairs) — the domain of mismatch/offset analysis.
    pub fn matched_net_pairs(&self) -> Vec<(NetId, NetId)> {
        self.symmetry.matched_net_pairs()
    }

    /// Self-symmetric nets (`N^SS`).
    pub fn self_symmetric_nets(&self) -> &[NetId] {
        self.symmetry.self_nets()
    }

    /// Checks structural invariants:
    ///
    /// * every pin references existing devices and nets,
    /// * every non-supply net with fewer than 2 pins is flagged,
    /// * symmetric device pairs have the same kind and footprint,
    /// * symmetric net pairs have equal degree,
    /// * IO nets exist and carry the expected types.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, p) in self.pins.iter().enumerate() {
            if p.device.index() >= self.devices.len() {
                return Err(NetlistError::Invalid(format!(
                    "pin p{i} references missing device {}",
                    p.device
                )));
            }
            if p.net.index() >= self.nets.len() {
                return Err(NetlistError::Invalid(format!(
                    "pin p{i} references missing net {}",
                    p.net
                )));
            }
        }
        for (i, n) in self.nets.iter().enumerate() {
            // Supply nets may be routed by dedicated power routing; input and
            // output nets terminate at boundary IO pads that the placer adds,
            // so a single device pin is legal for them.
            let exempt = n.ty.is_supply() || matches!(n.ty, NetType::Input | NetType::Output);
            if !exempt && n.pins.len() < 2 {
                return Err(NetlistError::Invalid(format!(
                    "net `{}` (n{i}) has {} pin(s); signal nets need >= 2",
                    n.name,
                    n.pins.len()
                )));
            }
            for &pid in &n.pins {
                if self.pins[pid.index()].net != NetId::new(i as u32) {
                    return Err(NetlistError::Invalid(format!(
                        "net `{}` lists pin {pid} that points elsewhere",
                        n.name
                    )));
                }
            }
        }
        for &(a, b) in self.symmetry.device_pairs() {
            let (da, db) = (self.device(a), self.device(b));
            if da.kind != db.kind {
                return Err(NetlistError::Invalid(format!(
                    "symmetric devices `{}`/`{}` have different kinds",
                    da.name, db.name
                )));
            }
            if (da.width, da.height) != (db.width, db.height) {
                return Err(NetlistError::Invalid(format!(
                    "symmetric devices `{}`/`{}` have different footprints",
                    da.name, db.name
                )));
            }
        }
        for &(a, b) in self.symmetry.net_pairs() {
            if self.net(a).degree() != self.net(b).degree() {
                return Err(NetlistError::Invalid(format!(
                    "symmetric nets `{}`/`{}` have different degrees",
                    self.net(a).name,
                    self.net(b).name
                )));
            }
        }
        let io = &self.io;
        for (id, want) in [
            (io.vinp, NetType::Input),
            (io.vinn, NetType::Input),
            (io.vout, NetType::Output),
            (io.vdd, NetType::Power),
            (io.vss, NetType::Ground),
        ] {
            if id.index() >= self.nets.len() {
                return Err(NetlistError::Invalid(format!("io net {id} missing")));
            }
            if self.net(id).ty != want {
                return Err(NetlistError::Invalid(format!(
                    "io net `{}` has type {} but role requires {}",
                    self.net(id).name,
                    self.net(id).ty,
                    want
                )));
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Circuit`].
///
/// # Examples
///
/// ```
/// use af_netlist::{CircuitBuilder, DeviceKind, DeviceParams, MosParams, NetType, Terminal};
///
/// # fn main() -> Result<(), af_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("demo");
/// b.add_net("vdd", NetType::Power)?;
/// b.add_net("vss", NetType::Ground)?;
/// b.add_net("inp", NetType::Input)?;
/// b.add_net("inn", NetType::Input)?;
/// b.add_net("out", NetType::Output)?;
/// let m = MosParams::from_sizing(4.0, 0.4, 20e-6);
/// b.add_device(
///     "M1",
///     DeviceKind::Nmos,
///     DeviceParams::Mos(m),
///     &[(Terminal::Gate, "inp"), (Terminal::Drain, "out"),
///       (Terminal::Source, "vss"), (Terminal::Bulk, "vss")],
/// )?;
/// b.add_device(
///     "M2",
///     DeviceKind::Nmos,
///     DeviceParams::Mos(m),
///     &[(Terminal::Gate, "inn"), (Terminal::Drain, "vdd"),
///       (Terminal::Source, "vss"), (Terminal::Bulk, "vss")],
/// )?;
/// b.add_device(
///     "M3",
///     DeviceKind::Nmos,
///     DeviceParams::Mos(m),
///     &[(Terminal::Gate, "inn"), (Terminal::Drain, "out"),
///       (Terminal::Source, "inp"), (Terminal::Bulk, "vss")],
/// )?;
/// b.set_io("inp", "inn", "out", None, "vdd", "vss")?;
/// let c = b.finish()?;
/// assert_eq!(c.devices().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    name: String,
    devices: Vec<Device>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    net_index: HashMap<String, NetId>,
    device_index: HashMap<String, DeviceId>,
    symmetry: SymmetryConstraints,
    io: Option<CircuitIo>,
}

impl CircuitBuilder {
    /// Starts a new circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            devices: Vec::new(),
            nets: Vec::new(),
            pins: Vec::new(),
            net_index: HashMap::new(),
            device_index: HashMap::new(),
            symmetry: SymmetryConstraints::new(),
            io: None,
        }
    }

    /// Declares a net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateNet`] if the name is taken.
    pub fn add_net(&mut self, name: &str, ty: NetType) -> Result<NetId, NetlistError> {
        if self.net_index.contains_key(name) {
            return Err(NetlistError::DuplicateNet(name.to_string()));
        }
        let id = NetId::new(self.nets.len() as u32);
        self.nets.push(Net::new(name, ty));
        self.net_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Sets the routing weight of a net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if the net was never declared.
    pub fn set_net_weight(&mut self, name: &str, weight: f64) -> Result<(), NetlistError> {
        let id = self.net_id(name)?;
        self.nets[id.index()].weight = weight;
        Ok(())
    }

    fn net_id(&self, name: &str) -> Result<NetId, NetlistError> {
        self.net_index
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownNet(name.to_string()))
    }

    /// Adds a device and connects its terminals to named nets.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateDevice`] on a repeated instance name.
    /// * [`NetlistError::UnknownNet`] if a terminal references an undeclared
    ///   net.
    /// * [`NetlistError::BadTerminal`] if a terminal is repeated or not valid
    ///   for the device kind.
    pub fn add_device(
        &mut self,
        name: &str,
        kind: DeviceKind,
        params: DeviceParams,
        connections: &[(Terminal, &str)],
    ) -> Result<DeviceId, NetlistError> {
        if self.device_index.contains_key(name) {
            return Err(NetlistError::DuplicateDevice(name.to_string()));
        }
        let allowed = Terminal::for_kind(kind);
        let mut seen = Vec::new();
        for (t, _) in connections {
            if !allowed.contains(t) {
                return Err(NetlistError::BadTerminal(format!(
                    "device `{name}` ({kind}) has no terminal {t}"
                )));
            }
            if seen.contains(t) {
                return Err(NetlistError::BadTerminal(format!(
                    "device `{name}` terminal {t} connected twice"
                )));
            }
            seen.push(*t);
        }
        let id = DeviceId::new(self.devices.len() as u32);
        let (width, height) = Device::footprint(kind, &params);
        self.devices.push(Device {
            name: name.to_string(),
            kind,
            params,
            width,
            height,
        });
        self.device_index.insert(name.to_string(), id);
        for (t, net_name) in connections {
            let net = self.net_id(net_name)?;
            let pid = PinId::new(self.pins.len() as u32);
            self.pins.push(Pin {
                device: id,
                terminal: *t,
                net,
            });
            self.nets[net.index()].pins.push(pid);
        }
        Ok(id)
    }

    /// Registers a symmetric device pair (placement mirroring).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Invalid`] if either device is unknown.
    pub fn add_device_pair(&mut self, a: &str, b: &str) -> Result<(), NetlistError> {
        let da = self.device_id(a)?;
        let db = self.device_id(b)?;
        self.symmetry.add_device_pair(da, db);
        Ok(())
    }

    /// Registers a self-symmetric device.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Invalid`] if the device is unknown.
    pub fn add_self_device(&mut self, d: &str) -> Result<(), NetlistError> {
        let id = self.device_id(d)?;
        self.symmetry.add_self_device(id);
        Ok(())
    }

    fn device_id(&self, name: &str) -> Result<DeviceId, NetlistError> {
        self.device_index
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::Invalid(format!("unknown device `{name}`")))
    }

    /// Registers a symmetric net pair (`N^SP`).
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if either net is unknown.
    pub fn add_net_pair(&mut self, a: &str, b: &str) -> Result<(), NetlistError> {
        let na = self.net_id(a)?;
        let nb = self.net_id(b)?;
        self.symmetry.add_net_pair(na, nb);
        Ok(())
    }

    /// Registers a self-symmetric net (`N^SS`).
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if the net is unknown.
    pub fn add_self_net(&mut self, n: &str) -> Result<(), NetlistError> {
        let id = self.net_id(n)?;
        self.symmetry.add_self_net(id);
        Ok(())
    }

    /// Registers an electrically matched (but not layout-mirrored) net pair.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if either net is unknown.
    pub fn add_matched_pair(&mut self, a: &str, b: &str) -> Result<(), NetlistError> {
        let na = self.net_id(a)?;
        let nb = self.net_id(b)?;
        self.symmetry.add_matched_pair(na, nb);
        Ok(())
    }

    /// Declares the IO roles by net name.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if any named net is unknown.
    pub fn set_io(
        &mut self,
        vinp: &str,
        vinn: &str,
        vout: &str,
        voutn: Option<&str>,
        vdd: &str,
        vss: &str,
    ) -> Result<(), NetlistError> {
        let io = CircuitIo {
            vinp: self.net_id(vinp)?,
            vinn: self.net_id(vinn)?,
            vout: self.net_id(vout)?,
            voutn: voutn.map(|n| self.net_id(n)).transpose()?,
            vdd: self.net_id(vdd)?,
            vss: self.net_id(vss)?,
        };
        self.io = Some(io);
        Ok(())
    }

    /// Finalizes and validates the circuit.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Invalid`] if IO was never set or validation fails.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let io = self
            .io
            .ok_or_else(|| NetlistError::Invalid("io roles not set".to_string()))?;
        let c = Circuit {
            name: self.name,
            devices: self.devices,
            nets: self.nets,
            pins: self.pins,
            symmetry: self.symmetry,
            io,
        };
        c.validate()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MosParams;

    fn mos() -> DeviceParams {
        DeviceParams::Mos(MosParams::from_sizing(4.0, 0.4, 20e-6))
    }

    fn base_builder() -> CircuitBuilder {
        let mut b = CircuitBuilder::new("t");
        for (n, ty) in [
            ("vdd", NetType::Power),
            ("vss", NetType::Ground),
            ("inp", NetType::Input),
            ("inn", NetType::Input),
            ("out", NetType::Output),
        ] {
            b.add_net(n, ty).unwrap();
        }
        b
    }

    fn connect_all(b: &mut CircuitBuilder) {
        b.add_device(
            "M1",
            DeviceKind::Nmos,
            mos(),
            &[
                (Terminal::Gate, "inp"),
                (Terminal::Drain, "out"),
                (Terminal::Source, "inn"),
                (Terminal::Bulk, "vss"),
            ],
        )
        .unwrap();
        b.add_device(
            "M2",
            DeviceKind::Nmos,
            mos(),
            &[
                (Terminal::Gate, "inn"),
                (Terminal::Drain, "out"),
                (Terminal::Source, "inp"),
                (Terminal::Bulk, "vss"),
            ],
        )
        .unwrap();
        b.set_io("inp", "inn", "out", None, "vdd", "vss").unwrap();
    }

    #[test]
    fn build_and_validate() {
        let mut b = base_builder();
        connect_all(&mut b);
        let c = b.finish().unwrap();
        assert_eq!(c.devices().len(), 2);
        assert_eq!(c.nets().len(), 5);
        assert_eq!(c.pins().len(), 8);
        assert_eq!(c.net_by_name("out"), Some(NetId::new(4)));
        assert_eq!(c.device_by_name("M2"), Some(DeviceId::new(1)));
        assert_eq!(c.device_pins(DeviceId::new(0)).count(), 4);
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut b = base_builder();
        assert_eq!(
            b.add_net("vdd", NetType::Power),
            Err(NetlistError::DuplicateNet("vdd".to_string()))
        );
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut b = base_builder();
        connect_all(&mut b);
        let err = b
            .add_device("M1", DeviceKind::Nmos, mos(), &[])
            .unwrap_err();
        assert_eq!(err, NetlistError::DuplicateDevice("M1".to_string()));
    }

    #[test]
    fn unknown_net_rejected() {
        let mut b = base_builder();
        let err = b
            .add_device("M1", DeviceKind::Nmos, mos(), &[(Terminal::Gate, "nope")])
            .unwrap_err();
        assert_eq!(err, NetlistError::UnknownNet("nope".to_string()));
    }

    #[test]
    fn bad_terminal_rejected() {
        let mut b = base_builder();
        let err = b
            .add_device(
                "C1",
                DeviceKind::Capacitor,
                mos(),
                &[(Terminal::Gate, "out")],
            )
            .unwrap_err();
        assert!(matches!(err, NetlistError::BadTerminal(_)));
        let err2 = b
            .add_device(
                "M9",
                DeviceKind::Nmos,
                mos(),
                &[(Terminal::Gate, "out"), (Terminal::Gate, "inp")],
            )
            .unwrap_err();
        assert!(matches!(err2, NetlistError::BadTerminal(_)));
    }

    #[test]
    fn missing_io_rejected() {
        let b = CircuitBuilder::new("x");
        assert!(matches!(b.finish(), Err(NetlistError::Invalid(_))));
    }

    #[test]
    fn single_pin_signal_net_rejected() {
        let mut b = base_builder();
        b.add_net("dangling", NetType::Signal).unwrap();
        connect_all(&mut b);
        b.add_device(
            "M3",
            DeviceKind::Nmos,
            mos(),
            &[
                (Terminal::Gate, "dangling"),
                (Terminal::Drain, "out"),
                (Terminal::Source, "vss"),
                (Terminal::Bulk, "vss"),
            ],
        )
        .unwrap();
        assert!(matches!(b.finish(), Err(NetlistError::Invalid(_))));
    }

    #[test]
    fn symmetric_pair_validation() {
        let mut b = base_builder();
        connect_all(&mut b);
        b.add_device_pair("M1", "M2").unwrap();
        b.add_net_pair("inp", "inn").unwrap();
        let c = b.finish().unwrap();
        assert_eq!(c.symmetric_net_pairs().len(), 1);
        assert_eq!(
            c.symmetry().mirror_device(DeviceId::new(0)),
            Some(DeviceId::new(1))
        );
    }

    #[test]
    fn guided_nets_exclude_supply() {
        let mut b = base_builder();
        connect_all(&mut b);
        let c = b.finish().unwrap();
        let guided = c.guided_nets();
        assert!(guided.contains(&c.net_by_name("inp").unwrap()));
        assert!(!guided.contains(&c.net_by_name("vdd").unwrap()));
    }

    #[test]
    fn error_display() {
        assert!(NetlistError::UnknownNet("x".into())
            .to_string()
            .contains("x"));
        assert!(NetlistError::Invalid("msg".into())
            .to_string()
            .contains("msg"));
    }
}
