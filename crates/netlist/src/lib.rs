#![warn(missing_docs)]
//! Analog circuit netlists for the AnalogFold reproduction.
//!
//! Models exactly the inputs of the paper's Problem 1 (Analog Detailed
//! Routing): placed devices `M`, nets `N` with specific types `N^T`,
//! self-symmetric nets `N^SS`, symmetric net pairs `N^SP`, plus the device
//! small-signal parameters the performance simulator needs.
//!
//! The [`benchmarks`] module generates the four OTA benchmark circuits of
//! Table 1: two two-stage Miller-compensated OTAs (OTA1/OTA2, same topology,
//! different sizing) and two telescopic OTAs (OTA3/OTA4).
//!
//! # Examples
//!
//! ```
//! use af_netlist::benchmarks;
//!
//! let ota = benchmarks::ota1();
//! assert_eq!(ota.count_kind(af_netlist::DeviceKind::Pmos), 6);
//! assert!(!ota.symmetric_net_pairs().is_empty());
//! ```

mod circuit;
mod device;
mod ids;
mod net;
mod symmetry;

pub mod benchmarks;

pub use circuit::{Circuit, CircuitBuilder, CircuitIo, NetlistError};
pub use device::{CapParams, Device, DeviceKind, DeviceParams, MosParams, ResParams, Terminal};
pub use ids::{DeviceId, NetId, PinId};
pub use net::{Net, NetType};
pub use symmetry::{DeviceSymmetry, NetSymmetry, SymmetryConstraints};
