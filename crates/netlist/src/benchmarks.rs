//! The four OTA benchmark circuits of Table 1.
//!
//! | Benchmark | #PMOS | #NMOS | #Cap | #Res | #Total |
//! |-----------|-------|-------|------|------|--------|
//! | OTA1/OTA2 | 6     | 8     | 2    | 0    | 25     |
//! | OTA3/OTA4 | 16    | 10    | 6    | 4    | 36     |
//!
//! OTA1 and OTA2 share a two-stage Miller-compensated topology with different
//! sizing; OTA3 and OTA4 share a fully-differential telescopic topology with
//! different sizing. "#Total" counts all placeable modules: for the two-stage
//! designs this includes nine matching dummies, as is standard practice for
//! analog matching.
//!
//! # Examples
//!
//! ```
//! use af_netlist::{benchmarks, DeviceKind};
//!
//! for c in benchmarks::all() {
//!     assert!(c.validate().is_ok(), "{} must validate", c.name());
//! }
//! assert_eq!(benchmarks::ota3().count_kind(DeviceKind::Resistor), 4);
//! ```

use crate::{
    CapParams, Circuit, CircuitBuilder, DeviceKind, DeviceParams, MosParams, NetType, ResParams,
    Terminal,
};

/// Sizing knobs that differentiate OTA1 from OTA2 (and OTA3 from OTA4).
#[derive(Debug, Clone, Copy)]
struct TwoStageSizing {
    /// Diff-pair channel length (µm) — dominates first-stage gain.
    l1: f64,
    /// Diff-pair width (µm).
    w1: f64,
    /// Diff-pair drain current (A).
    id1: f64,
    /// Tail-device channel length (µm) — dominates CMRR.
    l_tail: f64,
    /// Second-stage drain current (A).
    id2: f64,
    /// Miller compensation capacitance (F).
    cc: f64,
    /// Load capacitance (F).
    cl: f64,
}

#[derive(Debug, Clone, Copy)]
struct TelescopicSizing {
    l1: f64,
    w1: f64,
    id1: f64,
    l_tail: f64,
    cl: f64,
}

fn mos(w: f64, l: f64, id: f64) -> DeviceParams {
    DeviceParams::Mos(MosParams::from_sizing(w, l, id))
}

fn cap(c: f64) -> DeviceParams {
    DeviceParams::Cap(CapParams { c })
}

fn res(r: f64) -> DeviceParams {
    DeviceParams::Res(ResParams { r })
}

/// Builds a two-stage Miller-compensated OTA (the OTA1/OTA2 topology):
/// NMOS telescopic-cascoded first stage with PMOS cascoded mirror load,
/// PMOS common-source second stage, Miller compensation.
fn two_stage(name: &str, s: TwoStageSizing) -> Circuit {
    let mut b = CircuitBuilder::new(name);
    let nets: &[(&str, NetType)] = &[
        ("vdd", NetType::Power),
        ("vss", NetType::Ground),
        ("vinp", NetType::Input),
        ("vinn", NetType::Input),
        ("vout", NetType::Output),
        ("tail", NetType::Signal),
        ("n1", NetType::Sensitive),
        ("n2", NetType::Sensitive),
        ("nc1", NetType::Signal),
        ("nc2", NetType::Signal),
        ("pc1", NetType::Signal),
        ("pc2", NetType::Signal),
        ("vbn", NetType::Bias),
        ("vbc", NetType::Bias),
        ("vbp", NetType::Bias),
    ];
    for (n, ty) in nets {
        b.add_net(n, *ty).expect("fresh net");
    }

    let pair = mos(s.w1, s.l1, s.id1);
    let casc = mos(s.w1 * 0.8, s.l1, s.id1);
    let load = mos(s.w1 * 1.4, s.l1, s.id1);
    let tail = mos(s.w1 * 2.0, s.l_tail, 2.0 * s.id1);
    let second = mos(s.w1 * 3.0, s.l1 * 0.8, s.id2);
    let bias = mos(s.w1 * 0.5, s.l_tail, s.id1);

    // NMOS (8)
    b.add_device(
        "M1",
        DeviceKind::Nmos,
        pair,
        &[
            (Terminal::Gate, "vinp"),
            (Terminal::Drain, "nc1"),
            (Terminal::Source, "tail"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M1");
    b.add_device(
        "M2",
        DeviceKind::Nmos,
        pair,
        &[
            (Terminal::Gate, "vinn"),
            (Terminal::Drain, "nc2"),
            (Terminal::Source, "tail"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M2");
    b.add_device(
        "M9",
        DeviceKind::Nmos,
        casc,
        &[
            (Terminal::Gate, "vbc"),
            (Terminal::Drain, "n1"),
            (Terminal::Source, "nc1"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M9");
    b.add_device(
        "M10",
        DeviceKind::Nmos,
        casc,
        &[
            (Terminal::Gate, "vbc"),
            (Terminal::Drain, "n2"),
            (Terminal::Source, "nc2"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M10");
    b.add_device(
        "M5",
        DeviceKind::Nmos,
        tail,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "tail"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M5");
    b.add_device(
        "M7",
        DeviceKind::Nmos,
        mos(s.w1 * 2.0, s.l_tail, s.id2),
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "vout"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M7");
    b.add_device(
        "M8",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "vbn"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M8");
    b.add_device(
        "M11",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbc"),
            (Terminal::Drain, "vbc"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M11");

    // PMOS (6)
    b.add_device(
        "M3",
        DeviceKind::Pmos,
        load,
        &[
            (Terminal::Gate, "n1"),
            (Terminal::Drain, "pc1"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("M3");
    b.add_device(
        "M4",
        DeviceKind::Pmos,
        load,
        &[
            (Terminal::Gate, "n1"),
            (Terminal::Drain, "pc2"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("M4");
    b.add_device(
        "M12",
        DeviceKind::Pmos,
        casc,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "n1"),
            (Terminal::Source, "pc1"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("M12");
    b.add_device(
        "M13",
        DeviceKind::Pmos,
        casc,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "n2"),
            (Terminal::Source, "pc2"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("M13");
    b.add_device(
        "M6",
        DeviceKind::Pmos,
        second,
        &[
            (Terminal::Gate, "n2"),
            (Terminal::Drain, "vout"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("M6");
    b.add_device(
        "M14",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "vbp"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("M14");

    // Capacitors (2)
    b.add_device(
        "CC",
        DeviceKind::Capacitor,
        cap(s.cc),
        &[(Terminal::Pos, "vout"), (Terminal::Neg, "n2")],
    )
    .expect("CC");
    b.add_device(
        "CL",
        DeviceKind::Capacitor,
        cap(s.cl),
        &[(Terminal::Pos, "vout"), (Terminal::Neg, "vss")],
    )
    .expect("CL");

    // Matching dummies (9) — bring the placeable-module total to 25.
    for i in 0..9 {
        b.add_device(
            &format!("DUM{i}"),
            DeviceKind::Dummy,
            DeviceParams::None,
            &[],
        )
        .expect("dummy");
    }

    // Symmetry.
    for (a, x) in [("M1", "M2"), ("M9", "M10"), ("M3", "M4"), ("M12", "M13")] {
        b.add_device_pair(a, x).expect("device pair");
    }
    b.add_self_device("M5").expect("self device");
    // Note: n1/n2 are NOT a symmetric net pair — n1 drives both mirror
    // gates and n2 feeds the single-ended second stage, so their pin sets are
    // not mirror images. Only geometrically mirrored nets are paired.
    for (a, x) in [("vinp", "vinn"), ("nc1", "nc2"), ("pc1", "pc2")] {
        b.add_net_pair(a, x).expect("net pair");
    }
    // n1/n2 are matched branches electrically even though their pin sets are
    // not mirror images (see note above).
    b.add_matched_pair("n1", "n2").expect("matched pair");
    b.add_self_net("tail").expect("self net");

    // Net weights: critical analog nets route first.
    for (n, w) in [
        ("vinp", 4.0),
        ("vinn", 4.0),
        ("n1", 3.0),
        ("n2", 3.0),
        ("vout", 3.0),
        ("tail", 2.0),
    ] {
        b.set_net_weight(n, w).expect("weight");
    }

    b.set_io("vinp", "vinn", "vout", None, "vdd", "vss")
        .expect("io");
    b.finish().expect("two-stage OTA must validate")
}

/// Builds a fully-differential telescopic OTA (the OTA3/OTA4 topology).
fn telescopic(name: &str, s: TelescopicSizing) -> Circuit {
    let mut b = CircuitBuilder::new(name);
    let nets: &[(&str, NetType)] = &[
        ("vdd", NetType::Power),
        ("vss", NetType::Ground),
        ("vinp", NetType::Input),
        ("vinn", NetType::Input),
        ("voutp", NetType::Output),
        ("voutn", NetType::Output),
        ("tail", NetType::Signal),
        ("x1", NetType::Sensitive),
        ("x2", NetType::Sensitive),
        ("y1", NetType::Signal),
        ("y2", NetType::Signal),
        ("vbn", NetType::Bias),
        ("vbnc", NetType::Bias),
        ("vbp", NetType::Bias),
        ("vbpc", NetType::Bias),
        ("vcmfb", NetType::Signal),
        ("vcmref", NetType::Bias),
        ("cmtail", NetType::Signal),
        ("cmo", NetType::Signal),
        ("cmo2", NetType::Signal),
    ];
    for (n, ty) in nets {
        b.add_net(n, *ty).expect("fresh net");
    }

    let pair = mos(s.w1, s.l1, s.id1);
    let ncasc = mos(s.w1 * 0.8, s.l1, s.id1);
    let pcasc = mos(s.w1 * 1.2, s.l1, s.id1);
    let psrc = mos(s.w1 * 1.6, s.l1 * 1.5, s.id1);
    let tail = mos(s.w1 * 2.0, s.l_tail, 2.0 * s.id1);
    let bias = mos(s.w1 * 0.5, s.l_tail, s.id1 * 0.5);
    let cm = mos(s.w1 * 0.4, s.l1, s.id1 * 0.25);

    // NMOS (10)
    b.add_device(
        "M1",
        DeviceKind::Nmos,
        pair,
        &[
            (Terminal::Gate, "vinp"),
            (Terminal::Drain, "x1"),
            (Terminal::Source, "tail"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M1");
    b.add_device(
        "M2",
        DeviceKind::Nmos,
        pair,
        &[
            (Terminal::Gate, "vinn"),
            (Terminal::Drain, "x2"),
            (Terminal::Source, "tail"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M2");
    b.add_device(
        "M3",
        DeviceKind::Nmos,
        ncasc,
        &[
            (Terminal::Gate, "vbnc"),
            (Terminal::Drain, "voutn"),
            (Terminal::Source, "x1"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M3");
    b.add_device(
        "M4",
        DeviceKind::Nmos,
        ncasc,
        &[
            (Terminal::Gate, "vbnc"),
            (Terminal::Drain, "voutp"),
            (Terminal::Source, "x2"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M4");
    b.add_device(
        "M5",
        DeviceKind::Nmos,
        tail,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "tail"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M5");
    b.add_device(
        "M6",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "vbn"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M6");
    b.add_device(
        "M7",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbnc"),
            (Terminal::Drain, "vbnc"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M7");
    b.add_device(
        "M8",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "vbp"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M8");
    b.add_device(
        "M9",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "vbpc"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M9");
    b.add_device(
        "M10",
        DeviceKind::Nmos,
        cm,
        &[
            (Terminal::Gate, "cmo"),
            (Terminal::Drain, "cmo"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M10");

    // PMOS (16)
    for (name, g, d, src_net) in [
        ("MP1", "vbp", "y1", "vdd"),
        ("MP2", "vbp", "y2", "vdd"),
        ("MP12", "vbp", "y1", "vdd"),
        ("MP13", "vbp", "y2", "vdd"),
    ] {
        b.add_device(
            name,
            DeviceKind::Pmos,
            psrc,
            &[
                (Terminal::Gate, g),
                (Terminal::Drain, d),
                (Terminal::Source, src_net),
                (Terminal::Bulk, "vdd"),
            ],
        )
        .expect("p source");
    }
    for (name, d, src) in [
        ("MP3", "voutn", "y1"),
        ("MP4", "voutp", "y2"),
        ("MP14", "voutn", "y1"),
        ("MP15", "voutp", "y2"),
    ] {
        b.add_device(
            name,
            DeviceKind::Pmos,
            pcasc,
            &[
                (Terminal::Gate, "vbpc"),
                (Terminal::Drain, d),
                (Terminal::Source, src),
                (Terminal::Bulk, "vdd"),
            ],
        )
        .expect("p cascode");
    }
    b.add_device(
        "MP5",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "vbp"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP5");
    b.add_device(
        "MP16",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "vbp"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP16");
    b.add_device(
        "MP6",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vbpc"),
            (Terminal::Drain, "vbpc"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP6");
    b.add_device(
        "MP7",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vbpc"),
            (Terminal::Drain, "vbpc"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP7");
    b.add_device(
        "MP8",
        DeviceKind::Pmos,
        cm,
        &[
            (Terminal::Gate, "vcmfb"),
            (Terminal::Drain, "cmo"),
            (Terminal::Source, "cmtail"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP8");
    b.add_device(
        "MP9",
        DeviceKind::Pmos,
        cm,
        &[
            (Terminal::Gate, "vcmref"),
            (Terminal::Drain, "cmo2"),
            (Terminal::Source, "cmtail"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP9");
    b.add_device(
        "MP10",
        DeviceKind::Pmos,
        cm,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "cmtail"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP10");
    b.add_device(
        "MP11",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vcmref"),
            (Terminal::Drain, "vcmref"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP11");

    // Capacitors (6)
    b.add_device(
        "CL1",
        DeviceKind::Capacitor,
        cap(s.cl),
        &[(Terminal::Pos, "voutp"), (Terminal::Neg, "vss")],
    )
    .expect("CL1");
    b.add_device(
        "CL2",
        DeviceKind::Capacitor,
        cap(s.cl),
        &[(Terminal::Pos, "voutn"), (Terminal::Neg, "vss")],
    )
    .expect("CL2");
    b.add_device(
        "CCM1",
        DeviceKind::Capacitor,
        cap(s.cl * 0.2),
        &[(Terminal::Pos, "voutp"), (Terminal::Neg, "vcmfb")],
    )
    .expect("CCM1");
    b.add_device(
        "CCM2",
        DeviceKind::Capacitor,
        cap(s.cl * 0.2),
        &[(Terminal::Pos, "voutn"), (Terminal::Neg, "vcmfb")],
    )
    .expect("CCM2");
    b.add_device(
        "CD1",
        DeviceKind::Capacitor,
        cap(1e-12),
        &[(Terminal::Pos, "vbp"), (Terminal::Neg, "vss")],
    )
    .expect("CD1");
    b.add_device(
        "CD2",
        DeviceKind::Capacitor,
        cap(1e-12),
        &[(Terminal::Pos, "vbn"), (Terminal::Neg, "vss")],
    )
    .expect("CD2");

    // Resistors (4)
    b.add_device(
        "R1",
        DeviceKind::Resistor,
        res(200e3),
        &[(Terminal::Pos, "voutp"), (Terminal::Neg, "vcmfb")],
    )
    .expect("R1");
    b.add_device(
        "R2",
        DeviceKind::Resistor,
        res(200e3),
        &[(Terminal::Pos, "voutn"), (Terminal::Neg, "vcmfb")],
    )
    .expect("R2");
    b.add_device(
        "R3",
        DeviceKind::Resistor,
        res(50e3),
        &[(Terminal::Pos, "cmo2"), (Terminal::Neg, "vss")],
    )
    .expect("R3");
    b.add_device(
        "R4",
        DeviceKind::Resistor,
        res(100e3),
        &[(Terminal::Pos, "vcmref"), (Terminal::Neg, "vss")],
    )
    .expect("R4");

    // Symmetry.
    for (a, x) in [
        ("M1", "M2"),
        ("M3", "M4"),
        ("MP1", "MP2"),
        ("MP12", "MP13"),
        ("MP3", "MP4"),
        ("MP14", "MP15"),
        ("CL1", "CL2"),
        ("CCM1", "CCM2"),
        ("R1", "R2"),
    ] {
        b.add_device_pair(a, x).expect("device pair");
    }
    b.add_self_device("M5").expect("self device");
    for (a, x) in [
        ("vinp", "vinn"),
        ("x1", "x2"),
        ("voutp", "voutn"),
        ("y1", "y2"),
    ] {
        b.add_net_pair(a, x).expect("net pair");
    }
    b.add_self_net("tail").expect("self net");
    b.add_self_net("vcmfb").expect("self net");

    for (n, w) in [
        ("vinp", 4.0),
        ("vinn", 4.0),
        ("voutp", 3.0),
        ("voutn", 3.0),
        ("x1", 3.0),
        ("x2", 3.0),
        ("tail", 2.0),
    ] {
        b.set_net_weight(n, w).expect("weight");
    }

    b.set_io("vinp", "vinn", "voutp", Some("voutn"), "vdd", "vss")
        .expect("io");
    b.finish().expect("telescopic OTA must validate")
}

/// OTA1 — two-stage Miller OTA, conservative sizing (long channels, strong
/// tail) giving high schematic CMRR and moderate gain.
pub fn ota1() -> Circuit {
    two_stage(
        "OTA1",
        TwoStageSizing {
            l1: 0.40,
            w1: 20.0,
            id1: 60e-6,
            l_tail: 0.80,
            id2: 300e-6,
            cc: 900e-15,
            cl: 500e-15,
        },
    )
}

/// OTA2 — same topology as OTA1 with aggressive sizing (short channels, weak
/// tail): lower schematic gain and much lower CMRR, as in Table 2.
pub fn ota2() -> Circuit {
    two_stage(
        "OTA2",
        TwoStageSizing {
            l1: 0.12,
            w1: 12.0,
            id1: 90e-6,
            l_tail: 0.12,
            id2: 450e-6,
            cc: 1_300e-15,
            cl: 400e-15,
        },
    )
}

/// OTA3 — telescopic OTA, conservative sizing (high bandwidth, high CMRR).
pub fn ota3() -> Circuit {
    telescopic(
        "OTA3",
        TelescopicSizing {
            l1: 0.40,
            w1: 16.0,
            id1: 150e-6,
            l_tail: 0.80,
            cl: 450e-15,
        },
    )
}

/// OTA4 — same topology as OTA3 with faster sizing (larger currents).
pub fn ota4() -> Circuit {
    telescopic(
        "OTA4",
        TelescopicSizing {
            l1: 0.32,
            w1: 20.0,
            id1: 220e-6,
            l_tail: 0.60,
            cl: 430e-15,
        },
    )
}

/// All four benchmarks in Table 1 order.
pub fn all() -> Vec<Circuit> {
    vec![ota1(), ota2(), ota3(), ota4()]
}

/// OTA5 — a folded-cascode OTA (single-ended), an *extension* beyond the
/// paper's four benchmarks used to exercise the flow on a third topology.
pub fn ota5() -> Circuit {
    folded_cascode("OTA5")
}

/// Builds a single-ended folded-cascode OTA: NMOS input pair folded into a
/// PMOS cascode output branch with an NMOS cascoded mirror at the bottom.
fn folded_cascode(name: &str) -> Circuit {
    let mut b = CircuitBuilder::new(name);
    let nets: &[(&str, NetType)] = &[
        ("vdd", NetType::Power),
        ("vss", NetType::Ground),
        ("vinp", NetType::Input),
        ("vinn", NetType::Input),
        ("vout", NetType::Output),
        ("tail", NetType::Signal),
        ("f1", NetType::Sensitive),
        ("f2", NetType::Sensitive),
        ("m1", NetType::Signal),
        ("m2", NetType::Signal),
        ("outm", NetType::Signal),
        ("vbn", NetType::Bias),
        ("vbnc", NetType::Bias),
        ("vbp", NetType::Bias),
        ("vbpc", NetType::Bias),
    ];
    for (n, ty) in nets {
        b.add_net(n, *ty).expect("fresh net");
    }
    let pair = mos(14.0, 0.35, 90e-6);
    let pcasc = mos(12.0, 0.35, 90e-6);
    let psrc = mos(18.0, 0.50, 180e-6);
    let ncasc = mos(10.0, 0.35, 90e-6);
    let nmir = mos(12.0, 0.50, 90e-6);
    let tail_m = mos(24.0, 0.70, 180e-6);
    let bias = mos(6.0, 0.70, 45e-6);

    // NMOS input pair into the folding nodes.
    b.add_device(
        "M1",
        DeviceKind::Nmos,
        pair,
        &[
            (Terminal::Gate, "vinp"),
            (Terminal::Drain, "f1"),
            (Terminal::Source, "tail"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M1");
    b.add_device(
        "M2",
        DeviceKind::Nmos,
        pair,
        &[
            (Terminal::Gate, "vinn"),
            (Terminal::Drain, "f2"),
            (Terminal::Source, "tail"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M2");
    b.add_device(
        "M5",
        DeviceKind::Nmos,
        tail_m,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "tail"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M5");
    // PMOS current sources feeding the folding nodes + cascodes up to out.
    b.add_device(
        "MP1",
        DeviceKind::Pmos,
        psrc,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "f1"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP1");
    b.add_device(
        "MP2",
        DeviceKind::Pmos,
        psrc,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "f2"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP2");
    b.add_device(
        "MP3",
        DeviceKind::Pmos,
        pcasc,
        &[
            (Terminal::Gate, "vbpc"),
            (Terminal::Drain, "outm"),
            (Terminal::Source, "f1"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP3");
    b.add_device(
        "MP4",
        DeviceKind::Pmos,
        pcasc,
        &[
            (Terminal::Gate, "vbpc"),
            (Terminal::Drain, "vout"),
            (Terminal::Source, "f2"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MP4");
    // NMOS cascoded mirror at the bottom.
    b.add_device(
        "M3",
        DeviceKind::Nmos,
        ncasc,
        &[
            (Terminal::Gate, "vbnc"),
            (Terminal::Drain, "outm"),
            (Terminal::Source, "m1"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M3");
    b.add_device(
        "M4",
        DeviceKind::Nmos,
        ncasc,
        &[
            (Terminal::Gate, "vbnc"),
            (Terminal::Drain, "vout"),
            (Terminal::Source, "m2"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M4");
    b.add_device(
        "M6",
        DeviceKind::Nmos,
        nmir,
        &[
            (Terminal::Gate, "outm"),
            (Terminal::Drain, "m1"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M6");
    b.add_device(
        "M7",
        DeviceKind::Nmos,
        nmir,
        &[
            (Terminal::Gate, "outm"),
            (Terminal::Drain, "m2"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("M7");
    // Bias diodes.
    b.add_device(
        "MB1",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbn"),
            (Terminal::Drain, "vbn"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("MB1");
    b.add_device(
        "MB2",
        DeviceKind::Nmos,
        bias,
        &[
            (Terminal::Gate, "vbnc"),
            (Terminal::Drain, "vbnc"),
            (Terminal::Source, "vss"),
            (Terminal::Bulk, "vss"),
        ],
    )
    .expect("MB2");
    b.add_device(
        "MB3",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vbp"),
            (Terminal::Drain, "vbp"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MB3");
    b.add_device(
        "MB4",
        DeviceKind::Pmos,
        bias,
        &[
            (Terminal::Gate, "vbpc"),
            (Terminal::Drain, "vbpc"),
            (Terminal::Source, "vdd"),
            (Terminal::Bulk, "vdd"),
        ],
    )
    .expect("MB4");
    // Load cap.
    b.add_device(
        "CL",
        DeviceKind::Capacitor,
        cap(400e-15),
        &[(Terminal::Pos, "vout"), (Terminal::Neg, "vss")],
    )
    .expect("CL");

    for (a, x) in [
        ("M1", "M2"),
        ("MP1", "MP2"),
        ("MP3", "MP4"),
        ("M3", "M4"),
        ("M6", "M7"),
    ] {
        b.add_device_pair(a, x).expect("device pair");
    }
    b.add_self_device("M5").expect("self device");
    for (a, x) in [("vinp", "vinn"), ("f1", "f2"), ("m1", "m2")] {
        b.add_net_pair(a, x).expect("net pair");
    }
    b.add_matched_pair("outm", "vout").expect("matched pair");
    b.add_self_net("tail").expect("self net");
    for (n, w) in [
        ("vinp", 4.0),
        ("vinn", 4.0),
        ("f1", 3.0),
        ("f2", 3.0),
        ("vout", 3.0),
    ] {
        b.set_net_weight(n, w).expect("weight");
    }
    b.set_io("vinp", "vinn", "vout", None, "vdd", "vss")
        .expect("io");
    b.finish().expect("folded-cascode OTA must validate")
}

/// Benchmark by name (`"OTA1"` … `"OTA4"`), case-insensitive.
pub fn by_name(name: &str) -> Option<Circuit> {
    match name.to_ascii_uppercase().as_str() {
        "OTA1" => Some(ota1()),
        "OTA2" => Some(ota2()),
        "OTA3" => Some(ota3()),
        "OTA4" => Some(ota4()),
        "OTA5" => Some(ota5()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceKind;

    #[test]
    fn table1_counts() {
        for (c, pmos, nmos, ncap, nres, total) in [
            (ota1(), 6, 8, 2, 0, 25),
            (ota2(), 6, 8, 2, 0, 25),
            (ota3(), 16, 10, 6, 4, 36),
            (ota4(), 16, 10, 6, 4, 36),
        ] {
            assert_eq!(c.count_kind(DeviceKind::Pmos), pmos, "{} PMOS", c.name());
            assert_eq!(c.count_kind(DeviceKind::Nmos), nmos, "{} NMOS", c.name());
            assert_eq!(
                c.count_kind(DeviceKind::Capacitor),
                ncap,
                "{} Cap",
                c.name()
            );
            assert_eq!(c.count_kind(DeviceKind::Resistor), nres, "{} Res", c.name());
            assert_eq!(c.total_modules(), total, "{} Total", c.name());
        }
    }

    #[test]
    fn all_validate() {
        for c in all() {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        }
    }

    #[test]
    fn shared_topologies_have_same_structure() {
        let (a, b2) = (ota1(), ota2());
        assert_eq!(a.devices().len(), b2.devices().len());
        assert_eq!(a.nets().len(), b2.nets().len());
        assert_eq!(a.pins().len(), b2.pins().len());
        let (c, d) = (ota3(), ota4());
        assert_eq!(c.devices().len(), d.devices().len());
        assert_eq!(c.nets().len(), d.nets().len());
    }

    #[test]
    fn sizing_differs() {
        let g1 = ota1()
            .device_by_name("M1")
            .map(|d| ota1().device(d).params.as_mos().unwrap().gm);
        let g2 = ota2()
            .device_by_name("M1")
            .map(|d| ota2().device(d).params.as_mos().unwrap().gm);
        assert_ne!(g1, g2);
    }

    #[test]
    fn symmetry_present() {
        for c in all() {
            assert!(!c.symmetric_net_pairs().is_empty(), "{}", c.name());
            assert!(!c.self_symmetric_nets().is_empty(), "{}", c.name());
            assert!(!c.symmetry().device_pairs().is_empty(), "{}", c.name());
        }
    }

    #[test]
    fn telescopic_is_fully_differential() {
        let c = ota3();
        assert!(c.io().voutn.is_some());
        let c = ota1();
        assert!(c.io().voutn.is_none());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("ota2").unwrap().name(), "OTA2");
        assert!(by_name("OTA9").is_none());
    }

    #[test]
    fn ota5_extension_is_well_formed() {
        let c = ota5();
        c.validate().unwrap();
        assert_eq!(c.count_kind(DeviceKind::Nmos), 9);
        assert_eq!(c.count_kind(DeviceKind::Pmos), 6);
        assert_eq!(c.count_kind(DeviceKind::Capacitor), 1);
        assert_eq!(c.symmetric_net_pairs().len(), 3);
        assert_eq!(by_name("ota5").unwrap().name(), "OTA5");
    }

    #[test]
    fn guided_nets_nonempty() {
        for c in all() {
            assert!(c.guided_nets().len() >= 4, "{}", c.name());
        }
    }
}
