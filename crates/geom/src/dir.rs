use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the three routing axes.
///
/// The paper's guidance triple `C_i[d], d ∈ {0, 1, 2}` indexes these axes in
/// order X (horizontal), Y (vertical), Z (layer changes / vias).
///
/// # Examples
///
/// ```
/// use af_geom::Axis;
///
/// assert_eq!(Axis::from_index(2), Some(Axis::Z));
/// assert_eq!(Axis::X.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Horizontal (guidance index 0).
    X,
    /// Vertical (guidance index 1).
    Y,
    /// Layer direction / vias (guidance index 2).
    Z,
}

impl Axis {
    /// All axes in guidance order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Guidance-triple index of this axis.
    pub const fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Axis for a guidance-triple index, `None` if out of range.
    pub const fn from_index(i: usize) -> Option<Axis> {
        match i {
            0 => Some(Axis::X),
            1 => Some(Axis::Y),
            2 => Some(Axis::Z),
            _ => None,
        }
    }

    /// The in-plane perpendicular axis; `Z` maps to itself.
    pub const fn perpendicular(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
            Axis::Z => Axis::Z,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::X => "X",
            Axis::Y => "Y",
            Axis::Z => "Z",
        };
        f.write_str(s)
    }
}

/// One of the six signed grid step directions.
///
/// # Examples
///
/// ```
/// use af_geom::{Axis, Dir3};
///
/// assert_eq!(Dir3::East.axis(), Axis::X);
/// assert_eq!(Dir3::East.opposite(), Dir3::West);
/// assert_eq!(Dir3::Up.delta(), (0, 0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dir3 {
    /// +x
    East,
    /// -x
    West,
    /// +y
    North,
    /// -y
    South,
    /// +z (to higher metal)
    Up,
    /// -z (to lower metal)
    Down,
}

impl Dir3 {
    /// All six directions.
    pub const ALL: [Dir3; 6] = [
        Dir3::East,
        Dir3::West,
        Dir3::North,
        Dir3::South,
        Dir3::Up,
        Dir3::Down,
    ];

    /// The axis this direction moves along.
    pub const fn axis(self) -> Axis {
        match self {
            Dir3::East | Dir3::West => Axis::X,
            Dir3::North | Dir3::South => Axis::Y,
            Dir3::Up | Dir3::Down => Axis::Z,
        }
    }

    /// The reverse direction.
    pub const fn opposite(self) -> Dir3 {
        match self {
            Dir3::East => Dir3::West,
            Dir3::West => Dir3::East,
            Dir3::North => Dir3::South,
            Dir3::South => Dir3::North,
            Dir3::Up => Dir3::Down,
            Dir3::Down => Dir3::Up,
        }
    }

    /// Unit step `(dx, dy, dz)` in grid cells.
    pub const fn delta(self) -> (i64, i64, i64) {
        match self {
            Dir3::East => (1, 0, 0),
            Dir3::West => (-1, 0, 0),
            Dir3::North => (0, 1, 0),
            Dir3::South => (0, -1, 0),
            Dir3::Up => (0, 0, 1),
            Dir3::Down => (0, 0, -1),
        }
    }
}

impl fmt::Display for Dir3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir3::East => "E",
            Dir3::West => "W",
            Dir3::North => "N",
            Dir3::South => "S",
            Dir3::Up => "U",
            Dir3::Down => "D",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_index_roundtrip() {
        for a in Axis::ALL {
            assert_eq!(Axis::from_index(a.index()), Some(a));
        }
        assert_eq!(Axis::from_index(3), None);
    }

    #[test]
    fn perpendicular() {
        assert_eq!(Axis::X.perpendicular(), Axis::Y);
        assert_eq!(Axis::Y.perpendicular(), Axis::X);
        assert_eq!(Axis::Z.perpendicular(), Axis::Z);
    }

    #[test]
    fn opposite_is_involution() {
        for d in Dir3::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
            assert_eq!(d.opposite().axis(), d.axis());
        }
    }

    #[test]
    fn deltas_are_unit_steps() {
        for d in Dir3::ALL {
            let (dx, dy, dz) = d.delta();
            assert_eq!(dx.abs() + dy.abs() + dz.abs(), 1);
            let (ox, oy, oz) = d.opposite().delta();
            assert_eq!((dx, dy, dz), (-ox, -oy, -oz));
        }
    }
}
