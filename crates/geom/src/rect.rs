use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Point;

/// An axis-aligned rectangle, closed on all sides, in integer dbu.
///
/// Invariant: `lo.x <= hi.x` and `lo.y <= hi.y`. Constructors normalize their
/// inputs so the invariant always holds.
///
/// # Examples
///
/// ```
/// use af_geom::{Point, Rect};
///
/// let r = Rect::from_coords(10, 10, 0, 0); // swapped corners are fine
/// assert_eq!(r.lo(), Point::new(0, 0));
/// assert_eq!(r.area(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from corner coordinates (any order).
    pub fn from_coords(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Self::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Creates a rectangle centered at `c` with the given width and height.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative.
    pub fn centered(c: Point, w: i64, h: i64) -> Self {
        assert!(w >= 0 && h >= 0, "negative dimensions: {w}x{h}");
        Self::new(
            Point::new(c.x - w / 2, c.y - h / 2),
            Point::new(c.x - w / 2 + w, c.y - h / 2 + h),
        )
    }

    /// Lower-left corner.
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width (`hi.x - lo.x`), always non-negative.
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height (`hi.y - lo.y`), always non-negative.
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area in dbu².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Half-perimeter (width + height).
    pub fn half_perimeter(&self) -> i64 {
        self.width() + self.height()
    }

    /// Center point (rounded toward `lo`).
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2, (self.lo.y + self.hi.y) / 2)
    }

    /// Whether `p` lies inside or on the border.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether `other` lies entirely inside (or equal to) `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Whether the two rectangles share any point (borders count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Whether the two rectangles share interior area (borders do not count).
    pub fn overlaps_interior(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// Intersection rectangle, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        })
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Rectangle grown by `margin` on every side (shrunk if negative).
    ///
    /// Shrinking collapses to a degenerate rectangle at the center rather than
    /// inverting the corners.
    pub fn expanded(&self, margin: i64) -> Rect {
        let lo = Point::new(self.lo.x - margin, self.lo.y - margin);
        let hi = Point::new(self.hi.x + margin, self.hi.y + margin);
        if lo.x > hi.x || lo.y > hi.y {
            let c = self.center();
            return Rect::new(c, c);
        }
        Rect { lo, hi }
    }

    /// Translates the rectangle by `delta`.
    pub fn translated(&self, delta: Point) -> Rect {
        Rect {
            lo: self.lo + delta,
            hi: self.hi + delta,
        }
    }

    /// Mirrors across the vertical line `x = axis_x`.
    pub fn mirror_x(&self, axis_x: i64) -> Rect {
        Rect::new(self.lo.mirror_x(axis_x), self.hi.mirror_x(axis_x))
    }

    /// Mirrors across the horizontal line `y = axis_y`.
    pub fn mirror_y(&self, axis_y: i64) -> Rect {
        Rect::new(self.lo.mirror_y(axis_y), self.hi.mirror_y(axis_y))
    }

    /// Minimum edge-to-edge spacing to `other` (0 when touching/overlapping).
    pub fn spacing_to(&self, other: &Rect) -> i64 {
        let dx = (other.lo.x - self.hi.x).max(self.lo.x - other.hi.x).max(0);
        let dy = (other.lo.y - self.hi.y).max(self.lo.y - other.hi.y).max(0);
        // Separated along both axes -> diagonal spacing approximated by max;
        // design rules in this codebase are Manhattan, so use the Chebyshev
        // gap which is conservative for corner-to-corner checks.
        dx.max(dy)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_corners() {
        let r = Rect::from_coords(10, 20, 0, 5);
        assert_eq!(r.lo(), Point::new(0, 5));
        assert_eq!(r.hi(), Point::new(10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
        assert_eq!(r.area(), 150);
        assert_eq!(r.half_perimeter(), 25);
    }

    #[test]
    fn centered_has_requested_size() {
        let r = Rect::centered(Point::new(100, 100), 40, 20);
        assert_eq!(r.width(), 40);
        assert_eq!(r.height(), 20);
        assert!(r.contains(Point::new(100, 100)));
    }

    #[test]
    fn containment() {
        let r = Rect::from_coords(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(10, 10)));
        assert!(!r.contains(Point::new(11, 5)));
        assert!(r.contains_rect(&Rect::from_coords(2, 2, 8, 8)));
        assert!(!r.contains_rect(&Rect::from_coords(2, 2, 12, 8)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(5, 5, 20, 20);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Rect::from_coords(5, 5, 10, 10)));
        assert_eq!(a.union(&b), Rect::from_coords(0, 0, 20, 20));
        let c = Rect::from_coords(11, 11, 12, 12);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn border_touch_is_not_interior_overlap() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(10, 0, 20, 10);
        assert!(a.intersects(&b));
        assert!(!a.overlaps_interior(&b));
    }

    #[test]
    fn expansion() {
        let r = Rect::from_coords(5, 5, 10, 10);
        assert_eq!(r.expanded(2), Rect::from_coords(3, 3, 12, 12));
        // over-shrink collapses at the center
        let c = r.expanded(-10);
        assert_eq!(c.area(), 0);
    }

    #[test]
    fn spacing() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(15, 0, 20, 10);
        assert_eq!(a.spacing_to(&b), 5);
        assert_eq!(b.spacing_to(&a), 5);
        let c = Rect::from_coords(5, 5, 8, 8);
        assert_eq!(a.spacing_to(&c), 0);
        let d = Rect::from_coords(13, 14, 20, 20);
        assert_eq!(a.spacing_to(&d), 4);
    }

    #[test]
    fn mirror_preserves_size() {
        let r = Rect::from_coords(2, 3, 7, 9);
        let m = r.mirror_x(10);
        assert_eq!(m.width(), r.width());
        assert_eq!(m.height(), r.height());
        assert_eq!(m, Rect::from_coords(13, 3, 18, 9));
        assert_eq!(m.mirror_x(10), r);
    }
}
