#![warn(missing_docs)]
//! Geometry primitives shared by every AnalogFold subsystem.
//!
//! Coordinates are integer database units (1 dbu = 1 nm for the bundled
//! 40 nm-class technology). Layers are small unsigned indices; `z` in a
//! [`Point3`] is the routing-layer index.
//!
//! The crate is deliberately free of EDA-specific policy: it provides points,
//! rectangles, directions, grid index math, segments, and the *cost-aware
//! distance* of the paper (Eq. 1), which is pure geometry once the per-point
//! guidance triple is given.
//!
//! # Examples
//!
//! ```
//! use af_geom::{Point, Rect};
//!
//! let r = Rect::new(Point::new(0, 0), Point::new(100, 50));
//! assert_eq!(r.width(), 100);
//! assert!(r.contains(Point::new(10, 10)));
//! ```

mod dir;
mod dist;
mod grid;
mod point;
mod rect;
mod segment;

pub use dir::{Axis, Dir3};
pub use dist::{cost_distance, euclidean_distance, CostTriple};
pub use grid::{GridDim, GridIndexError, GridPoint};
pub use point::{Point, Point3};
pub use rect::Rect;
pub use segment::{parallel_run_length, Segment};
