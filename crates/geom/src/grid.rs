use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Point, Point3};

/// A point on the routing grid: cell indices, not dbu.
///
/// # Examples
///
/// ```
/// use af_geom::GridPoint;
///
/// let g = GridPoint::new(3, 5, 1);
/// assert_eq!(g.x, 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GridPoint {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
    /// Layer index.
    pub l: u8,
}

impl GridPoint {
    /// Creates a grid point from indices.
    pub const fn new(x: u32, y: u32, l: u8) -> Self {
        Self { x, y, l }
    }

    /// Manhattan distance in grid cells, counting layer hops once each.
    pub fn manhattan(self, other: GridPoint) -> u64 {
        let dx = (i64::from(self.x) - i64::from(other.x)).unsigned_abs();
        let dy = (i64::from(self.y) - i64::from(other.y)).unsigned_abs();
        let dl = (i16::from(self.l) - i16::from(other.l)).unsigned_abs() as u64;
        dx + dy + dl
    }
}

impl fmt::Display for GridPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g({}, {}, M{})", self.x, self.y, self.l + 1)
    }
}

/// Error produced when a dbu coordinate cannot be mapped onto a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridIndexError {
    /// The offending coordinate.
    pub point: Point3,
}

impl fmt::Display for GridIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point {} is outside the routing grid", self.point)
    }
}

impl std::error::Error for GridIndexError {}

/// Dimensions and pitch of a uniform 3-D routing grid.
///
/// The grid covers `[origin, origin + (nx-1)*pitch]` horizontally and
/// similarly vertically, on `layers` metal layers.
///
/// # Examples
///
/// ```
/// use af_geom::{GridDim, GridPoint, Point};
///
/// let dim = GridDim::new(Point::new(0, 0), 10, 10, 3, 100);
/// let g = GridPoint::new(2, 3, 1);
/// let p = dim.to_dbu(g);
/// assert_eq!(dim.snap(p.xy(), 1), Some(g));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridDim {
    origin: Point,
    nx: u32,
    ny: u32,
    layers: u8,
    pitch: i64,
}

impl GridDim {
    /// Creates a grid description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `pitch <= 0`.
    pub fn new(origin: Point, nx: u32, ny: u32, layers: u8, pitch: i64) -> Self {
        assert!(
            nx > 0 && ny > 0 && layers > 0,
            "empty grid {nx}x{ny}x{layers}"
        );
        assert!(pitch > 0, "non-positive pitch {pitch}");
        Self {
            origin,
            nx,
            ny,
            layers,
            pitch,
        }
    }

    /// Grid origin in dbu.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Number of columns.
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Number of routing layers.
    pub fn layers(&self) -> u8 {
        self.layers
    }

    /// Track pitch in dbu.
    pub fn pitch(&self) -> i64 {
        self.pitch
    }

    /// Total number of grid nodes.
    pub fn len(&self) -> usize {
        self.nx as usize * self.ny as usize * self.layers as usize
    }

    /// Whether the grid has no nodes (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `g` lies inside the grid.
    pub fn contains(&self, g: GridPoint) -> bool {
        g.x < self.nx && g.y < self.ny && g.l < self.layers
    }

    /// Flattened index of `g` for dense storage.
    ///
    /// # Panics
    ///
    /// Panics if `g` is outside the grid (debug builds assert; release builds
    /// may index out of bounds downstream — callers should check `contains`).
    pub fn flat_index(&self, g: GridPoint) -> usize {
        debug_assert!(self.contains(g), "grid point {g} out of bounds");
        (g.l as usize * self.ny as usize + g.y as usize) * self.nx as usize + g.x as usize
    }

    /// Inverse of [`GridDim::flat_index`].
    pub fn from_flat(&self, idx: usize) -> GridPoint {
        let nx = self.nx as usize;
        let ny = self.ny as usize;
        let x = (idx % nx) as u32;
        let y = ((idx / nx) % ny) as u32;
        let l = (idx / (nx * ny)) as u8;
        GridPoint::new(x, y, l)
    }

    /// Converts a grid point to its dbu location.
    pub fn to_dbu(&self, g: GridPoint) -> Point3 {
        Point3::new(
            self.origin.x + i64::from(g.x) * self.pitch,
            self.origin.y + i64::from(g.y) * self.pitch,
            g.l,
        )
    }

    /// Snaps a dbu location to the nearest grid node on layer `l`.
    ///
    /// Returns `None` when the snapped node falls outside the grid.
    pub fn snap(&self, p: Point, l: u8) -> Option<GridPoint> {
        if l >= self.layers {
            return None;
        }
        let fx = (p.x - self.origin.x) as f64 / self.pitch as f64;
        let fy = (p.y - self.origin.y) as f64 / self.pitch as f64;
        let x = fx.round();
        let y = fy.round();
        if x < 0.0 || y < 0.0 || x >= f64::from(self.nx) || y >= f64::from(self.ny) {
            return None;
        }
        Some(GridPoint::new(x as u32, y as u32, l))
    }

    /// Snaps, reporting the offending point on failure.
    pub fn try_snap(&self, p: Point, l: u8) -> Result<GridPoint, GridIndexError> {
        self.snap(p, l).ok_or(GridIndexError {
            point: p.on_layer(l),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim() -> GridDim {
        GridDim::new(Point::new(100, 200), 8, 6, 4, 50)
    }

    #[test]
    fn flat_index_roundtrip() {
        let d = dim();
        for l in 0..d.layers() {
            for y in 0..d.ny() {
                for x in 0..d.nx() {
                    let g = GridPoint::new(x, y, l);
                    assert_eq!(d.from_flat(d.flat_index(g)), g);
                }
            }
        }
        assert_eq!(d.len(), 8 * 6 * 4);
    }

    #[test]
    fn dbu_roundtrip() {
        let d = dim();
        let g = GridPoint::new(3, 4, 2);
        let p = d.to_dbu(g);
        assert_eq!(p, Point3::new(100 + 150, 200 + 200, 2));
        assert_eq!(d.snap(p.xy(), 2), Some(g));
    }

    #[test]
    fn snap_rounds_to_nearest() {
        let d = dim();
        assert_eq!(
            d.snap(Point::new(124, 200), 0),
            Some(GridPoint::new(0, 0, 0))
        );
        assert_eq!(
            d.snap(Point::new(126, 200), 0),
            Some(GridPoint::new(1, 0, 0))
        );
    }

    #[test]
    fn snap_out_of_bounds() {
        let d = dim();
        assert_eq!(d.snap(Point::new(0, 0), 0), None);
        assert_eq!(d.snap(Point::new(100, 200), 9), None);
        assert!(d.try_snap(Point::new(0, 0), 0).is_err());
        let err = d.try_snap(Point::new(0, 0), 1).unwrap_err();
        assert_eq!(err.point, Point3::new(0, 0, 1));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn grid_manhattan() {
        let a = GridPoint::new(1, 2, 0);
        let b = GridPoint::new(4, 0, 2);
        assert_eq!(a.manhattan(b), 3 + 2 + 2);
        assert_eq!(b.manhattan(a), a.manhattan(b));
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn zero_dim_panics() {
        let _ = GridDim::new(Point::ORIGIN, 0, 5, 1, 10);
    }

    #[test]
    #[should_panic(expected = "non-positive pitch")]
    fn zero_pitch_panics() {
        let _ = GridDim::new(Point::ORIGIN, 5, 5, 1, 0);
    }
}
