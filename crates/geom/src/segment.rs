use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Axis, Point3};

/// An axis-aligned routed wire segment (or via) between two 3-D points.
///
/// Invariant: the endpoints differ along at most one axis and are stored in
/// ascending order, so equality is direction-independent.
///
/// # Examples
///
/// ```
/// use af_geom::{Axis, Point3, Segment};
///
/// let s = Segment::new(Point3::new(10, 0, 0), Point3::new(0, 0, 0)).unwrap();
/// assert_eq!(s.axis(), Some(Axis::X));
/// assert_eq!(s.length(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    a: Point3,
    b: Point3,
}

impl Segment {
    /// Creates a segment; returns `None` if the endpoints differ along more
    /// than one axis (non-Manhattan).
    pub fn new(a: Point3, b: Point3) -> Option<Self> {
        let (dx, dy, dz) = a.abs_deltas(b);
        let moving = usize::from(dx > 0) + usize::from(dy > 0) + usize::from(dz > 0);
        if moving > 1 {
            return None;
        }
        let (lo, hi) = if (a.x, a.y, a.z) <= (b.x, b.y, b.z) {
            (a, b)
        } else {
            (b, a)
        };
        Some(Self { a: lo, b: hi })
    }

    /// First (lexicographically smaller) endpoint.
    pub fn start(&self) -> Point3 {
        self.a
    }

    /// Second endpoint.
    pub fn end(&self) -> Point3 {
        self.b
    }

    /// The axis this segment runs along, `None` for a zero-length segment.
    pub fn axis(&self) -> Option<Axis> {
        let (dx, dy, dz) = self.a.abs_deltas(self.b);
        if dx > 0 {
            Some(Axis::X)
        } else if dy > 0 {
            Some(Axis::Y)
        } else if dz > 0 {
            Some(Axis::Z)
        } else {
            None
        }
    }

    /// Whether this segment is a via (moves between layers).
    pub fn is_via(&self) -> bool {
        self.axis() == Some(Axis::Z)
    }

    /// Length in dbu for planar segments, in layers for vias.
    pub fn length(&self) -> i64 {
        let (dx, dy, dz) = self.a.abs_deltas(self.b);
        dx + dy + dz
    }

    /// The metal layer of a planar segment, or the lower layer of a via.
    pub fn layer(&self) -> u8 {
        self.a.z
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -- {}", self.a, self.b)
    }
}

/// Length over which two parallel planar segments on the same layer run side
/// by side, together with their perpendicular separation.
///
/// Returns `None` if the segments are on different layers, not parallel, or
/// have no overlapping extent. This drives coupling-capacitance extraction:
/// CC is proportional to parallel run length and inversely related to
/// separation.
///
/// # Examples
///
/// ```
/// use af_geom::{parallel_run_length, Point3, Segment};
///
/// let a = Segment::new(Point3::new(0, 0, 0), Point3::new(100, 0, 0)).unwrap();
/// let b = Segment::new(Point3::new(50, 30, 0), Point3::new(200, 30, 0)).unwrap();
/// let (run, sep) = parallel_run_length(&a, &b).unwrap();
/// assert_eq!((run, sep), (50, 30));
/// ```
pub fn parallel_run_length(a: &Segment, b: &Segment) -> Option<(i64, i64)> {
    let ax = a.axis()?;
    let bx = b.axis()?;
    if ax != bx || ax == Axis::Z || a.layer() != b.layer() {
        return None;
    }
    let (a0, a1, b0, b1, sep) = match ax {
        Axis::X => (
            a.start().x,
            a.end().x,
            b.start().x,
            b.end().x,
            (a.start().y - b.start().y).abs(),
        ),
        Axis::Y => (
            a.start().y,
            a.end().y,
            b.start().y,
            b.end().y,
            (a.start().x - b.start().x).abs(),
        ),
        Axis::Z => unreachable!(),
    };
    let run = a1.min(b1) - a0.max(b0);
    if run <= 0 {
        return None;
    }
    Some((run, sep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_diagonal() {
        assert!(Segment::new(Point3::new(0, 0, 0), Point3::new(1, 1, 0)).is_none());
        assert!(Segment::new(Point3::new(0, 0, 0), Point3::new(1, 0, 1)).is_none());
    }

    #[test]
    fn direction_independent_equality() {
        let s1 = Segment::new(Point3::new(0, 0, 0), Point3::new(10, 0, 0)).unwrap();
        let s2 = Segment::new(Point3::new(10, 0, 0), Point3::new(0, 0, 0)).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.start(), Point3::new(0, 0, 0));
    }

    #[test]
    fn via_properties() {
        let v = Segment::new(Point3::new(5, 5, 2), Point3::new(5, 5, 1)).unwrap();
        assert!(v.is_via());
        assert_eq!(v.axis(), Some(Axis::Z));
        assert_eq!(v.length(), 1);
        assert_eq!(v.layer(), 1);
    }

    #[test]
    fn zero_length_segment() {
        let s = Segment::new(Point3::new(5, 5, 0), Point3::new(5, 5, 0)).unwrap();
        assert_eq!(s.axis(), None);
        assert_eq!(s.length(), 0);
        assert!(!s.is_via());
    }

    #[test]
    fn parallel_run_same_axis() {
        let a = Segment::new(Point3::new(0, 0, 1), Point3::new(0, 100, 1)).unwrap();
        let b = Segment::new(Point3::new(20, 40, 1), Point3::new(20, 160, 1)).unwrap();
        let (run, sep) = parallel_run_length(&a, &b).unwrap();
        assert_eq!((run, sep), (60, 20));
        // symmetric
        assert_eq!(parallel_run_length(&b, &a), Some((60, 20)));
    }

    #[test]
    fn no_parallel_run_cases() {
        let h = Segment::new(Point3::new(0, 0, 0), Point3::new(100, 0, 0)).unwrap();
        let v = Segment::new(Point3::new(0, 0, 0), Point3::new(0, 100, 0)).unwrap();
        assert_eq!(parallel_run_length(&h, &v), None); // perpendicular
        let other_layer = Segment::new(Point3::new(0, 10, 1), Point3::new(100, 10, 1)).unwrap();
        assert_eq!(parallel_run_length(&h, &other_layer), None); // layers differ
        let disjoint = Segment::new(Point3::new(200, 10, 0), Point3::new(300, 10, 0)).unwrap();
        assert_eq!(parallel_run_length(&h, &disjoint), None); // no overlap
        let via = Segment::new(Point3::new(0, 0, 0), Point3::new(0, 0, 1)).unwrap();
        assert_eq!(parallel_run_length(&h, &via), None);
    }

    #[test]
    fn touching_endpoints_do_not_couple() {
        let a = Segment::new(Point3::new(0, 0, 0), Point3::new(100, 0, 0)).unwrap();
        let b = Segment::new(Point3::new(100, 5, 0), Point3::new(200, 5, 0)).unwrap();
        assert_eq!(parallel_run_length(&a, &b), None);
    }
}
