use serde::{Deserialize, Serialize};

use crate::Point3;

/// A per-point routing-guidance cost triple `(C[0], C[1], C[2])`.
///
/// This is the paper's non-uniform routing guidance `C_i`: element `d` scales
/// distances along axis `d` (0 = x, 1 = y, 2 = z). Larger values discourage
/// routing along that axis from the guided pin access point.
///
/// # Examples
///
/// ```
/// use af_geom::CostTriple;
///
/// let c = CostTriple::uniform(1.0);
/// assert_eq!(c[0], 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostTriple(pub [f64; 3]);

impl CostTriple {
    /// Triple with the same cost on all three axes.
    pub const fn uniform(c: f64) -> Self {
        CostTriple([c, c, c])
    }

    /// The neutral guidance (all ones): cost distance equals geometry.
    pub const fn neutral() -> Self {
        CostTriple::uniform(1.0)
    }

    /// Clamps every component into `[lo, hi]`.
    pub fn clamped(self, lo: f64, hi: f64) -> Self {
        CostTriple([
            self.0[0].clamp(lo, hi),
            self.0[1].clamp(lo, hi),
            self.0[2].clamp(lo, hi),
        ])
    }

    /// Whether every component is finite and strictly positive.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|c| c.is_finite() && *c > 0.0)
    }

    /// Component slice in axis order.
    pub fn as_slice(&self) -> &[f64; 3] {
        &self.0
    }
}

impl Default for CostTriple {
    fn default() -> Self {
        CostTriple::neutral()
    }
}

impl std::ops::Index<usize> for CostTriple {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl std::ops::IndexMut<usize> for CostTriple {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl From<[f64; 3]> for CostTriple {
    fn from(v: [f64; 3]) -> Self {
        CostTriple(v)
    }
}

/// The paper's cost-aware distance (Eq. 1):
///
/// `d_cost(v_k, v_s) = sqrt((C_k[0]·h)² + (C_k[1]·w)² + (C_k[2]·z)²)`
///
/// where `h`/`w`/`z` are the absolute per-axis separations of `k` and `s`
/// (the z separation is expressed in dbu via `layer_pitch`).
///
/// # Examples
///
/// ```
/// use af_geom::{cost_distance, CostTriple, Point3};
///
/// let k = Point3::new(0, 0, 0);
/// let s = Point3::new(3, 4, 0);
/// let d = cost_distance(k, s, CostTriple::neutral(), 100);
/// assert!((d - 5.0).abs() < 1e-12);
/// ```
pub fn cost_distance(k: Point3, s: Point3, guidance: CostTriple, layer_pitch: i64) -> f64 {
    let (h, w, z) = k.abs_deltas(s);
    let hx = guidance[0] * h as f64;
    let wy = guidance[1] * w as f64;
    let zz = guidance[2] * (z * layer_pitch) as f64;
    (hx * hx + wy * wy + zz * zz).sqrt()
}

/// Plain Euclidean 3-D distance (neutral-guidance cost distance).
pub fn euclidean_distance(k: Point3, s: Point3, layer_pitch: i64) -> f64 {
    cost_distance(k, s, CostTriple::neutral(), layer_pitch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_guidance_is_euclidean() {
        let k = Point3::new(0, 0, 0);
        let s = Point3::new(3, 4, 1);
        let d = cost_distance(k, s, CostTriple::neutral(), 12);
        let expect = ((3.0f64).powi(2) + 16.0 + 144.0).sqrt();
        assert!((d - expect).abs() < 1e-12);
        assert_eq!(d, euclidean_distance(k, s, 12));
    }

    #[test]
    fn guidance_scales_each_axis() {
        let k = Point3::new(0, 0, 0);
        let s = Point3::new(10, 0, 0);
        let cheap = cost_distance(k, s, CostTriple([0.5, 1.0, 1.0]), 1);
        let dear = cost_distance(k, s, CostTriple([2.0, 1.0, 1.0]), 1);
        assert!((cheap - 5.0).abs() < 1e-12);
        assert!((dear - 20.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_in_geometry_for_same_guidance() {
        let k = Point3::new(1, 2, 0);
        let s = Point3::new(7, -3, 2);
        let g = CostTriple([1.3, 0.7, 2.0]);
        assert!((cost_distance(k, s, g, 5) - cost_distance(s, k, g, 5)).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(CostTriple::neutral().is_valid());
        assert!(!CostTriple([0.0, 1.0, 1.0]).is_valid());
        assert!(!CostTriple([f64::NAN, 1.0, 1.0]).is_valid());
        assert!(CostTriple([5.0, 9.0, 0.1]).clamped(0.5, 2.0).is_valid());
        assert_eq!(
            CostTriple([5.0, 9.0, 0.1]).clamped(0.5, 2.0),
            CostTriple([2.0, 2.0, 0.5])
        );
    }

    #[test]
    fn index_access() {
        let mut c = CostTriple::neutral();
        c[2] = 3.0;
        assert_eq!(c[2], 3.0);
        assert_eq!(c.as_slice(), &[1.0, 1.0, 3.0]);
    }
}
