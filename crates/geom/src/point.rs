use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 2-D point in integer database units.
///
/// # Examples
///
/// ```
/// use af_geom::Point;
///
/// let a = Point::new(3, 4);
/// let b = Point::new(1, 1);
/// assert_eq!(a + b, Point::new(4, 5));
/// assert_eq!(a.manhattan(b), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in dbu.
    pub x: i64,
    /// Vertical coordinate in dbu.
    pub y: i64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other` as `f64`.
    pub fn euclidean(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        dx.hypot(dy)
    }

    /// Component-wise minimum.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Mirrors the point across the vertical line `x = axis_x`.
    pub fn mirror_x(self, axis_x: i64) -> Point {
        Point::new(2 * axis_x - self.x, self.y)
    }

    /// Mirrors the point across the horizontal line `y = axis_y`.
    pub fn mirror_y(self, axis_y: i64) -> Point {
        Point::new(self.x, 2 * axis_y - self.y)
    }

    /// Lifts the point onto routing layer `z`.
    pub fn on_layer(self, z: u8) -> Point3 {
        Point3::new(self.x, self.y, z)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// A 3-D point: 2-D location plus routing-layer index `z`.
///
/// # Examples
///
/// ```
/// use af_geom::{Point, Point3};
///
/// let p = Point3::new(10, 20, 1);
/// assert_eq!(p.xy(), Point::new(10, 20));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point3 {
    /// Horizontal coordinate in dbu.
    pub x: i64,
    /// Vertical coordinate in dbu.
    pub y: i64,
    /// Routing layer index (0 = lowest metal).
    pub z: u8,
}

impl Point3 {
    /// Creates a 3-D point.
    pub const fn new(x: i64, y: i64, z: u8) -> Self {
        Self { x, y, z }
    }

    /// Projects onto the 2-D plane, dropping the layer.
    pub fn xy(self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Manhattan distance counting a layer hop as `layer_pitch` dbu.
    pub fn manhattan_3d(self, other: Point3, layer_pitch: i64) -> i64 {
        self.xy().manhattan(other.xy())
            + (i64::from(self.z) - i64::from(other.z)).abs() * layer_pitch
    }

    /// Per-axis absolute deltas `(|dx|, |dy|, |dz|)` with `dz` in layers.
    pub fn abs_deltas(self, other: Point3) -> (i64, i64, i64) {
        (
            (self.x - other.x).abs(),
            (self.y - other.y).abs(),
            (i64::from(self.z) - i64::from(other.z)).abs(),
        )
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, M{})", self.x, self.y, self.z + 1)
    }
}

impl From<(i64, i64, u8)> for Point3 {
    fn from((x, y, z): (i64, i64, u8)) -> Self {
        Point3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(5, -3);
        let b = Point::new(-2, 7);
        assert_eq!(a + b, Point::new(3, 4));
        assert_eq!(a - b, Point::new(7, -10));
        assert_eq!(-a, Point::new(-5, 3));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn manhattan_and_euclidean() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.manhattan(b), 7);
        assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_is_involution() {
        let p = Point::new(17, 42);
        assert_eq!(p.mirror_x(100).mirror_x(100), p);
        assert_eq!(p.mirror_y(-5).mirror_y(-5), p);
        assert_eq!(Point::new(30, 7).mirror_x(20), Point::new(10, 7));
    }

    #[test]
    fn min_max() {
        let a = Point::new(1, 9);
        let b = Point::new(4, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(4, 9));
    }

    #[test]
    fn point3_projection_and_deltas() {
        let p = Point3::new(10, 20, 2);
        let q = Point3::new(13, 16, 0);
        assert_eq!(p.xy(), Point::new(10, 20));
        assert_eq!(p.abs_deltas(q), (3, 4, 2));
        assert_eq!(p.manhattan_3d(q, 10), 3 + 4 + 20);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Point3::new(1, 2, 0).to_string(), "(1, 2, M1)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Point::from((1, 2)), Point::new(1, 2));
        assert_eq!(Point3::from((1, 2, 3)), Point3::new(1, 2, 3));
    }
}
