//! Criterion benchmarks of the MNA performance simulator.

use criterion::{criterion_group, criterion_main, Criterion};

use af_extract::extract;
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::{Router, RouterConfig, RoutingGuidance};
use af_sim::{simulate, SimConfig};
use af_tech::Technology;

fn bench_simulator(c: &mut Criterion) {
    let tech = Technology::nm40();
    let cfg = SimConfig::default();
    for name in ["OTA1", "OTA3"] {
        let circuit = benchmarks::by_name(name).unwrap();
        let placement = place(&circuit, PlacementVariant::A);
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&circuit, &placement, &tech, &RoutingGuidance::None)
            .unwrap();
        let px = extract(&circuit, &tech, &layout);
        c.bench_function(format!("simulate_schematic_{name}"), |b| {
            b.iter(|| simulate(&circuit, None, &cfg).unwrap())
        });
        c.bench_function(format!("simulate_postlayout_{name}"), |b| {
            b.iter(|| simulate(&circuit, Some(&px), &cfg).unwrap())
        });
    }
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
