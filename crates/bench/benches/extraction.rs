//! Criterion benchmarks of parasitic extraction.

use criterion::{criterion_group, criterion_main, Criterion};

use af_extract::extract;
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::{Router, RouterConfig, RoutingGuidance};
use af_tech::Technology;

fn bench_extraction(c: &mut Criterion) {
    let tech = Technology::nm40();
    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let layout = Router::new(RouterConfig::default())
        .unwrap()
        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
        .unwrap();
    c.bench_function("extract_ota1", |b| {
        b.iter(|| extract(&circuit, &tech, &layout))
    });
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
