//! Criterion micro-benchmarks of the detailed router.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::{Router, RouterConfig, RoutingGuidance};
use af_tech::Technology;

fn bench_router(c: &mut Criterion) {
    let tech = Technology::nm40();
    let mut group = c.benchmark_group("router");
    group.sample_size(10);
    for name in ["OTA1", "OTA3"] {
        let circuit = benchmarks::by_name(name).unwrap();
        let placement = place(&circuit, PlacementVariant::A);
        group.bench_function(format!("route_{name}"), |b| {
            b.iter_batched(
                || (),
                |_| {
                    Router::new(RouterConfig::default())
                        .unwrap()
                        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
                        .unwrap()
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_placer(c: &mut Criterion) {
    let mut group = c.benchmark_group("placer");
    group.sample_size(10);
    for name in ["OTA1", "OTA3"] {
        let circuit = benchmarks::by_name(name).unwrap();
        group.bench_function(format!("place_{name}").as_str(), |b| {
            b.iter(|| place(&circuit, PlacementVariant::A))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router, bench_placer);
criterion_main!(benches);
