//! Criterion benchmarks of 3DGNN forward/backward passes.

use criterion::{criterion_group, criterion_main, Criterion};

use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_tech::Technology;
use analogfold::{GnnConfig, GraphTensors, HeteroGraph, ThreeDGnn};

fn bench_gnn(c: &mut Criterion) {
    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 3);
    let gnn = ThreeDGnn::new(&GnnConfig::default());
    let tensors = GraphTensors::new(&graph);
    let guidance = vec![1.0; tensors.guidance_len()];
    let weights = [1.0, -1.0, -1.0, -1.0, 1.0];

    c.bench_function("gnn_forward", |b| b.iter(|| gnn.predict(&graph, &guidance)));
    c.bench_function("gnn_forward_backward", |b| {
        b.iter(|| gnn.fom_and_grad(&tensors, &guidance, &weights))
    });
    c.bench_function("hetero_graph_build", |b| {
        b.iter(|| HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 3))
    });
}

criterion_group!(benches, bench_gnn);
criterion_main!(benches);
