//! Criterion benchmarks of the ablation-relevant kernels: RBF vs raw
//! distance forward passes, heterogeneous vs homogeneous graphs, pooled vs
//! plain relaxation.

use criterion::{criterion_group, criterion_main, Criterion};

use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_tech::Technology;
use analogfold::{relax, GnnConfig, GraphTensors, HeteroGraph, Potential, RelaxConfig, ThreeDGnn};

fn bench_ablations(c: &mut Criterion) {
    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 3);
    let tensors = GraphTensors::new(&graph);
    let guidance = vec![1.0; tensors.guidance_len()];

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (name, cfg) in [
        ("forward_full", GnnConfig::default()),
        (
            "forward_raw_distance",
            GnnConfig {
                use_rbf: false,
                ..GnnConfig::default()
            },
        ),
        (
            "forward_homogeneous",
            GnnConfig {
                use_modules: false,
                ..GnnConfig::default()
            },
        ),
    ] {
        let gnn = ThreeDGnn::new(&cfg);
        group.bench_function(name, |b| b.iter(|| gnn.predict(&graph, &guidance)));
    }

    let gnn = ThreeDGnn::new(&GnnConfig::default());
    let potential = Potential::new(&gnn, &graph);
    for (name, p_relax) in [("relax_pooled", 0.6), ("relax_plain", 0.0)] {
        let cfg = RelaxConfig {
            restarts: 3,
            p_relax,
            n_derive: 1,
            lbfgs_iters: 6,
            ..RelaxConfig::default()
        };
        group.bench_function(name, |b| b.iter(|| relax(&potential, &cfg)));
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
