//! End-to-end Criterion benchmarks: one miniature Table 2 row per method.
//! These measure the relative method costs the paper reports in the Runtime
//! rows (MagicalRoute fastest, AnalogFold inference in between, GeniusRoute
//! heaviest at paper scale).

use criterion::{criterion_group, criterion_main, Criterion};

use af_bench::{genius_model, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::{Router, RouterConfig};
use af_sim::SimConfig;
use af_tech::Technology;
use analogfold::{magical_route, AnalogFoldFlow};

fn bench_methods(c: &mut Criterion) {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let mut group = c.benchmark_group("table2_methods");
    group.sample_size(10);

    group.bench_function("magicalroute_row", |b| {
        b.iter(|| {
            magical_route(
                &circuit,
                &placement,
                &tech,
                &RouterConfig::default(),
                &SimConfig::default(),
            )
            .unwrap()
        })
    });

    let model = genius_model(&circuit, PlacementVariant::A, &tech, Scale::Quick);
    group.bench_function("geniusroute_guided_route", |b| {
        let guidance = model.guidance(&circuit, &placement);
        b.iter(|| {
            Router::new(RouterConfig::default())
                .unwrap()
                .route(&circuit, &placement, &tech, &guidance)
                .unwrap()
        })
    });

    group.bench_function("analogfold_flow_mini", |b| {
        // A deliberately tiny flow so the whole-workspace bench run stays
        // bounded; the table2 binary is the place for full-scale timing.
        let flow = AnalogFoldFlow::new(analogfold::FlowConfig {
            dataset: analogfold::DatasetConfig {
                samples: 4,
                ..analogfold::DatasetConfig::default()
            },
            gnn: analogfold::GnnConfig {
                epochs: 2,
                hidden: 8,
                layers: 1,
                ..analogfold::GnnConfig::default()
            },
            relax: analogfold::RelaxConfig {
                restarts: 2,
                n_derive: 1,
                lbfgs_iters: 5,
                ..analogfold::RelaxConfig::default()
            },
            ..analogfold::FlowConfig::default()
        });
        b.iter(|| flow.run(&circuit, &placement).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
