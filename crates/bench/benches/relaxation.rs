//! Criterion benchmarks of potential relaxation.

use criterion::{criterion_group, criterion_main, Criterion};

use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_tech::Technology;
use analogfold::{relax, GnnConfig, HeteroGraph, Potential, RelaxConfig, ThreeDGnn};

fn bench_relaxation(c: &mut Criterion) {
    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 3);
    let gnn = ThreeDGnn::new(&GnnConfig::default());
    let potential = Potential::new(&gnn, &graph);

    let mut group = c.benchmark_group("relaxation");
    group.sample_size(10);
    group.bench_function("potential_eval", |b| {
        let c0 = vec![1.0; potential.dim()];
        b.iter(|| potential.value_and_grad(&c0))
    });
    group.bench_function("relax_4_restarts", |b| {
        let cfg = RelaxConfig {
            restarts: 4,
            n_derive: 1,
            lbfgs_iters: 10,
            ..RelaxConfig::default()
        };
        b.iter(|| relax(&potential, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_relaxation);
criterion_main!(benches);
