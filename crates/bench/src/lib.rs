#![warn(missing_docs)]
//! Shared experiment harness for the table/figure reproduction binaries and
//! the Criterion benchmarks.
//!
//! The entry point is [`run_row`], which evaluates one Table 2 row
//! (`<benchmark>-<variant>`) under all four methods: Schematic,
//! MagicalRoute, GeniusRoute, and AnalogFold. [`Scale`] controls how much
//! compute each row spends (sample counts, epochs, restarts), so the same
//! harness drives quick smoke benches and the full regeneration run.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use af_netlist::{benchmarks, Circuit};
use af_place::{place, Placement, PlacementVariant};
use af_route::{RoutedLayout, Router, RouterConfig, RoutingGuidance};
use af_sim::{simulate, Performance, SimConfig};
use af_tech::Technology;
use analogfold::{magical_route, AnalogFoldFlow, FlowConfig, GeniusConfig, GeniusRouteModel};

/// The Table 2 rows of the paper, in order.
pub const TABLE2_ROWS: &[(&str, PlacementVariant)] = &[
    ("OTA1", PlacementVariant::A),
    ("OTA1", PlacementVariant::B),
    ("OTA1", PlacementVariant::C),
    ("OTA2", PlacementVariant::A),
    ("OTA2", PlacementVariant::B),
    ("OTA2", PlacementVariant::C),
    ("OTA3", PlacementVariant::A),
    ("OTA3", PlacementVariant::B),
    ("OTA4", PlacementVariant::A),
    ("OTA4", PlacementVariant::B),
];

/// Compute scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (seconds per row).
    Quick,
    /// Paper-regeneration scale (minutes per row) — the default for
    /// EXPERIMENTS.md numbers.
    Full,
    /// Faithful scale: the paper's 2 000 samples per design (tens of
    /// minutes per row; run overnight).
    Paper,
}

impl Scale {
    /// Parses `"quick"`/`"full"`/`"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Dataset samples per design.
    pub fn samples(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 160,
            Scale::Paper => 2_000,
        }
    }

    /// GNN training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 120,
            Scale::Paper => 150,
        }
    }

    /// Relaxation restarts.
    pub fn restarts(self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Full => 24,
            Scale::Paper => 48,
        }
    }

    /// Guidance candidates evaluated by routing+simulation.
    pub fn n_derive(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 6,
            Scale::Paper => 8,
        }
    }

    /// GeniusRoute VAE epochs.
    pub fn vae_epochs(self) -> usize {
        match self {
            Scale::Quick => 15,
            Scale::Full | Scale::Paper => 400,
        }
    }
}

/// The result of one method on one row.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MethodResult {
    /// The five metrics.
    pub perf: Performance,
    /// Method runtime in seconds (guidance inference + routing; training is
    /// reported separately in the Fig. 5 breakdown, as in the paper).
    pub runtime_s: f64,
}

/// One complete Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RowResult {
    /// Row id, e.g. `"OTA1-A"`.
    pub id: String,
    /// Schematic (no parasitics) metrics.
    pub schematic: Performance,
    /// MagicalRoute baseline.
    pub magical: MethodResult,
    /// GeniusRoute baseline.
    pub genius: MethodResult,
    /// AnalogFold.
    pub ours: MethodResult,
}

/// Finds the value of a `key=value` driver argument (`kv_arg(args,
/// "only")` matches `only=OTA1-A`). The shared parser behind every bench
/// binary's argument handling.
pub fn kv_arg<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .find_map(|a| a.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

/// Parses a numeric `key=N` driver argument; absent or unparsable values
/// fall back to `default`.
pub fn kv_num(args: &[String], key: &str, default: u64) -> u64 {
    kv_arg(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a comma-separated `key=a,b,c` driver argument.
pub fn kv_list(args: &[String], key: &str) -> Option<Vec<String>> {
    kv_arg(args, key).map(|v| v.split(',').map(str::to_string).collect())
}

/// Parses a `threads=N` driver argument; `0` (the default) resolves through
/// `AFRT_THREADS`, then hardware parallelism.
pub fn threads_arg(args: &[String]) -> usize {
    kv_num(args, "threads", 0) as usize
}

/// Parses a `route_threads=N` driver argument: the detailed router's worker
/// count for its parallel negotiation rounds, independent of the flow-level
/// `threads=`. `0` (the default) resolves through `AFRT_THREADS`, then
/// hardware parallelism; every value yields a bit-identical layout.
pub fn route_threads_arg(args: &[String]) -> usize {
    kv_num(args, "route_threads", 0) as usize
}

/// Parses a `cache=N` driver argument: the memoization-cache capacity in
/// MiB handed to the flow/serve configuration under test. `cache=0`
/// disables caching for the whole process (flipping
/// [`analogfold::set_cache_enabled`] off), which is the honest baseline
/// when measuring raw compute throughput. Caching never changes results —
/// cached and uncached runs are bit-identical — so the knob only moves
/// wall-clock numbers.
pub fn cache_arg(args: &[String], default: u64) -> u64 {
    let mb = kv_num(args, "cache", default);
    if mb == 0 {
        analogfold::set_cache_enabled(false);
    }
    mb
}

/// Parses an `obs=<path>` driver argument: installs a JSONL observability
/// sink writing events to `<path>` and returns the guard that keeps it
/// installed (hold it for the duration of the run). `None` — observability
/// stays disabled — when the argument is absent or the file cannot be
/// created.
pub fn obs_arg(args: &[String]) -> Option<af_obs::ObsGuard> {
    let path = kv_arg(args, "obs")?;
    match af_obs::JsonlSink::create(std::path::Path::new(path)) {
        Ok(sink) => Some(af_obs::install(std::sync::Arc::new(sink))),
        Err(err) => {
            eprintln!("warning: cannot create obs sink `{path}`: {err}");
            None
        }
    }
}

/// Parses a `fault=SPEC` driver argument: arms the [`af_fault`] failpoint
/// registry from the spec (seeded by an optional `fault_seed=N`, default
/// `0`) so a bench can measure error rate and tail latency under injected
/// faults. Returns the spec for inclusion in the report; `None` — fault
/// injection stays disarmed — when the argument is absent or malformed.
pub fn fault_arg(args: &[String]) -> Option<String> {
    let spec = kv_arg(args, "fault")?;
    af_fault::set_seed(kv_num(args, "fault_seed", 0));
    match af_fault::arm_spec(spec) {
        Ok(n) => {
            eprintln!("fault injection armed: {n} failpoint(s) from `{spec}`");
            Some(spec.to_string())
        }
        Err(err) => {
            eprintln!("warning: bad fault spec `{spec}`: {err}");
            None
        }
    }
}

/// Flow configuration for one scale.
pub fn flow_config(scale: Scale, seed: u64) -> FlowConfig {
    FlowConfig::builder()
        .samples(scale.samples())
        .epochs(scale.epochs())
        .restarts(scale.restarts())
        .n_derive(scale.n_derive())
        .seed(seed)
        .build()
        .expect("bench flow configuration is valid")
}

/// Trains the GeniusRoute model from unguided routings of the *other*
/// placement variants of the same circuit (imitation data).
pub fn genius_model(
    circuit: &Circuit,
    exclude: PlacementVariant,
    tech: &Technology,
    scale: Scale,
) -> GeniusRouteModel {
    let mut data: Vec<(Placement, RoutedLayout)> = Vec::new();
    for v in PlacementVariant::ALL {
        if v == exclude {
            continue;
        }
        let p = place(circuit, v);
        if let Ok(l) = Router::new(RouterConfig::default()).unwrap().route(
            circuit,
            &p,
            tech,
            &RoutingGuidance::None,
        ) {
            data.push((p, l));
        }
    }
    let refs: Vec<(&Placement, &RoutedLayout)> = data.iter().map(|(p, l)| (p, l)).collect();
    // At full scale the VAE is enlarged toward the original GeniusRoute's
    // heavyweight generative model (its runtime dominance in the paper's
    // Table 2 comes from exactly this model).
    let cfg = match scale {
        Scale::Quick => GeniusConfig {
            epochs: scale.vae_epochs(),
            ..GeniusConfig::default()
        },
        Scale::Full | Scale::Paper => GeniusConfig {
            raster: 20,
            hidden: 256,
            latent: 16,
            epochs: scale.vae_epochs(),
            ..GeniusConfig::default()
        },
    };
    GeniusRouteModel::train(circuit, &refs, &cfg)
}

/// Evaluates one Table 2 row under all four methods.
///
/// # Panics
///
/// Panics on unknown benchmark names or unroutable designs (the bundled
/// benchmarks always route).
pub fn run_row(bench: &str, variant: PlacementVariant, scale: Scale) -> RowResult {
    let circuit = benchmarks::by_name(bench).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let tech = Technology::nm40();
    let sim_cfg = SimConfig::default();
    let placement = place(&circuit, variant);

    let schematic = simulate(&circuit, None, &sim_cfg).expect("schematic simulation");

    // MagicalRoute.
    let t0 = Instant::now();
    let (_, _, magical_perf) = magical_route(
        &circuit,
        &placement,
        &tech,
        &RouterConfig::default(),
        &sim_cfg,
    )
    .expect("magical route");
    let magical = MethodResult {
        perf: magical_perf,
        runtime_s: t0.elapsed().as_secs_f64(),
    };

    // GeniusRoute: VAE training on sibling placements + guided routing.
    let t1 = Instant::now();
    let model = genius_model(&circuit, variant, &tech, scale);
    let guidance = model.guidance(&circuit, &placement);
    let layout = Router::new(RouterConfig::default())
        .unwrap()
        .route(&circuit, &placement, &tech, &guidance)
        .expect("genius route");
    let parasitics = af_extract::extract(&circuit, &tech, &layout);
    let genius_perf = simulate(&circuit, Some(&parasitics), &sim_cfg).expect("genius sim");
    let genius = MethodResult {
        perf: genius_perf,
        runtime_s: t1.elapsed().as_secs_f64(),
    };

    // AnalogFold.
    let seed = variant.seed() ^ bench.bytes().map(u64::from).sum::<u64>();
    let flow = AnalogFoldFlow::new(flow_config(scale, seed));
    let outcome = flow.run(&circuit, &placement).expect("analogfold flow");
    let ours = MethodResult {
        perf: outcome.performance,
        runtime_s: outcome.breakdown.guide_gen_s + outcome.breakdown.guided_route_s,
    };

    RowResult {
        id: format!("{bench}-{}", variant.label()),
        schematic,
        magical,
        genius,
        ours,
    }
}

/// Normalized per-metric averages over rows (MagicalRoute = 1.0), in the
/// order of the paper's "Average" block: offset, CMRR, bandwidth, gain,
/// noise, runtime.
pub fn averages(rows: &[RowResult]) -> [[f64; 3]; 6] {
    let mut acc = [[0.0; 3]; 6]; // [metric][method: magical, genius, ours]
    let n = rows.len() as f64;
    for r in rows {
        let m = [r.magical, r.genius, r.ours];
        for (k, res) in m.iter().enumerate() {
            let base = &r.magical.perf;
            let safe = |x: f64| x.abs().max(1e-9);
            acc[0][k] += res.perf.offset_uv / safe(base.offset_uv) / n;
            acc[1][k] += res.perf.cmrr_db / safe(base.cmrr_db) / n;
            acc[2][k] += res.perf.bandwidth_mhz / safe(base.bandwidth_mhz) / n;
            acc[3][k] += res.perf.dc_gain_db / safe(base.dc_gain_db) / n;
            acc[4][k] += res.perf.noise_uvrms / safe(base.noise_uvrms) / n;
            acc[5][k] += res.runtime_s / safe(r.magical.runtime_s) / n;
        }
    }
    acc
}

/// The shared table geometry of the Table 1/2 row blocks: a 22-wide metric
/// label and four 12-wide value columns, indented two spaces (matches the
/// obs tree report rendered by `af_obs::report`).
fn metric_table() -> af_obs::fmt::Table {
    af_obs::fmt::Table::new(22).cols(12, 4).indent(2)
}

/// Formats one metric line of the Table 2 layout.
pub fn fmt_metric(name: &str, schematic: Option<f64>, vals: [f64; 3], prec: usize) -> String {
    use af_obs::fmt::Cell;
    let s = schematic.map_or(Cell::Dash, |v| Cell::Float(v, prec));
    metric_table().row(
        name,
        &[
            s,
            Cell::Float(vals[0], prec),
            Cell::Float(vals[1], prec),
            Cell::Float(vals[2], prec),
        ],
    )
}

/// Prints a full row block in the paper's layout.
pub fn print_row(r: &RowResult) {
    println!("{}", r.id);
    println!(
        "{}",
        metric_table().header("metric", &["Schematic", "Magical", "Genius", "Ours"])
    );
    let (s, m, g, o) = (&r.schematic, &r.magical.perf, &r.genius.perf, &r.ours.perf);
    println!(
        "{}",
        fmt_metric(
            "OffsetVoltage(uV) v",
            None,
            [m.offset_uv, g.offset_uv, o.offset_uv],
            1
        )
    );
    println!(
        "{}",
        fmt_metric(
            "CMRR(dB) ^",
            Some(s.cmrr_db),
            [m.cmrr_db, g.cmrr_db, o.cmrr_db],
            2
        )
    );
    println!(
        "{}",
        fmt_metric(
            "BandWidth(MHz) ^",
            Some(s.bandwidth_mhz),
            [m.bandwidth_mhz, g.bandwidth_mhz, o.bandwidth_mhz],
            2
        )
    );
    println!(
        "{}",
        fmt_metric(
            "DC Gain(dB) ^",
            Some(s.dc_gain_db),
            [m.dc_gain_db, g.dc_gain_db, o.dc_gain_db],
            2
        )
    );
    println!(
        "{}",
        fmt_metric(
            "Noise(uVrms) v",
            Some(s.noise_uvrms),
            [m.noise_uvrms, g.noise_uvrms, o.noise_uvrms],
            1
        )
    );
    println!(
        "{}",
        fmt_metric(
            "Runtime(s) v",
            None,
            [r.magical.runtime_s, r.genius.runtime_s, r.ours.runtime_s],
            2
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_arg_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_arg(&args(&["quick", "threads=4"])), 4);
        assert_eq!(threads_arg(&args(&["threads=0"])), 0);
        assert_eq!(threads_arg(&args(&["quick"])), 0, "default is auto");
        assert_eq!(threads_arg(&args(&["threads=x"])), 0, "garbage is auto");
    }

    #[test]
    fn cache_arg_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(cache_arg(&args(&["quick", "cache=128"]), 64), 128);
        assert_eq!(cache_arg(&args(&["quick"]), 64), 64, "default");
        assert_eq!(cache_arg(&args(&["cache=0"]), 64), 0, "explicit off");
        // `cache=0` flipped the process-wide kill switch; restore it so
        // other tests see the default-enabled state.
        assert!(!analogfold::cache_enabled());
        analogfold::set_cache_enabled(true);
    }

    #[test]
    fn kv_arg_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            kv_arg(&args(&["quick", "obs=/tmp/x.jsonl"]), "obs"),
            Some("/tmp/x.jsonl")
        );
        assert_eq!(
            kv_arg(&args(&["observe=1"]), "obs"),
            None,
            "prefix must stop at `=`"
        );
        assert_eq!(kv_num(&args(&["seeds=7"]), "seeds", 5), 7);
        assert_eq!(kv_num(&args(&["seeds=junk"]), "seeds", 5), 5);
        assert_eq!(kv_num(&args(&[]), "seeds", 5), 5);
        assert_eq!(
            kv_list(&args(&["only=OTA1-A,OTA2-B"]), "only").unwrap(),
            vec!["OTA1-A".to_string(), "OTA2-B".to_string()]
        );
        assert!(kv_list(&args(&["quick"]), "only").is_none());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("x"), None);
        assert!(Scale::Full.samples() > Scale::Quick.samples());
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::Paper.samples(), 2_000);
    }

    #[test]
    fn averages_normalize_magical_to_one() {
        let perf = Performance {
            offset_uv: 100.0,
            cmrr_db: 80.0,
            bandwidth_mhz: 50.0,
            dc_gain_db: 40.0,
            noise_uvrms: 300.0,
        };
        let better = Performance {
            offset_uv: 50.0,
            ..perf
        };
        let row = RowResult {
            id: "X-A".into(),
            schematic: perf,
            magical: MethodResult {
                perf,
                runtime_s: 1.0,
            },
            genius: MethodResult {
                perf,
                runtime_s: 17.0,
            },
            ours: MethodResult {
                perf: better,
                runtime_s: 7.5,
            },
        };
        let avg = averages(&[row]);
        assert!((avg[0][0] - 1.0).abs() < 1e-12, "magical offset ratio = 1");
        assert!((avg[0][2] - 0.5).abs() < 1e-12, "ours offset ratio = 0.5");
        assert!((avg[5][1] - 17.0).abs() < 1e-12, "genius runtime ratio");
    }

    #[test]
    fn table2_rows_cover_paper() {
        assert_eq!(TABLE2_ROWS.len(), 10);
        assert_eq!(TABLE2_ROWS[0], ("OTA1", PlacementVariant::A));
        assert_eq!(TABLE2_ROWS[9], ("OTA4", PlacementVariant::B));
    }
}
