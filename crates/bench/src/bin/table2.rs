//! Regenerates **Table 2**: post-layout metric comparison between
//! Schematic, MagicalRoute \[16\], GeniusRoute \[11\], and AnalogFold (Ours) on
//! OTA1-{A,B,C}, OTA2-{A,B,C}, OTA3-{A,B}, OTA4-{A,B}, plus the normalized
//! "Average" block. Rows are independent, so they fan out across the `afrt`
//! worker pool and print in table order once all have finished.
//!
//! Run (paper scale, minutes):
//! `cargo run -p af-bench --bin table2 --release -- full`
//!
//! Quick smoke run (seconds per row):
//! `cargo run -p af-bench --bin table2 --release -- quick`
//!
//! Append `only=OTA1-A,OTA2-B` to restrict rows, `threads=N` to pin the
//! worker count (default: `AFRT_THREADS`, then hardware parallelism), and
//! `obs=<path>` to stream observability events to a JSONL file.

use af_bench::{averages, kv_list, obs_arg, print_row, run_row, threads_arg, Scale, TABLE2_ROWS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let only: Option<Vec<String>> = kv_list(&args, "only");
    let runtime = afrt::Runtime::with_threads(threads_arg(&args));

    println!("Table 2: comparison between baseline methods and AnalogFold (scale: {scale:?}).");
    println!("(v = lower is better, ^ = higher is better)\n");

    let selected: Vec<(&str, af_place::PlacementVariant)> = TABLE2_ROWS
        .iter()
        .copied()
        .filter(|(bench, variant)| {
            let id = format!("{bench}-{}", variant.label());
            only.as_ref()
                .map(|filter| filter.iter().any(|f| f.eq_ignore_ascii_case(&id)))
                .unwrap_or(true)
        })
        .collect();

    eprintln!(
        "running {} row(s) on {} worker(s) ...",
        selected.len(),
        runtime.threads()
    );
    let (rows, elapsed_s) = afrt::timed(|| {
        runtime
            .par_map(&selected, |_, &(bench, variant)| {
                run_row(bench, variant, scale)
            })
            .expect("row fan-out")
    });
    for row in &rows {
        print_row(row);
        println!();
    }
    eprintln!(
        "{} row(s) in {elapsed_s:.2} s on {} worker(s)",
        rows.len(),
        runtime.threads()
    );

    if rows.len() > 1 {
        let avg = averages(&rows);
        println!("Average (normalized to MagicalRoute = 1.000)");
        let t = af_obs::fmt::Table::new(22).cols(12, 3).indent(2);
        println!("{}", t.header("metric", &["Magical", "Genius", "Ours"]));
        let names = [
            "OffsetVoltage v",
            "CMRR ^",
            "BandWidth ^",
            "DC Gain ^",
            "Noise v",
            "Runtime v",
        ];
        for (name, vals) in names.iter().zip(avg) {
            let cells: Vec<af_obs::fmt::Cell> = vals
                .iter()
                .map(|&v| af_obs::fmt::Cell::Float(v, 3))
                .collect();
            println!("{}", t.row(name, &cells));
        }
    }
}
