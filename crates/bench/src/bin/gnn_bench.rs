//! GNN surrogate throughput: scalar oracle vs the `af_tensor` tape engine.
//!
//! Measures the two hot paths of the flow — forward-only prediction (serving)
//! and forward+backward FoM gradients (relaxation) — on a seed OTA design,
//! for both implementations:
//!
//! * **oracle** — the original `af_nn::Graph` scalar path
//!   (`predict_oracle` / `fom_and_grad_oracle`), which rebuilds the autograd
//!   graph per evaluation;
//! * **tensor** — the compiled [`analogfold::GnnProgram`] tape, recorded once
//!   and replayed per evaluation with no allocations.
//!
//! Throughput is reported as evaluations/s and edges/s (messages moved per
//! layer × layers × evals). A pool-assisted relaxation is then timed at each
//! requested worker count, reporting configured L-BFGS iterations/s.
//!
//! Every run also verifies the correctness contract and exits non-zero on
//! violation, which is what the CI `gnn-bench-smoke` step relies on:
//!
//! * oracle/tensor parity within 1e-9 on predictions, FoM values, and
//!   guidance gradients (the fused-FMA dispatch and the polynomial exp
//!   round differently from the oracle; see DESIGN.md §12);
//! * tape replay determinism (same input twice → identical bits);
//! * relaxation bit-identical across all worker counts and with the
//!   surrogate memo on vs off.
//!
//! Run: `cargo run -p af-bench --bin gnn_bench --release --
//!       [quick|full|smoke] [threads=1,4,8] [evals=N] [obs=<path>]`

use af_bench::{kv_list, kv_num, obs_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_tech::Technology;
use analogfold::{
    relax, set_cache_enabled, GnnConfig, GnnProgram, GraphTensors, HeteroGraph, Potential,
    RelaxConfig, ThreeDGnn,
};
use serde::Serialize;

const FOM_WEIGHTS: [f64; 5] = [1.0, -1.0, -1.0, -1.0, 1.0];

#[derive(Serialize)]
struct PathThroughput {
    evals: usize,
    oracle_s: f64,
    tensor_s: f64,
    oracle_evals_s: f64,
    tensor_evals_s: f64,
    oracle_edges_s: f64,
    tensor_edges_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct RelaxRow {
    threads: usize,
    relax_s: f64,
    /// Configured L-BFGS iterations per second (restarts × lbfgs_iters over
    /// wall time; descents may converge early, so this is a lower bound on
    /// per-iteration speed).
    relax_iters_s: f64,
}

#[derive(Serialize)]
struct GnnBenchReport {
    mode: String,
    design: String,
    guidance_dim: usize,
    edges_per_pass: usize,
    layers: usize,
    hidden: usize,
    forward: PathThroughput,
    forward_backward: PathThroughput,
    relax: Vec<RelaxRow>,
    parity_max_abs_err: f64,
    determinism_ok: bool,
    checks_failed: Vec<String>,
}

/// Deterministic in-bounds guidance batch (no RNG: the batch must be the
/// same for both implementations and across runs).
fn guidance_batch(n: usize, dim: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    let mid = 0.5 * (lo + hi);
    let amp = 0.4 * (hi - lo);
    (0..n)
        .map(|j| {
            (0..dim)
                .map(|i| mid + amp * ((1 + i + j * dim) as f64).sin())
                .collect()
        })
        .collect()
}

fn throughput(evals: usize, oracle_s: f64, tensor_s: f64, edges: usize) -> PathThroughput {
    let per = |s: f64| evals as f64 / s.max(1e-12);
    PathThroughput {
        evals,
        oracle_s,
        tensor_s,
        oracle_evals_s: per(oracle_s),
        tensor_evals_s: per(tensor_s),
        oracle_edges_s: per(oracle_s) * edges as f64,
        tensor_edges_s: per(tensor_s) * edges as f64,
        speedup: oracle_s / tensor_s.max(1e-12),
    }
}

fn relax_outcome_bits(out: &[analogfold::RelaxOutcome]) -> Vec<u64> {
    out.iter()
        .flat_map(|o| {
            std::iter::once(o.potential.to_bits()).chain(o.guidance.iter().map(|v| v.to_bits()))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let smoke = args.iter().any(|a| a == "smoke");
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let mode = if smoke {
        "smoke".to_string()
    } else {
        format!("{scale:?}").to_lowercase()
    };
    let default_evals = if smoke {
        8
    } else {
        match scale {
            Scale::Quick => 48,
            _ => 240,
        }
    };
    let evals = kv_num(&args, "evals", default_evals) as usize;
    let thread_counts: Vec<usize> = kv_list(&args, "threads")
        .map(|l| l.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 4, 8]);

    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 2);
    let cfg = GnnConfig::default();
    let gnn = ThreeDGnn::new(&cfg);
    let tensors = GraphTensors::new(&graph);
    let dim = tensors.guidance_len();
    let edges = tensors.edges_per_pass() * cfg.layers;
    let batch = guidance_batch(evals, dim, cfg.c_min, cfg.c_max);

    let mut checks: Vec<String> = Vec::new();
    let mut parity_max: f64 = 0.0;

    // --- Forward-only: oracle vs compiled tape --------------------------
    eprintln!("forward: {evals} evals, oracle vs tensor ...");
    let (oracle_preds, fwd_oracle_s) = afrt::timed(|| {
        batch
            .iter()
            .map(|c| gnn.predict_oracle(&graph, c))
            .collect::<Vec<_>>()
    });
    let (tensor_preds, fwd_tensor_s) = afrt::timed(|| {
        let mut program = GnnProgram::compile_predict(&gnn, &tensors);
        batch.iter().map(|c| program.predict(c)).collect::<Vec<_>>()
    });
    for (o, t) in oracle_preds.iter().zip(&tensor_preds) {
        for (a, b) in o.iter().zip(t) {
            parity_max = parity_max.max((a - b).abs());
        }
    }

    // --- Forward+backward: FoM value and guidance gradient ---------------
    eprintln!("forward+backward: {evals} evals, oracle vs tensor ...");
    let (oracle_foms, fb_oracle_s) = afrt::timed(|| {
        batch
            .iter()
            .map(|c| gnn.fom_and_grad_oracle(&tensors, c, &FOM_WEIGHTS))
            .collect::<Vec<_>>()
    });
    let (tensor_foms, fb_tensor_s) = afrt::timed(|| {
        let mut program = GnnProgram::compile_fom(&gnn, &tensors, &FOM_WEIGHTS);
        batch
            .iter()
            .map(|c| program.fom_and_grad(c))
            .collect::<Vec<_>>()
    });
    for ((fo, go), (ft, gt)) in oracle_foms.iter().zip(&tensor_foms) {
        parity_max = parity_max.max((fo - ft).abs());
        for (a, b) in go.iter().zip(gt) {
            parity_max = parity_max.max((a - b).abs());
        }
    }
    if parity_max > 1e-9 {
        checks.push(format!(
            "oracle/tensor parity violated: max abs err {parity_max:.3e} > 1e-9"
        ));
    }

    // --- Replay determinism: same program, same input, twice --------------
    let mut program = GnnProgram::compile_fom(&gnn, &tensors, &FOM_WEIGHTS);
    let (f1, g1) = program.fom_and_grad(&batch[0]);
    let (f2, g2) = program.fom_and_grad(&batch[0]);
    let replay_ok = f1.to_bits() == f2.to_bits()
        && g1.len() == g2.len()
        && g1.iter().zip(&g2).all(|(a, b)| a.to_bits() == b.to_bits());
    if !replay_ok {
        checks.push("tape replay is not deterministic".to_string());
    }

    // --- Relaxation across worker counts ----------------------------------
    let relax_cfg = RelaxConfig {
        restarts: if smoke { 2 } else { 6 },
        pool_size: 3,
        n_derive: 2,
        lbfgs_iters: if smoke { 5 } else { 15 },
        ..RelaxConfig::default()
    };
    let mut relax_rows = Vec::new();
    let mut relax_bits: Option<Vec<u64>> = None;
    let mut determinism_ok = replay_ok;
    for &threads in &thread_counts {
        eprintln!(
            "relax: {} restarts on {threads} thread(s) ...",
            relax_cfg.restarts
        );
        let potential = Potential::new(&gnn, &graph);
        let run_cfg = RelaxConfig {
            threads,
            ..relax_cfg.clone()
        };
        let (out, relax_s) = afrt::timed(|| relax(&potential, &run_cfg));
        let bits = relax_outcome_bits(&out);
        match &relax_bits {
            None => relax_bits = Some(bits),
            Some(want) if *want != bits => {
                determinism_ok = false;
                checks.push(format!(
                    "relaxation differs at {threads} thread(s) vs {} thread(s)",
                    thread_counts[0]
                ));
            }
            _ => {}
        }
        relax_rows.push(RelaxRow {
            threads,
            relax_s,
            relax_iters_s: (run_cfg.restarts * run_cfg.lbfgs_iters) as f64 / relax_s.max(1e-12),
        });
    }

    // --- Memo on vs off: bit-identical either way --------------------------
    eprintln!("relax: memo on vs off ...");
    let mut memoized = Potential::new(&gnn, &graph);
    memoized.enable_memo(16);
    let cached = relax(&memoized, &relax_cfg);
    set_cache_enabled(false);
    let uncached = relax(&memoized, &relax_cfg);
    set_cache_enabled(true);
    if relax_outcome_bits(&cached) != relax_outcome_bits(&uncached) {
        determinism_ok = false;
        checks.push("relaxation differs with the surrogate memo on vs off".to_string());
    }

    let forward = throughput(evals, fwd_oracle_s, fwd_tensor_s, edges);
    let forward_backward = throughput(evals, fb_oracle_s, fb_tensor_s, edges);
    println!(
        "forward:          oracle {:>9.1} evals/s ({:>12.0} edges/s)  tensor {:>9.1} evals/s \
         ({:>12.0} edges/s)  speedup {:.2}x",
        forward.oracle_evals_s,
        forward.oracle_edges_s,
        forward.tensor_evals_s,
        forward.tensor_edges_s,
        forward.speedup
    );
    println!(
        "forward+backward: oracle {:>9.1} evals/s ({:>12.0} edges/s)  tensor {:>9.1} evals/s \
         ({:>12.0} edges/s)  speedup {:.2}x",
        forward_backward.oracle_evals_s,
        forward_backward.oracle_edges_s,
        forward_backward.tensor_evals_s,
        forward_backward.tensor_edges_s,
        forward_backward.speedup
    );
    for row in &relax_rows {
        println!(
            "relax {} thread(s): {:.3} s  ({:.1} configured L-BFGS iters/s)",
            row.threads, row.relax_s, row.relax_iters_s
        );
    }
    println!(
        "parity max abs err {parity_max:.3e}  determinism {}",
        if determinism_ok { "ok" } else { "FAILED" }
    );

    let report = GnnBenchReport {
        mode,
        design: "OTA1-A".to_string(),
        guidance_dim: dim,
        edges_per_pass: tensors.edges_per_pass(),
        layers: cfg.layers,
        hidden: cfg.hidden,
        forward,
        forward_backward,
        relax: relax_rows,
        parity_max_abs_err: parity_max,
        determinism_ok,
        checks_failed: checks.clone(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_gnn.json", &json).expect("write BENCH_gnn.json");
    println!("wrote BENCH_gnn.json");

    if !checks.is_empty() {
        for c in &checks {
            eprintln!("CHECK FAILED: {c}");
        }
        std::process::exit(1);
    }
}
