//! Regenerates **Figure 5**: runtime breakdown of the AnalogFold flow on
//! OTA1 (paper: Construct DB 0.33 %, Model Training 80.22 %, Guide
//! Generation 3.71 %, Guided Detailed Routing 2.22 %, Placement 13.51 %).
//!
//! The flow's parallel stages (dataset generation, relaxation restarts,
//! candidate evaluation) run on the `afrt` worker pool; pass `threads=1` to
//! reproduce the sequential path (the breakdown numbers are bit-identical
//! either way, only the wall-clock changes).
//!
//! Run: `cargo run -p af-bench --bin fig5_runtime --release --
//!       [quick|full] [threads=N]`

use std::time::Instant;

use af_bench::{flow_config, obs_arg, threads_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use analogfold::AnalogFoldFlow;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let threads = threads_arg(&args);
    let workers = afrt::Runtime::with_threads(threads).threads();
    let circuit = benchmarks::ota1();

    let t0 = Instant::now();
    let placement = place(&circuit, PlacementVariant::A);
    let placement_s = t0.elapsed().as_secs_f64();

    let mut cfg = flow_config(scale, 0xf15).with_threads(threads);
    cfg.placement_s = placement_s;
    let outcome = AnalogFoldFlow::new(cfg)
        .run(&circuit, &placement)
        .expect("flow");

    let b = outcome.breakdown;
    let p = b.percentages();
    println!("Figure 5: runtime breakdown for OTA1 (scale: {scale:?}, {workers} worker(s))");
    println!("total wall-clock: {:.2} s\n", b.total());
    let labels = [
        ("Construct Database", b.construct_db_s, p[0], 0.33),
        ("Model Training", b.training_s, p[1], 80.22),
        (
            "Inference: Routing Guide Generation",
            b.guide_gen_s,
            p[2],
            3.71,
        ),
        (
            "Inference: Guided Detailed Routing",
            b.guided_route_s,
            p[3],
            2.22,
        ),
        ("Placement", b.placement_s, p[4], 13.51),
    ];
    println!(
        "{:<38}{:>10}{:>10}{:>12}",
        "stage", "secs", "percent", "paper %"
    );
    for (name, secs, pct, paper) in labels {
        println!("{name:<38}{secs:>10.3}{pct:>9.2}%{paper:>11.2}%");
    }
    // a crude ASCII pie substitute
    println!("\nshare of total runtime:");
    for (name, _, pct, _) in labels {
        let bars = (pct / 2.0).round() as usize;
        println!("{name:<38}|{}", "#".repeat(bars));
    }
}
