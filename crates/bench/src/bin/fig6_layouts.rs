//! Regenerates **Figure 6**: visual comparison of GeniusRoute and AnalogFold
//! routing solutions (SVG files written to `target/figures/`).
//!
//! Run: `cargo run -p af-bench --bin fig6_layouts --release -- [quick|full]`

use std::fs;

use af_bench::{flow_config, genius_model, obs_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::{render_svg, Router, RouterConfig, RoutingGuidance};
use af_tech::Technology;
use analogfold::{guidance_field_for, AnalogFoldFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let out_dir = std::path::Path::new("target/figures");
    fs::create_dir_all(out_dir)?;

    // Baseline (MagicalRoute) for reference.
    let base = Router::new(RouterConfig::default()).unwrap().route(
        &circuit,
        &placement,
        &tech,
        &RoutingGuidance::None,
    )?;
    fs::write(
        out_dir.join("fig6_magicalroute.svg"),
        render_svg(&circuit, &placement, &base, "OTA1-A MagicalRoute"),
    )?;

    // GeniusRoute.
    let model = genius_model(&circuit, PlacementVariant::A, &tech, scale);
    let genius_guidance = model.guidance(&circuit, &placement);
    let genius = Router::new(RouterConfig::default()).unwrap().route(
        &circuit,
        &placement,
        &tech,
        &genius_guidance,
    )?;
    fs::write(
        out_dir.join("fig6_geniusroute.svg"),
        render_svg(&circuit, &placement, &genius, "OTA1-A GeniusRoute"),
    )?;

    // AnalogFold.
    let flow = AnalogFoldFlow::new(flow_config(scale, 0xf16));
    let outcome = flow.run(&circuit, &placement)?;
    fs::write(
        out_dir.join("fig6_analogfold.svg"),
        render_svg(&circuit, &placement, &outcome.layout, "OTA1-A AnalogFold"),
    )?;

    // For completeness also dump the guidance field used.
    let field = guidance_field_for(&circuit, &placement, &tech, &outcome.guidance);
    fs::write(
        out_dir.join("fig6_guidance.json"),
        serde_json::to_string_pretty(&field)?,
    )?;

    println!("Figure 6 artifacts written to {}:", out_dir.display());
    for f in [
        "fig6_magicalroute.svg",
        "fig6_geniusroute.svg",
        "fig6_analogfold.svg",
        "fig6_guidance.json",
    ] {
        println!("  {f}");
    }
    println!(
        "wirelength: magical {:.1} um, genius {:.1} um, analogfold {:.1} um",
        base.total_wirelength() as f64 / 1e3,
        genius.total_wirelength() as f64 / 1e3,
        outcome.layout.total_wirelength() as f64 / 1e3
    );
    Ok(())
}
