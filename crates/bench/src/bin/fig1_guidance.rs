//! Regenerates **Figure 1(b)**: the 3-D visualization data of the
//! non-uniform routing guidance — one cost triple per pin access point.
//!
//! Writes `target/figures/fig1_guidance.csv` with columns
//! `net,x_um,y_um,layer,c_x,c_y,c_z` and prints an ASCII summary.
//!
//! Run: `cargo run -p af-bench --bin fig1_guidance --release -- [quick|full]`

use std::fs;

use af_bench::{flow_config, obs_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_tech::Technology;
use analogfold::{AnalogFoldFlow, HeteroGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);

    let flow = AnalogFoldFlow::new(flow_config(scale, 0xf11));
    let outcome = flow.run(&circuit, &placement)?;
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let guided = graph.guided_ap_indices();

    let out_dir = std::path::Path::new("target/figures");
    fs::create_dir_all(out_dir)?;
    let mut csv = String::from("net,x_um,y_um,layer,c_x,c_y,c_z\n");
    println!(
        "Figure 1(b): non-uniform routing guidance for OTA1-A ({} guided APs)",
        guided.len()
    );
    println!(
        "{:<10}{:>9}{:>9}{:>7}{:>8}{:>8}{:>8}",
        "net", "x(um)", "y(um)", "layer", "C[0]", "C[1]", "C[2]"
    );
    for (row, &ap_idx) in guided.iter().enumerate() {
        let ap = &graph.aps[ap_idx];
        let name = &circuit.net(ap.net).name;
        let (cx, cy, cz) = (
            outcome.guidance[row * 3],
            outcome.guidance[row * 3 + 1],
            outcome.guidance[row * 3 + 2],
        );
        csv.push_str(&format!(
            "{name},{:.3},{:.3},{},{cx:.4},{cy:.4},{cz:.4}\n",
            ap.pos.x as f64 / 1e3,
            ap.pos.y as f64 / 1e3,
            ap.pos.z
        ));
        println!(
            "{:<10}{:>9.2}{:>9.2}{:>7}{:>8.3}{:>8.3}{:>8.3}",
            name,
            ap.pos.x as f64 / 1e3,
            ap.pos.y as f64 / 1e3,
            ap.pos.z,
            cx,
            cy,
            cz
        );
    }
    let path = out_dir.join("fig1_guidance.csv");
    fs::write(&path, csv)?;
    println!("\nwritten: {}", path.display());
    Ok(())
}
