//! Stability experiment: the paper claims AnalogFold "exhibits enhanced
//! stability by considering the potential post-layout performance". This
//! binary quantifies run-to-run spread: the flow is repeated with K
//! different seeds on OTA1-A and the per-metric mean ± standard deviation is
//! reported next to the (deterministic) MagicalRoute baseline.
//!
//! The K per-seed flows fan out across the `afrt` worker pool; the same
//! workload is then replayed on one worker and the wall-clock speedup is
//! printed. Per-seed results are identical either way (each flow depends
//! only on its seed), so the speedup costs no reproducibility.
//!
//! Run: `cargo run -p af-bench --bin stability --release -- [quick|full]
//!       [seeds=K] [threads=N]`

use af_bench::{flow_config, kv_num, obs_arg, threads_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::RouterConfig;
use af_sim::SimConfig;
use af_tech::Technology;
use analogfold::{magical_route, AnalogFoldFlow};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let seeds: u64 = kv_num(&args, "seeds", 5);
    let runtime = afrt::Runtime::with_threads(threads_arg(&args));

    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let (_, _, base) = magical_route(
        &circuit,
        &placement,
        &tech,
        &RouterConfig::default(),
        &SimConfig::default(),
    )
    .expect("baseline");

    // One job per seed. Each flow pins its internal stages to a single
    // thread so the fan-out is the only parallelism and the sequential
    // replay below is a like-for-like comparison.
    let run_all = |rt: &afrt::Runtime| -> Vec<[f64; 5]> {
        let jobs: Vec<_> = (0..seeds)
            .map(|seed| {
                let circuit = &circuit;
                let placement = &placement;
                move || {
                    let flow =
                        AnalogFoldFlow::new(flow_config(scale, 0x57ab + seed).with_threads(1));
                    let p = flow.run(circuit, placement).expect("flow").performance;
                    [
                        p.offset_uv,
                        p.cmrr_db,
                        p.bandwidth_mhz,
                        p.dc_gain_db,
                        p.noise_uvrms,
                    ]
                }
            })
            .collect();
        rt.par_run(jobs).expect("per-seed fan-out")
    };

    eprintln!(
        "running {seeds} seeds on {} worker(s) ...",
        runtime.threads()
    );
    let (rows, parallel_s) = afrt::timed(|| run_all(&runtime));
    eprintln!("replaying sequentially for the speedup baseline ...");
    let (rows_seq, sequential_s) = afrt::timed(|| run_all(&afrt::Runtime::with_threads(1)));
    assert_eq!(rows, rows_seq, "parallel and sequential runs must agree");

    let n = rows.len() as f64;
    let names = ["Offset(uV)", "CMRR(dB)", "BW(MHz)", "Gain(dB)", "Noise(uV)"];
    let baseline = [
        base.offset_uv,
        base.cmrr_db,
        base.bandwidth_mhz,
        base.dc_gain_db,
        base.noise_uvrms,
    ];
    println!("Stability over {seeds} seeds on OTA1-A (scale {scale:?})\n");
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>10}",
        "metric", "Magical", "Ours mean", "Ours std", "cv %"
    );
    for k in 0..5 {
        let mean = rows.iter().map(|r| r[k]).sum::<f64>() / n;
        let var = rows
            .iter()
            .map(|r| (r[k] - mean) * (r[k] - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        println!(
            "{:<12}{:>12.2}{:>12.2}{:>12.2}{:>9.2}%",
            names[k],
            baseline[k],
            mean,
            std,
            100.0 * std / mean.abs().max(1e-9)
        );
    }
    println!(
        "\nfan-out: {} worker(s)  parallel {:.2} s  sequential {:.2} s  speedup {:.2}x",
        runtime.threads(),
        parallel_s,
        sequential_s,
        sequential_s / parallel_s.max(1e-9)
    );
}
