//! Stability experiment: the paper claims AnalogFold "exhibits enhanced
//! stability by considering the potential post-layout performance". This
//! binary quantifies run-to-run spread: the flow is repeated with K
//! different seeds on OTA1-A and the per-metric mean ± standard deviation is
//! reported next to the (deterministic) MagicalRoute baseline.
//!
//! The K per-seed flows fan out across the `afrt` worker pool; the same
//! workload is then replayed on one worker and the wall-clock speedup is
//! printed. Per-seed results are identical either way (each flow depends
//! only on its seed), so the speedup costs no reproducibility.
//!
//! A warm-vs-cold cache probe follows: the guidance potential `f_theta` is
//! evaluated over a fixed batch of guidance vectors twice through the
//! relaxation memo — the first pass misses (and pays the full GNN forward),
//! the second hits. The speedup and hit/miss counters land in the JSON
//! report (`BENCH_stability.json`) next to the per-metric spread; cached
//! results are bit-identical to uncached ones, so the probe asserts
//! equality too.
//!
//! Run: `cargo run -p af-bench --bin stability --release -- [quick|full]
//!       [seeds=K] [threads=N] [route_threads=N] [cache=MB]`

use af_bench::{cache_arg, flow_config, kv_num, obs_arg, route_threads_arg, threads_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::RouterConfig;
use af_sim::SimConfig;
use af_tech::Technology;
use analogfold::{magical_route, AnalogFoldFlow, GnnConfig, HeteroGraph, Potential, ThreeDGnn};
use serde::Serialize;

#[derive(Serialize)]
struct MetricRow {
    metric: String,
    magical: f64,
    ours_mean: f64,
    ours_std: f64,
    cv_pct: f64,
}

#[derive(Serialize)]
struct CacheReport {
    cache_mb: u64,
    evals: u64,
    cold_s: f64,
    warm_s: f64,
    warm_speedup: f64,
    hits: u64,
    misses: u64,
    hit_ratio: f64,
}

#[derive(Serialize)]
struct StabilityReport {
    scale: String,
    seeds: u64,
    workers: usize,
    parallel_s: f64,
    sequential_s: f64,
    fanout_speedup: f64,
    metrics: Vec<MetricRow>,
    cache: CacheReport,
}

/// Times the relaxation memo cold (every lookup misses) against warm
/// (every lookup hits) on a fixed batch of guidance vectors, checking that
/// both passes return bit-identical values.
fn cache_probe(cache_mb: u64, scale: Scale) -> CacheReport {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let gnn = ThreeDGnn::new(&GnnConfig::default());
    let mut potential = Potential::new(&gnn, &graph);
    potential.enable_memo(cache_mb.max(1));

    let evals: usize = match scale {
        Scale::Quick => 32,
        _ => 128,
    };
    let dim = potential.dim();
    let batch: Vec<Vec<f64>> = (0..evals)
        .map(|j| {
            (0..dim)
                .map(|i| 0.25 * ((1 + i + j * dim) as f64).sin())
                .collect()
        })
        .collect();

    let run = |batch: &[Vec<f64>]| -> Vec<f64> {
        batch
            .iter()
            .map(|c| potential.value_and_grad(c).0)
            .collect()
    };
    let (cold, cold_s) = afrt::timed(|| run(&batch));
    let (warm, warm_s) = afrt::timed(|| run(&batch));
    assert_eq!(
        cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "cached evaluations must be bit-identical to uncached ones"
    );

    let stats = potential.memo_stats();
    let lookups = stats.hits + stats.misses;
    CacheReport {
        cache_mb,
        evals: evals as u64,
        cold_s,
        warm_s,
        warm_speedup: cold_s / warm_s.max(1e-9),
        hits: stats.hits,
        misses: stats.misses,
        hit_ratio: stats.hits as f64 / (lookups.max(1)) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let seeds: u64 = kv_num(&args, "seeds", 5);
    let cache_mb = cache_arg(&args, 64);
    let runtime = afrt::Runtime::with_threads(threads_arg(&args));

    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let router_cfg = RouterConfig::builder()
        .threads(route_threads_arg(&args))
        .build()
        .expect("valid router config");
    let (_, _, base) = magical_route(
        &circuit,
        &placement,
        &tech,
        &router_cfg,
        &SimConfig::default(),
    )
    .expect("baseline");

    // One job per seed. Each flow pins its internal stages to a single
    // thread so the fan-out is the only parallelism and the sequential
    // replay below is a like-for-like comparison.
    let run_all = |rt: &afrt::Runtime| -> Vec<[f64; 5]> {
        let jobs: Vec<_> = (0..seeds)
            .map(|seed| {
                let circuit = &circuit;
                let placement = &placement;
                move || {
                    let flow = AnalogFoldFlow::new(
                        flow_config(scale, 0x57ab + seed)
                            .with_threads(1)
                            .with_cache_mb(cache_mb),
                    );
                    let p = flow.run(circuit, placement).expect("flow").performance;
                    [
                        p.offset_uv,
                        p.cmrr_db,
                        p.bandwidth_mhz,
                        p.dc_gain_db,
                        p.noise_uvrms,
                    ]
                }
            })
            .collect();
        rt.par_run(jobs).expect("per-seed fan-out")
    };

    eprintln!(
        "running {seeds} seeds on {} worker(s) ...",
        runtime.threads()
    );
    let (rows, parallel_s) = afrt::timed(|| run_all(&runtime));
    eprintln!("replaying sequentially for the speedup baseline ...");
    let (rows_seq, sequential_s) = afrt::timed(|| run_all(&afrt::Runtime::with_threads(1)));
    assert_eq!(rows, rows_seq, "parallel and sequential runs must agree");

    let n = rows.len() as f64;
    let names = ["Offset(uV)", "CMRR(dB)", "BW(MHz)", "Gain(dB)", "Noise(uV)"];
    let baseline = [
        base.offset_uv,
        base.cmrr_db,
        base.bandwidth_mhz,
        base.dc_gain_db,
        base.noise_uvrms,
    ];
    println!("Stability over {seeds} seeds on OTA1-A (scale {scale:?})\n");
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>10}",
        "metric", "Magical", "Ours mean", "Ours std", "cv %"
    );
    let mut metrics = Vec::with_capacity(5);
    for k in 0..5 {
        let mean = rows.iter().map(|r| r[k]).sum::<f64>() / n;
        let var = rows
            .iter()
            .map(|r| (r[k] - mean) * (r[k] - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        let cv_pct = 100.0 * std / mean.abs().max(1e-9);
        println!(
            "{:<12}{:>12.2}{:>12.2}{:>12.2}{:>9.2}%",
            names[k], baseline[k], mean, std, cv_pct
        );
        metrics.push(MetricRow {
            metric: names[k].to_string(),
            magical: baseline[k],
            ours_mean: mean,
            ours_std: std,
            cv_pct,
        });
    }
    println!(
        "\nfan-out: {} worker(s)  parallel {:.2} s  sequential {:.2} s  speedup {:.2}x",
        runtime.threads(),
        parallel_s,
        sequential_s,
        sequential_s / parallel_s.max(1e-9)
    );

    eprintln!("probing the relaxation memo warm vs cold ...");
    let cache = cache_probe(cache_mb, scale);
    println!(
        "cache: {} evals  cold {:.3} s  warm {:.3} s  speedup {:.1}x  \
         {} hits / {} misses (hit ratio {:.2})",
        cache.evals,
        cache.cold_s,
        cache.warm_s,
        cache.warm_speedup,
        cache.hits,
        cache.misses,
        cache.hit_ratio
    );

    let report = StabilityReport {
        scale: format!("{scale:?}"),
        seeds,
        workers: runtime.threads(),
        parallel_s,
        sequential_s,
        fanout_speedup: sequential_s / parallel_s.max(1e-9),
        metrics,
        cache,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_stability.json", &json).expect("write BENCH_stability.json");
    println!("wrote BENCH_stability.json");
}
