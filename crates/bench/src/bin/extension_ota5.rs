//! Extension experiment (beyond the paper): the full method comparison on
//! OTA5, a folded-cascode OTA — a third topology demonstrating that the flow
//! generalizes past the paper's two OTA families.
//!
//! Run: `cargo run -p af-bench --bin extension_ota5 --release -- [quick|full]`

use af_bench::{obs_arg, print_row, run_row, Scale};
use af_place::PlacementVariant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    println!("Extension: OTA5 folded-cascode (scale {scale:?})\n");
    for variant in [PlacementVariant::A, PlacementVariant::B] {
        let row = run_row("OTA5", variant, scale);
        print_row(&row);
        println!();
    }
}
