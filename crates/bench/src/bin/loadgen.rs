//! Closed-loop load generator for `af-serve`: starts an in-process server
//! with a resident model and hammers `POST /v1/predict` from keep-alive
//! client connections, then writes `BENCH_serve.json` with throughput and
//! latency percentiles.
//!
//! Closed-loop means each client sends its next request only after the
//! previous response arrives, so the offered load adapts to the server
//! instead of overrunning it — the numbers measure serving capacity, not
//! queue overflow behaviour (the e2e suite covers shedding).
//!
//! Every client sends the same body, so with the response cache enabled
//! (the default) all but the very first request are served from cache and
//! the numbers measure cached-path capacity; the report separates cold
//! (miss) from warm (hit) latency. Pass `cache=0` to disable the cache and
//! measure raw batched-forward throughput instead.
//!
//! Pass `fault=SPEC` (e.g. `fault=serve.batch:panic:0.01`, optionally with
//! `fault_seed=N`) to arm the af-fault registry inside the server process:
//! the report then records the error rate and tail latency under injected
//! faults instead of asserting every response is a `200`.
//!
//! Pass `workers=1,2,4` to append a **fleet scaling phase**: for each
//! worker count an in-process fleet (coordinator + N model servers with
//! heartbeating agents + rendezvous-hashing front) is stood up and hammered
//! through the front with *distinct* bodies (cache misses, so every request
//! traverses the worker's batch collector). Offered load is held constant
//! *per worker* (`fleet_conns_per` closed-loop clients each, default 2), and
//! fleet workers run with a stretched batch window so per-request latency is
//! dominated by the collector's batching wait — idle time that overlapping
//! replicas can hide even on a single-core CI box, where raw compute cannot
//! parallelize. The row therefore measures what a front actually multiplies:
//! aggregate concurrency across replicas, each with a bounded service rate.
//! A second short pass with a small repeated body pool measures routing
//! affinity: its per-worker cache-hit ratios are only high because the
//! rendezvous ring keeps sending a given body to the same worker's warm
//! cache. `coordinator=HOST:PORT` instead points the fleet phase at an
//! externally running coordinator (one row, workers as found).
//!
//! Pass `swap=N` to append a **promote-under-load phase**: a registry-backed
//! server with two registered model versions is hammered with `N` distinct
//! predict bodies per connection while `POST /v1/models/promote` hot-swaps
//! the resident model mid-run. The row records latency percentiles on both
//! sides of the swap, the promote round-trip itself, and asserts zero
//! dropped or non-200 responses — the zero-downtime claim as a number.
//!
//! Pass `slow=MS` to append a **slow-worker phase**: a 3-worker fleet where
//! a seeded `serve.batch.delay` fault makes exactly one worker's batch
//! collector sleep `MS` milliseconds, measured three ways — healthy (fault
//! disarmed), unhedged (fault armed, af-guard off), and hedged (fault
//! armed, hedging + latency breaker on). The row records the p50/p99 of
//! each pass plus how many hedges were issued, so the hedged-vs-unhedged
//! tail comparison lands in `BENCH_serve.json` as numbers.
//!
//! Run: `cargo run -p af-bench --bin loadgen --release --
//!       [quick|full] [conns=N] [requests=N] [cache=MB] [obs=path]
//!       [route_threads=a,b,c] [route_jobs=N] [fault=SPEC] [fault_seed=N]
//!       [workers=a,b,c] [coordinator=HOST:PORT] [fleet_conns_per=N]
//!       [fleet_requests=N] [swap=N] [slow=MS]`

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use af_bench::{cache_arg, fault_arg, kv_list, kv_num, obs_arg, Scale};
use af_fleet::{
    Coordinator, CoordinatorConfig, Front, FrontConfig, FrontHandle, WorkerAgent, WorkerCaps,
    WorkerIdentity,
};
use af_model::{Lineage, ModelRegistry};
use af_serve::{ModelBundle, ServeConfig, Server};
use analogfold::{GnnConfig, ThreeDGnn};
use serde::Serialize;

#[derive(Serialize)]
struct LoadgenReport {
    scale: String,
    conns: u64,
    requests_per_conn: u64,
    total_requests: u64,
    wall_s: f64,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    cache_mb: u64,
    cache_hits: u64,
    cache_hit_ratio: f64,
    cold_p50_ms: f64,
    warm_p50_ms: f64,
    warm_speedup: f64,
    fault_spec: String,
    errors: u64,
    error_rate: f64,
    /// `POST /v1/route` job latency per router worker count.
    route: Vec<RouteLatencyRow>,
    /// Fleet scaling rows (empty unless `workers=` or `coordinator=` given).
    fleet: Vec<FleetScalingRow>,
    /// Promote-under-load row (empty unless `swap=` given).
    swap: Vec<SwapPhaseRow>,
    /// Slow-worker tail-tolerance row (empty unless `slow=` given).
    slow: Vec<SlowWorkerRow>,
}

/// Tail latency through a 3-worker fleet with one seeded-slow worker,
/// measured healthy, unhedged, and hedged (hedging + latency breaker).
#[derive(Serialize)]
struct SlowWorkerRow {
    /// Injected collector delay on the slow worker, per batch.
    delay_ms: u64,
    workers: u64,
    /// Samples per pass (conns x requests).
    requests: u64,
    healthy_p50_ms: f64,
    healthy_p99_ms: f64,
    unhedged_p50_ms: f64,
    unhedged_p99_ms: f64,
    hedged_p50_ms: f64,
    hedged_p99_ms: f64,
    /// Hedges issued during the hedged pass.
    hedged_requests: u64,
    /// Issued hedges over total requests — the extra-load cost of the
    /// bounded tail (token bucket keeps it near `budget_ratio`).
    hedge_ratio: f64,
}

/// Predict latency on both sides of a mid-run model promotion, plus the
/// promote round-trip itself. A sample counts as `post` when its request
/// *started* after the promote response arrived; requests that straddle the
/// swap stay on the `pre` side.
#[derive(Serialize)]
struct SwapPhaseRow {
    conns: u64,
    total_requests: u64,
    /// Dropped connections or non-200 responses — must be zero for the
    /// zero-downtime claim to hold (asserted before the report is written).
    errors: u64,
    /// `POST /v1/models/promote` round-trip, including the synchronous
    /// registry reload and slot swap.
    swap_ms: f64,
    pre_requests: u64,
    pre_p50_ms: f64,
    pre_p99_ms: f64,
    post_requests: u64,
    post_p50_ms: f64,
    post_p99_ms: f64,
}

/// Aggregate throughput and affinity through a fleet front at one worker
/// count.
#[derive(Serialize)]
struct FleetScalingRow {
    workers: u64,
    conns: u64,
    total_requests: u64,
    wall_s: f64,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    errors: u64,
    /// Aggregate req/s divided by the 1-worker row's (1.0 for that row;
    /// 0.0 when no 1-worker row ran).
    speedup_vs_one_worker: f64,
    /// Affinity pass: repeated bodies from a small pool.
    affinity_requests: u64,
    affinity_hit_ratio: f64,
    per_worker: Vec<WorkerHitRow>,
}

/// Where the affinity pass's requests landed and how often they hit that
/// worker's response cache.
#[derive(Serialize)]
struct WorkerHitRow {
    worker: String,
    requests: u64,
    hits: u64,
    hit_ratio: f64,
}

/// End-to-end `/v1/route` job latency (submit to `done`) at one router
/// worker count.
#[derive(Serialize)]
struct RouteLatencyRow {
    route_threads: u64,
    jobs: u64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One-shot HTTP exchange on a fresh connection; returns (status, body).
fn http_once(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (0, String::new());
    };
    let _ = stream.set_nodelay(true);
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(raw.as_bytes()).is_err() {
        return (0, String::new());
    }
    let mut response = String::new();
    if BufReader::new(stream)
        .read_to_string(&mut response)
        .is_err()
    {
        return (0, String::new());
    }
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Crude scalar field extraction from a flat JSON object body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &body[body.find(&pat)? + pat.len()..];
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn json_status(body: &str) -> String {
    let pat = "\"status\":\"";
    body.find(pat)
        .map(|i| {
            body[i + pat.len()..]
                .chars()
                .take_while(|&c| c != '"')
                .collect()
        })
        .unwrap_or_default()
}

/// Submits one cheap route job pinned to `route_threads` workers and polls
/// it to completion, returning submit-to-done latency in milliseconds.
fn route_job_ms(addr: std::net::SocketAddr, route_threads: u64, seed: u64) -> Option<f64> {
    let body = format!(
        "{{\"restarts\":1,\"lbfgs_iters\":2,\"n_derive\":1,\"seed\":{seed},\
         \"route_threads\":{route_threads}}}"
    );
    let t0 = Instant::now();
    let (status, accepted) = http_once(addr, "POST", "/v1/route", &body);
    if status != 202 {
        return None;
    }
    let id = json_u64(&accepted, "id")?;
    let deadline = Instant::now() + std::time::Duration::from_secs(600);
    loop {
        let (status, record) = http_once(addr, "GET", &format!("/v1/jobs/{id}"), "");
        if status != 200 || Instant::now() > deadline {
            return None;
        }
        match json_status(&record).as_str() {
            "done" => return Some(t0.elapsed().as_secs_f64() * 1e3),
            "failed" => return None,
            _ => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
}

/// Sends one predict request on an open keep-alive connection and returns
/// `(status, cache_hit, fleet_worker)` once the body has been fully read
/// (`fleet_worker` is empty when not going through a fleet front). A status
/// of `0` means the connection dropped mid-response (possible while a
/// supervised collector restarts under injected faults) — the caller must
/// reconnect.
fn predict_once(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    body: &str,
) -> (u16, bool, String) {
    let raw = format!(
        "POST /v1/predict HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(raw.as_bytes()).is_err() {
        return (0, false, String::new());
    }

    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) | Err(_) => return (0, false, String::new()),
        Ok(_) => {}
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if status == 0 {
        return (0, false, String::new());
    }
    let mut content_length = 0usize;
    let mut cache_hit = false;
    let mut worker = String::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return (0, false, String::new()),
            Ok(_) => {}
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:").map(str::trim) {
            content_length = v.parse().expect("content-length");
        }
        if lower
            .strip_prefix("x-cache:")
            .is_some_and(|v| v.trim() == "hit")
        {
            cache_hit = true;
        }
        if let Some(v) = lower.strip_prefix("x-fleet-worker:").map(str::trim) {
            worker = v.to_string();
        }
    }
    let mut sink = vec![0u8; content_length];
    if reader.read_exact(&mut sink).is_err() {
        return (0, false, String::new());
    }
    (status, cache_hit, worker)
}

/// A predict body whose guidance values are a pure function of `nonce`, so
/// distinct nonces give distinct bodies (distinct response-cache keys and
/// distinct rendezvous ring positions) and equal nonces repeat exactly.
fn guidance_body(guidance_len: u64, nonce: u64) -> String {
    let n = nonce as f64;
    format!(
        "{{\"guidance\":[{}]}}",
        (0..guidance_len)
            .map(|i| format!("{:?}", ((i as f64).mul_add(0.37, n * 0.71)).sin() * 0.3))
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// One measurement pass through a fleet front: `conns` closed-loop client
/// threads each send `requests` keep-alive predicts, building body number
/// `r` on connection `c` with `make_body(c, r)`. Returns
/// `(latency_ms, ok, cache_hit, worker_id)` samples.
fn fleet_pass(
    addr: SocketAddr,
    conns: u64,
    requests: u64,
    make_body: &(dyn Fn(u64, u64) -> String + Sync),
) -> Vec<(f64, bool, bool, String)> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                s.spawn(move || {
                    let connect = || {
                        let stream = TcpStream::connect(addr).expect("connect front");
                        stream.set_nodelay(true).expect("nodelay");
                        let reader = BufReader::new(stream.try_clone().expect("clone"));
                        (stream, reader)
                    };
                    let (mut stream, mut reader) = connect();
                    let mut out = Vec::with_capacity(requests as usize);
                    for r in 0..requests {
                        let body = make_body(c, r);
                        let t = Instant::now();
                        let (status, hit, worker) = predict_once(&mut stream, &mut reader, &body);
                        if status == 0 {
                            (stream, reader) = connect();
                        }
                        out.push((t.elapsed().as_secs_f64() * 1e3, status == 200, hit, worker));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fleet client"))
            .collect()
    })
}

/// Blocks until the front's ring holds at least `want` workers (or the
/// timeout passes) and returns the count it last saw.
fn wait_for_workers(front: &FrontHandle, want: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    loop {
        let n = front.worker_count();
        if n >= want || Instant::now() > deadline {
            return n;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs the throughput and affinity passes against a front that already has
/// `workers` live workers behind it. `speedup_vs_one_worker` is filled in
/// later, once every row exists.
fn measure_fleet_row(
    front_addr: SocketAddr,
    workers: u64,
    conns: u64,
    requests: u64,
    guidance_len: u64,
) -> FleetScalingRow {
    // Throughput pass: a distinct body per request, so every response is a
    // real pass through some worker's batch collector, and the rendezvous
    // hash of fresh keys spreads the load across the whole ring.
    let t0 = Instant::now();
    let samples = fleet_pass(front_addr, conns, requests, &|c, r| {
        guidance_body(guidance_len, 1 + c * requests + r)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut lat: Vec<f64> = samples.iter().map(|&(ms, ..)| ms).collect();
    lat.sort_by(f64::total_cmp);
    let errors = samples.iter().filter(|&&(_, ok, ..)| !ok).count() as u64;
    let total = samples.len() as u64;

    // Affinity pass: a small pool of repeated bodies, disjoint from the
    // throughput pass's nonces so every hit below is earned by the ring
    // sending a repeat to the same worker, never by leftover cache state.
    let pool = (2 * workers).max(4);
    let aff_requests = requests.clamp(8, 32);
    let aff = fleet_pass(front_addr, conns, aff_requests, &|c, r| {
        guidance_body(guidance_len, 1_000_003 + (c + r) % pool)
    });
    let mut by_worker: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let (mut aff_hits, mut aff_total) = (0u64, 0u64);
    for (_, ok, hit, worker) in &aff {
        if !ok {
            continue;
        }
        aff_total += 1;
        let entry = by_worker.entry(worker.clone()).or_default();
        entry.0 += 1;
        if *hit {
            entry.1 += 1;
            aff_hits += 1;
        }
    }

    FleetScalingRow {
        workers,
        conns,
        total_requests: total,
        wall_s,
        req_per_s: total as f64 / wall_s,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        errors,
        speedup_vs_one_worker: 0.0,
        affinity_requests: aff_total,
        affinity_hit_ratio: aff_hits as f64 / aff_total.max(1) as f64,
        per_worker: by_worker
            .into_iter()
            .map(|(worker, (requests, hits))| WorkerHitRow {
                worker,
                requests,
                hits,
                hit_ratio: hits as f64 / requests.max(1) as f64,
            })
            .collect(),
    }
}

/// Stands up one in-process fleet per requested worker count (or one front
/// over an external coordinator) and measures each. Fleet workers run with
/// a stretched batch window and a single-item offered load per client, so
/// the row stays meaningful on single-core machines (see the module docs).
fn fleet_phase(
    worker_counts: &[u64],
    external: Option<&str>,
    gnn: &ThreeDGnn,
    cache_mb: u64,
    conns_per_worker: u64,
    requests: u64,
) -> Vec<FleetScalingRow> {
    let mut rows = Vec::new();
    if let Some(coordinator) = external {
        println!("fleet: measuring external coordinator at {coordinator} ...");
        let front = Front::bind(FrontConfig {
            addr: "127.0.0.1:0".to_string(),
            coordinator: coordinator.to_string(),
            refresh_ms: 100,
            // Guard machinery off: scaling rows measure the plain ring.
            hedge: af_guard::HedgeConfig {
                enabled: false,
                ..af_guard::HedgeConfig::default()
            },
            breaker_enabled: false,
            ..FrontConfig::default()
        })
        .expect("bind front");
        let n = wait_for_workers(&front, 1, Duration::from_secs(10)) as u64;
        assert!(
            n > 0,
            "no live serve workers behind coordinator {coordinator}"
        );
        let workers: af_fleet::protocol::WorkersResponse =
            af_fleet::get_json(coordinator, "/fleet/workers").expect("list workers");
        let guidance_len = workers
            .workers
            .iter()
            .map(|w| w.guidance_len)
            .max()
            .unwrap_or(0);
        rows.push(measure_fleet_row(
            front.addr(),
            n,
            conns_per_worker * n,
            requests,
            guidance_len,
        ));
        front.shutdown();
        front.join();
    } else {
        for &count in worker_counts {
            let n = count.max(1);
            println!("fleet: standing up {n} in-process worker(s) ...");
            let coord = Coordinator::bind(CoordinatorConfig {
                addr: "127.0.0.1:0".to_string(),
                lease_ms: 0,
                gen: None,
            })
            .expect("bind coordinator");
            let coordinator = coord.addr().to_string();
            let conns = conns_per_worker * n;
            let mut servers = Vec::new();
            let mut agents = Vec::new();
            let mut job_dirs = Vec::new();
            let mut guidance_len = 0u64;
            for i in 0..n {
                let bundle = ModelBundle::with_model("OTA1", "A", gnn.clone()).expect("bundle");
                guidance_len = bundle.guidance_len() as u64;
                let model_hash = bundle.model_hash.clone();
                // Each in-process server needs its own job dir: the default
                // is keyed by pid, which is shared here.
                let job_dir = std::env::temp_dir()
                    .join(format!("af-loadgen-fleet-{}-{n}-{i}", std::process::id()));
                let server = Server::bind(
                    bundle,
                    ServeConfig {
                        // Enough handlers that every pooled front
                        // connection can be served concurrently (handlers
                        // hold a keep-alive connection for its lifetime).
                        workers: conns as usize,
                        // Stretch the collector window well past the
                        // forward pass so replicas scale by overlapping
                        // waits, not by competing for the (possibly single)
                        // core.
                        batch_window_us: 12_000,
                        job_dir: Some(job_dir.clone()),
                        cache_mb,
                        ..ServeConfig::default()
                    },
                )
                .expect("bind fleet worker");
                agents.push(WorkerAgent::start(
                    &coordinator,
                    WorkerIdentity {
                        id: format!("lg{i}"),
                        addr: server.addr().to_string(),
                        caps: WorkerCaps {
                            serve: true,
                            gen: false,
                        },
                        model_hash,
                        guidance_len,
                    },
                ));
                servers.push(server);
                job_dirs.push(job_dir);
            }
            let front = Front::bind(FrontConfig {
                addr: "127.0.0.1:0".to_string(),
                coordinator: coordinator.clone(),
                refresh_ms: 50,
                // Guard machinery off: scaling rows measure the plain ring.
                hedge: af_guard::HedgeConfig {
                    enabled: false,
                    ..af_guard::HedgeConfig::default()
                },
                breaker_enabled: false,
                ..FrontConfig::default()
            })
            .expect("bind front");
            let seen = wait_for_workers(&front, n as usize, Duration::from_secs(10));
            assert_eq!(seen as u64, n, "fleet front only sees {seen}/{n} workers");
            rows.push(measure_fleet_row(
                front.addr(),
                n,
                conns,
                requests,
                guidance_len,
            ));
            front.shutdown();
            front.join();
            for agent in agents {
                agent.stop();
            }
            for server in servers {
                server.shutdown();
                server.join();
            }
            coord.shutdown();
            coord.join();
            for dir in job_dirs {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
    let base = rows
        .iter()
        .find(|r| r.workers == 1)
        .map(|r| r.req_per_s)
        .filter(|&r| r > 0.0);
    for row in &mut rows {
        row.speedup_vs_one_worker = base.map_or(0.0, |b| row.req_per_s / b);
    }
    rows
}

/// Stands up a registry-backed server with two registered model versions
/// and measures predict latency while `POST /v1/models/promote` hot-swaps
/// the resident model mid-run. Every request carries a distinct body
/// (cache miss), so each sample crosses the batch collector and whichever
/// model session is resident at that moment.
fn swap_phase(conns: u64, requests: u64, cache_mb: u64) -> SwapPhaseRow {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let pid = std::process::id();
    let reg_dir = std::env::temp_dir().join(format!("af-loadgen-swap-registry-{pid}"));
    let job_dir = std::env::temp_dir().join(format!("af-loadgen-swap-jobs-{pid}"));
    let _ = std::fs::remove_dir_all(&reg_dir);
    let _ = std::fs::remove_dir_all(&job_dir);

    // Two differently seeded untrained models: enough to give them distinct
    // content hashes, which is all a swap-latency measurement needs.
    let make = |seed: u64| {
        ThreeDGnn::new(&GnnConfig {
            hidden: 16,
            layers: 2,
            seed,
            ..GnnConfig::default()
        })
    };
    let incumbent = make(41);
    let mut registry = ModelRegistry::open(&reg_dir).expect("open registry");
    let h_old = registry
        .register(&incumbent, Lineage::default())
        .expect("register incumbent")
        .hash;
    let h_new = registry
        .register(&make(42), Lineage::default())
        .expect("register candidate")
        .hash;
    registry.promote(&h_old, false).expect("promote incumbent");
    drop(registry);

    let bundle = ModelBundle::with_model("OTA1", "A", incumbent).expect("bundle");
    let guidance_len = bundle.guidance_len() as u64;
    let server = Server::bind(
        bundle,
        ServeConfig {
            // Handlers pin keep-alive connections for their lifetime; the
            // +2 keeps handlers free for the control-plane promote and
            // `/v1/models` requests while every client connection is live.
            workers: conns as usize + 2,
            job_dir: Some(job_dir.clone()),
            cache_mb,
            registry: Some(reg_dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind swap server");
    let addr = server.addr();
    println!(
        "swap: {conns} conns x {requests} requests against {addr}, promoting {} mid-run ...",
        &h_new[..8]
    );

    let done = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|c| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let connect = || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let reader = BufReader::new(stream.try_clone().expect("clone"));
                    (stream, reader)
                };
                let (mut stream, mut reader) = connect();
                let mut out = Vec::with_capacity(requests as usize);
                for r in 0..requests {
                    let body = guidance_body(guidance_len, 1 + c * requests + r);
                    let started_s = t0.elapsed().as_secs_f64();
                    let t = Instant::now();
                    let (status, _, _) = predict_once(&mut stream, &mut reader, &body);
                    if status == 0 {
                        (stream, reader) = connect();
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    out.push((started_s, t.elapsed().as_secs_f64() * 1e3, status == 200));
                }
                out
            })
        })
        .collect();

    // Promote once a third of the offered load has been served, so both
    // sides of the swap carry a meaningful sample count.
    let total = conns * requests;
    while done.load(Ordering::Relaxed) < total / 3 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let t_swap = Instant::now();
    let (status, resp) = http_once(
        addr,
        "POST",
        "/v1/models/promote",
        &format!("{{\"hash\":\"{h_new}\"}}"),
    );
    let swap_ms = t_swap.elapsed().as_secs_f64() * 1e3;
    assert_eq!(status, 200, "promote under load failed: {resp}");
    let cut_s = t0.elapsed().as_secs_f64();

    let samples: Vec<(f64, f64, bool)> = clients
        .into_iter()
        .flat_map(|h| h.join().expect("swap client"))
        .collect();

    // The promote handler swaps synchronously, so by the time the load
    // drained the server must be resident on the candidate.
    let (status, models) = http_once(addr, "GET", "/v1/models", "");
    assert_eq!(status, 200, "GET /v1/models failed: {models}");
    assert!(
        models.contains(&format!("\"resident\":\"{h_new}\"")),
        "server did not swap to the promoted model: {models}"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&reg_dir);
    let _ = std::fs::remove_dir_all(&job_dir);

    let side = |pre: bool| -> Vec<f64> {
        let mut v: Vec<f64> = samples
            .iter()
            .filter(|&&(start, _, ok)| ok && (start < cut_s) == pre)
            .map(|&(_, ms, _)| ms)
            .collect();
        v.sort_by(f64::total_cmp);
        v
    };
    let (pre, post) = (side(true), side(false));
    let errors = samples.iter().filter(|&&(_, _, ok)| !ok).count() as u64;
    assert_eq!(errors, 0, "promotion under load dropped or failed requests");
    SwapPhaseRow {
        conns,
        total_requests: samples.len() as u64,
        errors,
        swap_ms,
        pre_requests: pre.len() as u64,
        pre_p50_ms: percentile(&pre, 0.50),
        pre_p99_ms: percentile(&pre, 0.99),
        post_requests: post.len() as u64,
        post_p50_ms: percentile(&post, 0.50),
        post_p99_ms: percentile(&post, 0.99),
    }
}

/// Stands up a 3-worker fleet where a seeded `serve.batch.delay` fault
/// makes exactly one worker's collector sleep `delay_ms` per batch, and
/// measures the same offered load three ways:
///
/// 1. **healthy** — fault disarmed, hedging and breakers off: the baseline.
/// 2. **unhedged** — fault armed, af-guard off: every request whose
///    rendezvous winner is the slow worker rides the full delay, so the
///    p99 tracks the injected latency.
/// 3. **hedged** — fault armed, hedging plus a latency breaker on: early
///    slow requests are rescued by a duplicate on the next-ranked worker,
///    the breaker trips on the slow-call signal and excludes the worker,
///    and the tail collapses back toward healthy.
///
/// Which worker is slow is picked by seed scan over the per-server
/// `fault_key`s, so the fault fires on every batch of one deterministic
/// worker and never on the others.
fn slow_phase(
    delay_ms: u64,
    gnn: &ThreeDGnn,
    cache_mb: u64,
    conns: u64,
    requests: u64,
) -> SlowWorkerRow {
    const WORKERS: u64 = 3;
    const PROB: f64 = 0.34;
    let fault_seed = (1u64..100_000)
        .find(|&s| {
            (0..WORKERS)
                .filter(|&k| af_fault::would_fire(s, "serve.batch.delay", k, PROB))
                .count()
                == 1
        })
        .expect("no seed selects exactly one slow worker");

    let coord = Coordinator::bind(CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        lease_ms: 0,
        gen: None,
    })
    .expect("bind coordinator");
    let coordinator = coord.addr().to_string();
    let mut servers = Vec::new();
    let mut agents = Vec::new();
    let mut job_dirs = Vec::new();
    let mut guidance_len = 0u64;
    for i in 0..WORKERS {
        let bundle = ModelBundle::with_model("OTA1", "A", gnn.clone()).expect("bundle");
        guidance_len = bundle.guidance_len() as u64;
        let model_hash = bundle.model_hash.clone();
        let job_dir =
            std::env::temp_dir().join(format!("af-loadgen-slow-{}-{i}", std::process::id()));
        let server = Server::bind(
            bundle,
            ServeConfig {
                workers: conns as usize,
                fault_key: i,
                job_dir: Some(job_dir.clone()),
                cache_mb,
                ..ServeConfig::default()
            },
        )
        .expect("bind slow-phase worker");
        agents.push(WorkerAgent::start(
            &coordinator,
            WorkerIdentity {
                id: format!("sw{i}"),
                addr: server.addr().to_string(),
                caps: WorkerCaps {
                    serve: true,
                    gen: false,
                },
                model_hash,
                guidance_len,
            },
        ));
        servers.push(server);
        job_dirs.push(job_dir);
    }

    // One measurement pass behind a freshly configured front. Nonce bases
    // are disjoint across passes so no pass is served from cache state the
    // previous one warmed.
    let mut pass_index = 0u64;
    let mut run_pass = |hedge_on: bool, breaker_on: bool| -> (Vec<f64>, u64) {
        let front = Front::bind(FrontConfig {
            addr: "127.0.0.1:0".to_string(),
            coordinator: coordinator.clone(),
            refresh_ms: 50,
            hedge: af_guard::HedgeConfig {
                enabled: hedge_on,
                delay_ms: (delay_ms / 4).max(5),
                seed: 7,
                ..af_guard::HedgeConfig::default()
            },
            breaker: af_guard::BreakerConfig {
                window: 8,
                min_samples: 2,
                slow_ms: (delay_ms / 2).max(5),
                // Stays open for the remainder of the pass: this phase
                // measures exclusion; healing is the smoke test's job.
                open_ms: 60_000,
                ..af_guard::BreakerConfig::default()
            },
            breaker_enabled: breaker_on,
            ..FrontConfig::default()
        })
        .expect("bind slow-phase front");
        let seen = wait_for_workers(&front, WORKERS as usize, Duration::from_secs(10));
        assert_eq!(seen as u64, WORKERS, "front only sees {seen}/{WORKERS}");
        let base = 5_000_000 + pass_index * conns * requests;
        pass_index += 1;
        let samples = fleet_pass(front.addr(), conns, requests, &|c, r| {
            guidance_body(guidance_len, base + c * requests + r)
        });
        let issued = front.hedge_stats().issued;
        front.shutdown();
        front.join();
        let mut lat: Vec<f64> = samples.iter().map(|&(ms, ..)| ms).collect();
        lat.sort_by(f64::total_cmp);
        (lat, issued)
    };

    println!("slow: healthy pass ({conns} conns x {requests} requests) ...");
    let (healthy, _) = run_pass(false, false);
    let spec = format!("serve.batch.delay:delay:{delay_ms}:{PROB}");
    af_fault::set_seed(fault_seed);
    af_fault::arm_spec(&spec).expect("arm slow-worker fault");
    println!("slow: unhedged pass under `{spec}` (seed {fault_seed}) ...");
    let (unhedged, _) = run_pass(false, false);
    println!("slow: hedged pass (hedging + latency breaker) ...");
    let (hedged, issued) = run_pass(true, true);
    af_fault::disarm_all();

    for agent in agents {
        agent.stop();
    }
    for server in servers {
        server.shutdown();
        server.join();
    }
    coord.shutdown();
    coord.join();
    for dir in job_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }

    SlowWorkerRow {
        delay_ms,
        workers: WORKERS,
        requests: conns * requests,
        healthy_p50_ms: percentile(&healthy, 0.50),
        healthy_p99_ms: percentile(&healthy, 0.99),
        unhedged_p50_ms: percentile(&unhedged, 0.50),
        unhedged_p99_ms: percentile(&unhedged, 0.99),
        hedged_p50_ms: percentile(&hedged, 0.50),
        hedged_p99_ms: percentile(&hedged, 0.99),
        hedged_requests: issued,
        hedge_ratio: issued as f64 / hedged.len().max(1) as f64,
    }
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let (default_conns, default_requests) = match scale {
        Scale::Quick => (4, 100),
        _ => (8, 500),
    };
    let conns = kv_num(&args, "conns", default_conns).max(1);
    let requests = kv_num(&args, "requests", default_requests).max(1);
    let cache_mb = cache_arg(&args, ServeConfig::default().cache_mb);
    let fault_spec = fault_arg(&args);

    // Serving throughput does not depend on trained weights, so an
    // untrained compact model keeps startup instant.
    let gnn = ThreeDGnn::new(&GnnConfig {
        hidden: 16,
        layers: 2,
        ..GnnConfig::default()
    });
    let bundle = ModelBundle::with_model("OTA1", "A", gnn.clone()).expect("bundle");
    let guidance_len = bundle.guidance_len();
    let job_dir = std::env::temp_dir().join(format!("af-loadgen-jobs-{}", std::process::id()));
    let handle = Server::bind(
        bundle,
        ServeConfig {
            workers: conns as usize,
            job_dir: Some(job_dir.clone()),
            cache_mb,
            ..ServeConfig::default()
        },
    )
    .expect("bind server");
    let addr = handle.addr();
    println!("loadgen: {conns} conns x {requests} requests against {addr} (scale {scale:?})");

    let body = format!(
        "{{\"guidance\":[{}]}}",
        (0..guidance_len)
            .map(|i| format!("{:?}", (i as f64).sin() * 0.3))
            .collect::<Vec<_>>()
            .join(",")
    );

    let t0 = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let connect = || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    // Requests are tiny; without nodelay, Nagle + delayed
                    // ACK put a ~40 ms floor under every keep-alive round
                    // trip and the latency numbers measure the kernel, not
                    // the server.
                    stream.set_nodelay(true).expect("nodelay");
                    let reader = BufReader::new(stream.try_clone().expect("clone"));
                    (stream, reader)
                };
                let (mut stream, mut reader) = connect();
                let mut samples = Vec::with_capacity(requests as usize);
                for _ in 0..requests {
                    let t = Instant::now();
                    let (status, hit, _) = predict_once(&mut stream, &mut reader, &body);
                    if status == 0 {
                        // Dropped connection (e.g. a collector restart under
                        // injected faults): reconnect and count the error.
                        (stream, reader) = connect();
                    }
                    samples.push((t.elapsed().as_secs_f64() * 1e3, status == 200, hit));
                }
                samples
            })
        })
        .collect();
    let samples: Vec<(f64, bool, bool)> = clients
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = samples.iter().map(|&(ms, _, _)| ms).collect();
    let errors = samples.iter().filter(|&&(_, ok, _)| !ok).count() as u64;
    let cache_hits = samples.iter().filter(|&&(_, _, hit)| hit).count() as u64;
    // Cold/warm latency split only makes sense over successful responses.
    let mut cold: Vec<f64> = samples
        .iter()
        .filter(|&&(_, ok, hit)| ok && !hit)
        .map(|&(ms, _, _)| ms)
        .collect();
    let mut warm: Vec<f64> = samples
        .iter()
        .filter(|&&(_, ok, hit)| ok && hit)
        .map(|&(ms, _, _)| ms)
        .collect();
    cold.sort_by(f64::total_cmp);
    warm.sort_by(f64::total_cmp);

    // --- Route-job latency per router worker count -----------------------
    // Cheap flow parameters (1 restart, 1 candidate) keep each job
    // dominated by the guided routing itself. Jobs run one at a time so a
    // row measures the router at exactly its `route_threads` setting.
    let route_thread_counts: Vec<u64> = kv_list(&args, "route_threads")
        .map(|l| l.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| match scale {
            Scale::Quick => vec![1, 2],
            _ => vec![1, 4, 8],
        });
    let jobs_per_row = kv_num(
        &args,
        "route_jobs",
        if matches!(scale, Scale::Quick) { 2 } else { 3 },
    );
    let mut route_rows = Vec::new();
    for &rt in &route_thread_counts {
        println!("route jobs: {jobs_per_row} at route_threads={rt} ...");
        let mut lat: Vec<f64> = (0..jobs_per_row)
            .filter_map(|j| route_job_ms(addr, rt, 99 + j))
            .collect();
        lat.sort_by(f64::total_cmp);
        route_rows.push(RouteLatencyRow {
            route_threads: rt,
            jobs: lat.len() as u64,
            p50_ms: percentile(&lat, 0.50),
            p99_ms: percentile(&lat, 0.99),
        });
    }

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&job_dir);

    // --- Fleet scaling phase (only with `workers=` or `coordinator=`) ----
    let worker_counts: Vec<u64> = kv_list(&args, "workers")
        .map(|l| l.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_default();
    let external_coord = args
        .iter()
        .find_map(|a| a.strip_prefix("coordinator=").map(str::to_string));
    let fleet_rows = if worker_counts.is_empty() && external_coord.is_none() {
        Vec::new()
    } else {
        let conns_per_worker = kv_num(&args, "fleet_conns_per", 2).max(1);
        let fleet_requests = kv_num(
            &args,
            "fleet_requests",
            if matches!(scale, Scale::Quick) {
                60
            } else {
                200
            },
        )
        .max(1);
        fleet_phase(
            &worker_counts,
            external_coord.as_deref(),
            &gnn,
            cache_mb,
            conns_per_worker,
            fleet_requests,
        )
    };

    // --- Promote-under-load phase (only with `swap=`) --------------------
    let swap_requests = kv_num(&args, "swap", 0);
    let swap_rows = if swap_requests == 0 {
        Vec::new()
    } else {
        vec![swap_phase(conns, swap_requests.max(30), cache_mb)]
    };

    // --- Slow-worker tail-tolerance phase (only with `slow=`) ------------
    let slow_ms = kv_num(&args, "slow", 0);
    let slow_rows = if slow_ms == 0 {
        Vec::new()
    } else {
        let slow_conns = kv_num(&args, "fleet_conns_per", 2).max(1) * 3;
        let slow_requests = kv_num(
            &args,
            "fleet_requests",
            if matches!(scale, Scale::Quick) {
                60
            } else {
                200
            },
        )
        .max(1);
        vec![slow_phase(
            slow_ms,
            &gnn,
            cache_mb,
            slow_conns,
            slow_requests,
        )]
    };

    latencies.sort_by(f64::total_cmp);
    let total = latencies.len() as u64;
    let cold_p50_ms = percentile(&cold, 0.50);
    let warm_p50_ms = percentile(&warm, 0.50);
    let report = LoadgenReport {
        scale: format!("{scale:?}"),
        conns,
        requests_per_conn: requests,
        total_requests: total,
        wall_s,
        req_per_s: total as f64 / wall_s,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(f64::NAN),
        cache_mb,
        cache_hits,
        cache_hit_ratio: cache_hits as f64 / total.max(1) as f64,
        cold_p50_ms,
        warm_p50_ms,
        warm_speedup: if warm.is_empty() || cold.is_empty() {
            1.0
        } else {
            cold_p50_ms / warm_p50_ms.max(1e-9)
        },
        fault_spec: fault_spec.unwrap_or_default(),
        errors,
        error_rate: errors as f64 / total.max(1) as f64,
        route: route_rows,
        fleet: fleet_rows,
        swap: swap_rows,
        slow: slow_rows,
    };
    println!(
        "{} requests in {:.2}s: {:.1} req/s, p50 {:.2} ms, p99 {:.2} ms",
        report.total_requests, report.wall_s, report.req_per_s, report.p50_ms, report.p99_ms
    );
    println!(
        "cache: {} hits / {} requests (ratio {:.2}), cold p50 {:.2} ms, warm p50 {:.2} ms",
        report.cache_hits, report.total_requests, report.cache_hit_ratio, cold_p50_ms, warm_p50_ms
    );
    for row in &report.route {
        println!(
            "route jobs @ {} thread(s): {} jobs, p50 {:.0} ms, p99 {:.0} ms",
            row.route_threads, row.jobs, row.p50_ms, row.p99_ms
        );
    }
    for row in &report.fleet {
        println!(
            "fleet @ {} worker(s), {} conns: {:.1} req/s ({:.2}x vs 1 worker), p50 {:.2} ms, \
             p99 {:.2} ms, affinity hit ratio {:.2} over {} worker(s)",
            row.workers,
            row.conns,
            row.req_per_s,
            row.speedup_vs_one_worker,
            row.p50_ms,
            row.p99_ms,
            row.affinity_hit_ratio,
            row.per_worker.len()
        );
    }
    for row in &report.swap {
        println!(
            "swap @ {} conns: promote round-trip {:.2} ms, pre p50 {:.2} ms / p99 {:.2} ms \
             ({} reqs), post p50 {:.2} ms / p99 {:.2} ms ({} reqs), {} errors",
            row.conns,
            row.swap_ms,
            row.pre_p50_ms,
            row.pre_p99_ms,
            row.pre_requests,
            row.post_p50_ms,
            row.post_p99_ms,
            row.post_requests,
            row.errors
        );
    }
    for row in &report.slow {
        println!(
            "slow worker @ {} ms delay: healthy p99 {:.2} ms, unhedged p99 {:.2} ms, \
             hedged p99 {:.2} ms ({} hedges over {} requests, ratio {:.3})",
            row.delay_ms,
            row.healthy_p99_ms,
            row.unhedged_p99_ms,
            row.hedged_p99_ms,
            row.hedged_requests,
            row.requests,
            row.hedge_ratio
        );
    }
    if !report.fault_spec.is_empty() {
        println!(
            "faults: `{}` -> {} errors / {} requests (rate {:.4})",
            report.fault_spec, report.errors, report.total_requests, report.error_rate
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
