//! Regenerates **Table 1**: benchmark circuit information.
//!
//! Run: `cargo run -p af-bench --bin table1`

use af_netlist::{benchmarks, DeviceKind};

fn main() {
    println!("Table 1: Benchmark circuits information.");
    println!(
        "{:<12}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "Benchmark", "#PMOS", "#NMOS", "#Cap", "#Res", "#Total"
    );
    for c in benchmarks::all() {
        println!(
            "{:<12}{:>8}{:>8}{:>8}{:>8}{:>8}",
            c.name(),
            c.count_kind(DeviceKind::Pmos),
            c.count_kind(DeviceKind::Nmos),
            c.count_kind(DeviceKind::Capacitor),
            c.count_kind(DeviceKind::Resistor),
            c.total_modules()
        );
    }
}
