//! Regenerates **Table 1**: benchmark circuit information.
//!
//! Run: `cargo run -p af-bench --bin table1`
//!
//! Accepts `obs=<path>` to stream observability events to a JSONL file
//! (uniform with the other bench binaries; this one records no spans).

use af_bench::obs_arg;
use af_netlist::{benchmarks, DeviceKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    println!("Table 1: Benchmark circuits information.");
    println!(
        "{:<12}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "Benchmark", "#PMOS", "#NMOS", "#Cap", "#Res", "#Total"
    );
    for c in benchmarks::all() {
        println!(
            "{:<12}{:>8}{:>8}{:>8}{:>8}{:>8}",
            c.name(),
            c.count_kind(DeviceKind::Pmos),
            c.count_kind(DeviceKind::Nmos),
            c.count_kind(DeviceKind::Capacitor),
            c.count_kind(DeviceKind::Resistor),
            c.total_modules()
        );
    }
}
