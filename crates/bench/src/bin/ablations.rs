//! Ablation studies for the design choices called out in DESIGN.md §5:
//!
//! 1. cost-aware distance vs plain Euclidean (guidance fixed to 1 in
//!    `d_cost`),
//! 2. RBF distance expansion vs raw distance,
//! 3. heterogeneous graph vs homogeneous (no module nodes),
//! 4. pool-assisted relaxation vs plain multistart,
//! 5. non-uniform per-AP guidance vs uniform 2-D map on the same router.
//!
//! The four model variants train concurrently on the `afrt` worker pool
//! (each training is deterministic given its config, so the fan-out does not
//! change any number).
//!
//! Run: `cargo run -p af-bench --bin ablations --release -- [quick|full]
//!       [threads=N] [route_threads=N]`

use af_bench::{obs_arg, route_threads_arg, threads_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::{Router, RouterConfig, RoutingGuidance};
use af_sim::{simulate, SimConfig};
use af_tech::Technology;
use analogfold::{
    generate_dataset, holdout_mse, relax, summarize, DatasetConfig, GnnConfig, HeteroGraph,
    Potential, RelaxConfig, Sample, ThreeDGnn, METRIC_NAMES,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let runtime = afrt::Runtime::with_threads(threads_arg(&args));
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);

    let n_total = (scale.samples() * 2).max(16);
    eprintln!("generating {n_total} samples ...");
    let dataset = generate_dataset(
        &circuit,
        &placement,
        &tech,
        &graph,
        &DatasetConfig {
            samples: n_total,
            ..DatasetConfig::default()
        },
    )
    .expect("dataset");
    let split = n_total * 3 / 4;
    let train = analogfold::Dataset {
        samples: dataset.samples[..split].to_vec(),
    };
    let test = &dataset.samples[split..];

    println!(
        "Ablation study on OTA1-A (scale {scale:?}; {split} train / {} test)\n",
        test.len()
    );

    // dataset diagnostics: how much does sampled guidance move each metric?
    let summary = summarize(&dataset);
    println!("{:<16}{:>12}{:>14}", "metric", "cv", "corr(|C|)");
    for (i, name) in METRIC_NAMES.iter().enumerate() {
        println!(
            "{name:<16}{:>12.4}{:>14.3}",
            summary.cv[i], summary.guidance_correlation[i]
        );
    }
    println!();

    // 1-3: model ablations, judged by held-out prediction MSE. All four
    // variants train concurrently.
    let variants: [(&str, GnnConfig); 4] = [
        (
            "full 3DGNN (cost-aware + RBF + hetero)",
            GnnConfig {
                epochs: scale.epochs(),
                ..GnnConfig::default()
            },
        ),
        (
            "raw distance (no RBF expansion)",
            GnnConfig {
                epochs: scale.epochs(),
                use_rbf: false,
                ..GnnConfig::default()
            },
        ),
        (
            "homogeneous graph (no module nodes)",
            GnnConfig {
                epochs: scale.epochs(),
                use_modules: false,
                ..GnnConfig::default()
            },
        ),
        (
            // plain Euclidean: train and evaluate with guidance forced
            // neutral so d_cost degenerates; the model can no longer use C
            "plain Euclidean distance (guidance-blind)",
            GnnConfig {
                epochs: scale.epochs(),
                ..GnnConfig::default()
            },
        ),
    ];
    // guidance-blind training set: every sample's guidance replaced by the
    // neutral vector (used by variant 3 only)
    let blind = analogfold::Dataset {
        samples: train
            .samples
            .iter()
            .map(|s| Sample {
                guidance: vec![1.0; s.guidance.len()],
                performance: s.performance,
            })
            .collect(),
    };
    eprintln!(
        "training {} model variants on {} worker(s) ...",
        variants.len(),
        runtime.threads()
    );
    let trained: Vec<(f64, ThreeDGnn)> = runtime
        .par_map(&variants, |i, (_, cfg)| {
            let mut gnn = ThreeDGnn::new(cfg);
            let data = if i == 3 { &blind } else { &train };
            gnn.train(&graph, data, cfg);
            let mse = holdout_mse(&gnn, &graph, test);
            (mse, gnn)
        })
        .expect("variant fan-out");
    println!("{:<44}{:>16}", "model variant", "held-out MSE");
    for ((name, _), (mse, _)) in variants.iter().zip(&trained) {
        println!("{name:<44}{mse:>16.4}");
    }
    let gnn = &trained[0].1;

    // 4: pool-assisted relaxation vs plain multistart.
    let potential = Potential::new(gnn, &graph);
    let pooled = relax(
        &potential,
        &RelaxConfig {
            restarts: scale.restarts() * 2,
            p_relax: 0.6,
            n_derive: 1,
            ..RelaxConfig::default()
        },
    );
    let plain = relax(
        &potential,
        &RelaxConfig {
            restarts: scale.restarts() * 2,
            p_relax: 0.0,
            n_derive: 1,
            ..RelaxConfig::default()
        },
    );
    println!("\n{:<44}{:>16}", "relaxation", "best potential");
    println!(
        "{:<44}{:>16.5}",
        "pool-assisted noisy restarts", pooled[0].potential
    );
    println!("{:<44}{:>16.5}", "plain multistart", plain[0].potential);

    // 5: non-uniform per-AP guidance vs a uniform 2-D map with the same
    // average cost applied to the same router.
    let sim_cfg = SimConfig::default();
    let best = &pooled[0];
    let field = RoutingGuidance::NonUniform(analogfold::guidance_field(&graph, &best.guidance));
    let router_cfg = RouterConfig::builder()
        .threads(route_threads_arg(&args))
        .build()
        .expect("valid router config");
    let nu_layout = Router::new(router_cfg.clone())
        .unwrap()
        .route(&circuit, &placement, &tech, &field)
        .expect("non-uniform route");
    let nu_px = af_extract::extract(&circuit, &tech, &nu_layout);
    let nu_perf = simulate(&circuit, Some(&nu_px), &sim_cfg).expect("sim");

    let mean_c: f64 = best.guidance.iter().sum::<f64>() / best.guidance.len() as f64;
    let die = placement.die();
    let mut map =
        af_route::GuidanceMap2D::new(8, 8, (die.lo().x, die.lo().y), (die.width(), die.height()));
    for net in circuit.guided_nets() {
        map.set_net(net, vec![mean_c; 64]);
    }
    let uni_layout = Router::new(router_cfg)
        .unwrap()
        .route(&circuit, &placement, &tech, &RoutingGuidance::Map(map))
        .expect("uniform route");
    let uni_px = af_extract::extract(&circuit, &tech, &uni_layout);
    let uni_perf = simulate(&circuit, Some(&uni_px), &sim_cfg).expect("sim");

    println!(
        "\n{:<28}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "guidance applied", "offset(uV)", "cmrr(dB)", "bw(MHz)", "gain(dB)", "noise(uV)"
    );
    for (name, p) in [
        ("non-uniform per-AP", nu_perf),
        ("uniform 2-D map", uni_perf),
    ] {
        println!(
            "{name:<28}{:>12.1}{:>12.2}{:>12.2}{:>12.2}{:>12.1}",
            p.offset_uv, p.cmrr_db, p.bandwidth_mhz, p.dc_gain_db, p.noise_uvrms
        );
    }
}
