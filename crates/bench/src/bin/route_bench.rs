//! Detailed-router throughput: negotiated-congestion rounds under the
//! session API, across open-list engines and worker counts.
//!
//! Three configurations are measured on each benchmark design:
//!
//! * **baseline** — the pre-session-API cost model: binary-heap open list,
//!   no bidirectional search, heuristic floored at `min_guidance`
//!   (`guidance_aware_h = false`), one thread. This is what the seed
//!   router's inner loop did per expansion.
//! * **optimized, 1 thread** — the default [`af_route::RouterConfig`]:
//!   bucketed open list, bidirectional two-pin search, guidance-aware
//!   heuristic. The gap to baseline is the *algorithmic* win.
//! * **optimized, N threads** — the same config at each `threads=` value;
//!   the gap to 1 thread is the *parallel* win (bounded by the host's
//!   cores — on a single-core runner it is ~1.0x by construction).
//!
//! Every run also verifies the routing contracts and exits non-zero on
//! violation, which the CI `route-bench-smoke` step relies on:
//!
//! * **determinism** — the optimized layout is bit-identical at every
//!   measured thread count;
//! * **engine parity** — bucket and heap open lists both converge to a
//!   clean layout on the clean designs, with total wirelength within 20%
//!   (the cost contract itself is proptested in `af-route`);
//! * **no regression** — the optimized router leaves no more conflicts
//!   than the baseline on any design.
//!
//! Run: `cargo run -p af-bench --bin route_bench --release --
//!       [quick|full|smoke] [threads=1,4,8] [obs=<path>]`

use std::time::Instant;

use af_bench::{kv_list, obs_arg, Scale};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_route::{OpenListKind, RoutedLayout, Router, RouterConfig, RoutingGuidance};
use af_tech::Technology;
use serde::Serialize;

#[derive(Serialize)]
struct DesignRow {
    design: String,
    nets: usize,
    /// Baseline (seed-equivalent) configuration, 1 thread.
    baseline_s: f64,
    baseline_nets_per_sec: f64,
    baseline_rounds: u32,
    baseline_conflicts: u32,
    /// Optimized configuration per thread count, in `threads` order.
    optimized: Vec<ThreadRow>,
    /// baseline_s / optimized@1-thread: the algorithmic speedup.
    speedup_vs_baseline: f64,
}

#[derive(Serialize)]
struct ThreadRow {
    threads: usize,
    route_s: f64,
    nets_per_sec: f64,
    rounds: u32,
    conflicts: u32,
    /// optimized@1-thread time over this row's time (parallel scaling).
    speedup_vs_t1: f64,
}

#[derive(Serialize)]
struct RouteBenchReport {
    mode: String,
    threads: Vec<usize>,
    rows: Vec<DesignRow>,
    /// Geometric mean of per-design `speedup_vs_baseline`.
    geomean_speedup_vs_baseline: f64,
    determinism_ok: bool,
    parity_ok: bool,
    checks_failed: Vec<String>,
}

fn baseline_config() -> RouterConfig {
    RouterConfig::builder()
        .open_list(OpenListKind::Heap)
        .bidirectional(false)
        .guidance_aware_h(false)
        .threads(1)
        .build()
        .expect("baseline config is valid")
}

fn optimized_config(threads: usize) -> RouterConfig {
    RouterConfig::builder()
        .threads(threads)
        .build()
        .expect("optimized config is valid")
}

/// Routes a design and returns the layout with measured wall time (the
/// layout's own `runtime_s` excludes session setup; the outer clock is the
/// honest number for throughput).
fn timed_route(cfg: RouterConfig, design: &str) -> (RoutedLayout, f64) {
    let circuit = benchmarks::by_name(design).expect("known design");
    let placement = place(&circuit, PlacementVariant::A);
    let tech = Technology::nm40();
    let router = Router::new(cfg).expect("valid config");
    let t0 = Instant::now();
    let layout = router
        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
        .expect("bundled designs route");
    (layout, t0.elapsed().as_secs_f64())
}

/// Layout equality that ignores the wall-clock field.
fn same_layout(a: &RoutedLayout, b: &RoutedLayout) -> bool {
    a.nets == b.nets && a.conflicts == b.conflicts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _obs = obs_arg(&args);
    let smoke = args.iter().any(|a| a == "smoke");
    let scale = args
        .iter()
        .find_map(|a| Scale::parse(a))
        .unwrap_or(Scale::Quick);
    let mode = if smoke {
        "smoke".to_string()
    } else {
        format!("{scale:?}").to_lowercase()
    };
    let designs: Vec<&str> = if smoke {
        vec!["OTA1"]
    } else {
        match scale {
            Scale::Quick => vec!["OTA1", "OTA2"],
            _ => vec!["OTA1", "OTA2", "OTA3", "OTA4"],
        }
    };
    let thread_counts: Vec<usize> = kv_list(&args, "threads")
        .map(|l| l.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 4, 8]);

    let mut checks: Vec<String> = Vec::new();
    let mut determinism_ok = true;
    let mut parity_ok = true;
    let mut rows = Vec::new();

    for design in &designs {
        eprintln!("{design}: baseline (heap, unidirectional, floored h) ...");
        let (base_layout, baseline_s) = timed_route(baseline_config(), design);
        let nets = base_layout.nets.len();

        let mut optimized = Vec::new();
        let mut reference: Option<RoutedLayout> = None;
        let mut t1_s = f64::NAN;
        for &threads in &thread_counts {
            eprintln!("{design}: optimized on {threads} thread(s) ...");
            let (layout, route_s) = timed_route(optimized_config(threads), design);
            match &reference {
                None => {
                    t1_s = route_s;
                    reference = Some(layout.clone());
                }
                Some(want) if !same_layout(want, &layout) => {
                    determinism_ok = false;
                    checks.push(format!(
                        "{design}: layout differs at {threads} thread(s) vs {} thread(s)",
                        thread_counts[0]
                    ));
                }
                _ => {}
            }
            if layout.conflicts > base_layout.conflicts {
                checks.push(format!(
                    "{design}: optimized router leaves {} conflicts vs baseline {}",
                    layout.conflicts, base_layout.conflicts
                ));
            }
            optimized.push(ThreadRow {
                threads,
                route_s,
                nets_per_sec: layout.nets.len() as f64 / route_s.max(1e-12),
                rounds: layout.iterations,
                conflicts: layout.conflicts,
                speedup_vs_t1: t1_s / route_s.max(1e-12),
            });
        }

        // Engine parity at one thread: heap open list with the otherwise
        // optimized configuration.
        let heap_cfg = RouterConfig::builder()
            .open_list(OpenListKind::Heap)
            .threads(1)
            .build()
            .expect("heap config is valid");
        let (heap_layout, _) = timed_route(heap_cfg, design);
        let bucket_layout = reference.as_ref().expect("at least one thread count");
        let (wb, wh) = (
            bucket_layout.total_wirelength() as f64,
            heap_layout.total_wirelength() as f64,
        );
        if heap_layout.conflicts != bucket_layout.conflicts || (wb - wh).abs() > 0.2 * wb.max(1.0) {
            parity_ok = false;
            checks.push(format!(
                "{design}: engine parity violated (bucket {wb} dbu/{} conflicts vs heap {wh} \
                 dbu/{} conflicts)",
                bucket_layout.conflicts, heap_layout.conflicts
            ));
        }

        let speedup_vs_baseline = baseline_s / t1_s.max(1e-12);
        rows.push(DesignRow {
            design: design.to_string(),
            nets,
            baseline_s,
            baseline_nets_per_sec: nets as f64 / baseline_s.max(1e-12),
            baseline_rounds: base_layout.iterations,
            baseline_conflicts: base_layout.conflicts,
            optimized,
            speedup_vs_baseline,
        });
    }

    let geomean = rows
        .iter()
        .map(|r| r.speedup_vs_baseline.max(1e-12).ln())
        .sum::<f64>()
        / rows.len().max(1) as f64;
    let geomean_speedup_vs_baseline = geomean.exp();

    for r in &rows {
        println!(
            "{}: baseline {:.2}s ({:.1} nets/s, {} rounds) -> optimized@1t {:.2}s \
             (speedup {:.2}x)",
            r.design,
            r.baseline_s,
            r.baseline_nets_per_sec,
            r.baseline_rounds,
            r.optimized.first().map_or(f64::NAN, |o| o.route_s),
            r.speedup_vs_baseline
        );
        for o in &r.optimized {
            println!(
                "  {} thread(s): {:.2}s  {:.1} nets/s  {} rounds  {} conflicts  \
                 {:.2}x vs 1t",
                o.threads, o.route_s, o.nets_per_sec, o.rounds, o.conflicts, o.speedup_vs_t1
            );
        }
    }
    println!(
        "geomean speedup vs baseline {geomean_speedup_vs_baseline:.2}x  determinism {}  \
         parity {}",
        if determinism_ok { "ok" } else { "FAILED" },
        if parity_ok { "ok" } else { "FAILED" },
    );

    let report = RouteBenchReport {
        mode,
        threads: thread_counts,
        rows,
        geomean_speedup_vs_baseline,
        determinism_ok,
        parity_ok,
        checks_failed: checks.clone(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_route.json", &json).expect("write BENCH_route.json");
    println!("wrote BENCH_route.json");

    if !checks.is_empty() {
        for c in &checks {
            eprintln!("CHECK FAILED: {c}");
        }
        std::process::exit(1);
    }
}
