//! A* maze search over the routing grid.
//!
//! Two interchangeable open-list engines back the search: a bucketed queue
//! keyed on quantized f-cost (the default — O(1) push/pop on the shallow
//! cost distributions maze routing produces) and the classic `BinaryHeap`
//! (kept as the correctness oracle for the bucket queue's property tests).
//! Both run the same *deferred-termination* loop: instead of stopping at the
//! first target pop, the search records the best target cost `μ` seen so far,
//! prunes every frontier entry with `f ≥ μ`, and stops once the open list's
//! lower bound can no longer beat `μ`. Under an admissible heuristic this is
//! exact for *any* pop order, which is what makes the two engines (and the
//! bidirectional variant below) agree on path cost.
//!
//! For plain two-pin connections with a weak heuristic the search switches to
//! bidirectional Dijkstra, meeting in the middle; for guided nets the
//! heuristic is scaled by the net's *minimum* guidance multiplier
//! ([`crate::guidance::RoutingGuidance::min_multiplier`]) instead of the
//! global floor, which sharpens the lower bound and prunes hopeless frontier
//! nodes much earlier.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use af_geom::{Axis, Dir3, GridPoint};
use af_netlist::NetId;

use crate::guidance::RoutingGuidance;
use crate::router::{OpenListKind, RouterConfig};
use crate::view::GridView;

/// Bucket width in cost units. Steps cost at least `min_guidance` (0.25 by
/// default) so a 0.25-wide bucket rarely holds more than a handful of
/// entries, keeping within-bucket scans trivial.
const BUCKET_WIDTH: f64 = 0.25;
/// Clamp for the bucket index; everything costlier lands in one overflow
/// bucket (still correct — the bucket bound stays a valid lower bound).
const MAX_BUCKET: usize = 1 << 20;

/// Bucketed open list keyed on quantized f-cost.
///
/// Pops are LIFO within a bucket, which is deterministic because pushes are
/// (the expansion order is fixed by the search loop). The cursor only moves
/// forward while popping and is pulled back by a push into a cheaper bucket
/// (re-opened labels), so `pop` is amortized O(1).
#[derive(Debug, Default)]
pub(crate) struct BucketQueue {
    buckets: Vec<Vec<(f64, f64, u32)>>,
    /// Buckets used since the last clear — makes `clear` O(touched).
    touched: Vec<u32>,
    cur: usize,
    len: usize,
}

impl BucketQueue {
    fn clear(&mut self) {
        for &t in &self.touched {
            self.buckets[t as usize].clear();
        }
        self.touched.clear();
        self.cur = 0;
        self.len = 0;
    }

    fn index(f: f64) -> usize {
        // NaN maps to 0 via the `as` cast; validate() keeps costs finite.
        ((f / BUCKET_WIDTH) as usize).min(MAX_BUCKET)
    }

    fn push(&mut self, f: f64, g: f64, node: usize) {
        let i = Self::index(f);
        if i >= self.buckets.len() {
            self.buckets.resize_with(i + 1, Vec::new);
        }
        if self.buckets[i].is_empty() {
            self.touched.push(i as u32);
        }
        self.buckets[i].push((f, g, node as u32));
        if i < self.cur {
            self.cur = i;
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(f64, f64, usize)> {
        while self.cur < self.buckets.len() {
            if let Some((f, g, n)) = self.buckets[self.cur].pop() {
                self.len -= 1;
                return Some((f, g, n as usize));
            }
            self.cur += 1;
        }
        None
    }

    /// Lower bound on every remaining f-cost (∞ when empty). Quantized, so
    /// it may undershoot the true minimum by up to one bucket width — safe
    /// for termination tests, which only need a valid lower bound.
    fn min_bound(&mut self) -> f64 {
        if self.len == 0 {
            return f64::INFINITY;
        }
        while self.cur < self.buckets.len() && self.buckets[self.cur].is_empty() {
            self.cur += 1;
        }
        self.cur as f64 * BUCKET_WIDTH
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    f: f64,
    g: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on f, tie-break larger g first (deeper nodes explored first)
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.g.partial_cmp(&other.g).unwrap_or(Ordering::Equal))
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One open list, engine-selected by [`RouterConfig::open_list`].
enum Open<'q> {
    Bucket(&'q mut BucketQueue),
    Heap(&'q mut BinaryHeap<HeapEntry>),
}

impl Open<'_> {
    fn clear(&mut self) {
        match self {
            Open::Bucket(b) => b.clear(),
            Open::Heap(h) => h.clear(),
        }
    }

    fn push(&mut self, f: f64, g: f64, node: usize) {
        match self {
            Open::Bucket(b) => b.push(f, g, node),
            Open::Heap(h) => h.push(HeapEntry { f, g, node }),
        }
    }

    fn pop(&mut self) -> Option<(f64, f64, usize)> {
        match self {
            Open::Bucket(b) => b.pop(),
            Open::Heap(h) => h.pop().map(|e| (e.f, e.g, e.node)),
        }
    }

    /// Lower bound on every remaining f-cost (∞ when empty).
    fn min_bound(&mut self) -> f64 {
        match self {
            Open::Bucket(b) => b.min_bound(),
            Open::Heap(h) => h.peek().map_or(f64::INFINITY, |e| e.f),
        }
    }
}

/// Reusable search scratch space (stamped so clearing is O(1) per search).
///
/// Holds forward *and* backward label arrays plus both open-list engines, so
/// one buffer serves unidirectional and bidirectional searches without
/// reallocating. In a parallel round each worker owns one of these
/// (thread-local), never sharing search state across tasks.
#[derive(Default)]
pub(crate) struct SearchBuffers {
    dist: Vec<f64>,
    came: Vec<u32>,
    stamp: Vec<u32>,
    target_stamp: Vec<u32>,
    // Backward-search labels (bidirectional engine).
    bdist: Vec<f64>,
    bcame: Vec<u32>,
    bstamp: Vec<u32>,
    cur: u32,
    fwd_bucket: BucketQueue,
    bwd_bucket: BucketQueue,
    fwd_heap: BinaryHeap<HeapEntry>,
    bwd_heap: BinaryHeap<HeapEntry>,
}

impl SearchBuffers {
    pub(crate) fn ensure(&mut self, len: usize) {
        if self.dist.len() < len {
            self.dist.resize(len, 0.0);
            self.came.resize(len, u32::MAX);
            self.stamp.resize(len, 0);
            self.target_stamp.resize(len, 0);
            self.bdist.resize(len, 0.0);
            self.bcame.resize(len, u32::MAX);
            self.bstamp.resize(len, 0);
        }
    }

    fn next_gen(&mut self) {
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.target_stamp.iter_mut().for_each(|s| *s = 0);
            self.bstamp.iter_mut().for_each(|s| *s = 0);
            self.cur = 1;
        }
    }
}

/// Outcome of one A* run: the path from a source to a target, source first.
pub(crate) struct FoundPath {
    pub nodes: Vec<usize>,
    /// Total path cost (useful to diagnostics and cost-parity tests).
    #[allow(dead_code)]
    pub cost: f64,
}

/// Per-step parameters captured once per net route.
pub(crate) struct StepCost<'a, G: GridView> {
    pub grid: &'a G,
    pub guidance: &'a RoutingGuidance,
    /// Reciprocal of [`RoutingGuidance::scale_floor`] for `net`: multiplies
    /// every guidance lookup so the net's cheapest multiplier lands on 1.0
    /// (scale-free guidance — only relative preferences cost anything).
    pub guidance_norm: f64,
    pub cfg: &'a RouterConfig,
    pub net: NetId,
    /// Partner of a symmetric pair (its resources look like our own), and
    /// whether passability must also hold at the mirror node.
    pub mirror_net: Option<NetId>,
    pub enforce_mirror: bool,
}

impl<G: GridView> StepCost<'_, G> {
    /// Whether the search may stand on `idx` at all.
    fn passable(&self, idx: usize) -> bool {
        let grid = self.grid;
        if grid.is_blocked(idx) {
            return false;
        }
        if let Some(owner) = grid.owner(idx) {
            if owner != self.net && Some(owner) != self.mirror_net && grid.is_pin(idx) {
                return false; // never touch another net's pin
            }
        }
        if self.enforce_mirror {
            let g = grid.dim().from_flat(idx);
            // Mirrored routing is confined to the net's own (left) half-plane
            // so a route can never collide with its own mirror image.
            if g.x >= grid.axis_col() {
                return false;
            }
            match grid.mirror(g) {
                None => return false,
                Some(m) => {
                    let midx = grid.dim().flat_index(m);
                    if grid.is_blocked(midx) {
                        return false;
                    }
                    if let Some(owner) = grid.owner(midx) {
                        if owner != self.net && Some(owner) != self.mirror_net && grid.is_pin(midx)
                        {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Cost of stepping onto `idx` along `axis`.
    fn enter_cost(&self, idx: usize, axis: Axis, layer: u8) -> f64 {
        let grid = self.grid;
        let cfg = self.cfg;
        let pos = grid.node_dbu(idx);
        let mut cost = match axis {
            Axis::Z => cfg.via_cost,
            a => {
                let preferred = grid_preferred(layer, a);
                if preferred {
                    1.0
                } else {
                    cfg.wrong_dir_mult
                }
            }
        };
        cost *= (self.guidance.multiplier(self.net, pos, axis) * self.guidance_norm)
            .max(cfg.min_guidance);
        // Congestion negotiation. History applies even on currently-free
        // nodes (PathFinder): a node that keeps being contested must repel
        // every net, not just the late-comer.
        let mut penalty = f64::from(grid.history(idx));
        if let Some(owner) = grid.owner(idx) {
            if owner == self.net || Some(owner) == self.mirror_net {
                cost *= cfg.reuse_discount;
                penalty = 0.0;
            } else {
                penalty += cfg.present_cost;
            }
        }
        if self.enforce_mirror {
            let g = grid.dim().from_flat(idx);
            if let Some(m) = grid.mirror(g) {
                let midx = grid.dim().flat_index(m);
                if let Some(owner) = grid.owner(midx) {
                    if owner != self.net && Some(owner) != self.mirror_net {
                        penalty += cfg.present_cost + f64::from(grid.history(midx));
                    }
                }
            }
        }
        cost + penalty
    }
}

/// Preferred-direction convention: even layers (M1, M3) run horizontally,
/// odd layers vertically — matching `Technology::nm40`.
fn grid_preferred(layer: u8, axis: Axis) -> bool {
    match axis {
        Axis::X => layer.is_multiple_of(2),
        Axis::Y => !layer.is_multiple_of(2),
        Axis::Z => true,
    }
}

/// Heuristic distance scale.
///
/// Legacy mode uses the global guidance floor. Guidance-aware mode exploits
/// the per-net normalization ([`RoutingGuidance::scale_floor`]): after
/// dividing by the net's minimum, every multiplier is ≥ 1.0, so unit scale
/// is a valid (and much sharper) lower bound that lets the search prune
/// frontier nodes whose optimistic completion already exceeds the best
/// known target cost.
fn heuristic_scale(cfg: &RouterConfig) -> f64 {
    let base = if cfg.guidance_aware_h {
        1.0
    } else {
        cfg.min_guidance
    };
    0.999 * base.min(1.0)
}

/// Runs a maze search from `sources` (cost 0) to any node in `targets`.
///
/// Returns the path (source first, target last) or `None` when unreachable.
/// Dispatches to bidirectional Dijkstra for plain two-pin connections whose
/// heuristic is too weak to steer a one-sided search.
pub(crate) fn search<G: GridView>(
    step: &StepCost<'_, G>,
    sources: &[usize],
    targets: &[usize],
    buffers: &mut SearchBuffers,
) -> Option<FoundPath> {
    let h_scale = heuristic_scale(step.cfg);
    if step.cfg.bidirectional && sources.len() == 1 && targets.len() == 1 && h_scale < 0.5 {
        return search_bidir(step, sources[0], targets[0], buffers);
    }
    search_uni(step, sources, targets, buffers, h_scale)
}

/// One-sided A* with deferred termination and μ-pruning.
fn search_uni<G: GridView>(
    step: &StepCost<'_, G>,
    sources: &[usize],
    targets: &[usize],
    buffers: &mut SearchBuffers,
    h_scale: f64,
) -> Option<FoundPath> {
    let dim = *step.grid.dim();
    buffers.ensure(dim.len());
    buffers.next_gen();
    let gen = buffers.cur;

    for &t in targets {
        buffers.target_stamp[t] = gen;
    }
    let target_points: Vec<GridPoint> = targets.iter().map(|&t| dim.from_flat(t)).collect();
    let h = |node: usize| -> f64 {
        let g = dim.from_flat(node);
        let mut best = u64::MAX;
        for t in &target_points {
            best = best.min(g.manhattan(*t));
        }
        best as f64 * h_scale
    };

    let mut open = match step.cfg.open_list {
        OpenListKind::Bucket => Open::Bucket(&mut buffers.fwd_bucket),
        _ => Open::Heap(&mut buffers.fwd_heap),
    };
    open.clear();
    for &s in sources {
        if !step.passable(s) {
            continue;
        }
        buffers.dist[s] = 0.0;
        buffers.stamp[s] = gen;
        buffers.came[s] = u32::MAX;
        open.push(h(s), 0.0, s);
    }

    // Best target reached so far: μ. The search keeps going until the open
    // list cannot hold anything cheaper, which makes the result exact for
    // any pop order (bucket LIFO included) under an admissible heuristic.
    let mut best: Option<(f64, usize)> = None;
    // Expansions are counted locally and flushed as one counter update per
    // search so the hot loop never touches the observability atomics.
    let mut expansions: u64 = 0;
    loop {
        if let Some((mu, _)) = best {
            if open.min_bound() >= mu - 1e-12 {
                break;
            }
        }
        let Some((f, g, node)) = open.pop() else {
            break;
        };
        if let Some((mu, _)) = best {
            if f >= mu - 1e-12 {
                continue; // cannot beat the best target already found
            }
        }
        if buffers.stamp[node] == gen && g > buffers.dist[node] + 1e-12 {
            continue; // stale entry
        }
        expansions += 1;
        if buffers.target_stamp[node] == gen {
            if best.is_none_or(|(mu, _)| g < mu - 1e-12) {
                best = Some((g, node));
            }
            continue;
        }
        let gp = dim.from_flat(node);
        // Approximate bend cost: compare each candidate direction with the
        // direction this node was reached from (path-dependent, so not a
        // strict A* cost — standard maze-router practice).
        let incoming_axis = if buffers.came[node] != u32::MAX {
            axis_between(dim.from_flat(buffers.came[node] as usize), gp)
        } else {
            None
        };
        for dir in Dir3::ALL {
            let Some((ng, nidx)) = neighbor(&dim, gp, dir) else {
                continue;
            };
            if !step.passable(nidx) {
                continue;
            }
            let layer = if dir.axis() == Axis::Z {
                gp.l.max(ng.l)
            } else {
                ng.l
            };
            let bend = match incoming_axis {
                Some(axis) if axis != dir.axis() && axis != Axis::Z && dir.axis() != Axis::Z => {
                    step.cfg.bend_penalty
                }
                _ => 0.0,
            };
            let ncost = g + step.enter_cost(nidx, dir.axis(), layer) + bend;
            if buffers.stamp[nidx] != gen || ncost + 1e-12 < buffers.dist[nidx] {
                let nf = ncost + h(nidx);
                if let Some((mu, _)) = best {
                    if nf >= mu - 1e-12 {
                        continue; // prune: optimistic completion already loses
                    }
                }
                buffers.stamp[nidx] = gen;
                buffers.dist[nidx] = ncost;
                buffers.came[nidx] = node as u32;
                open.push(nf, ncost, nidx);
            }
        }
    }
    af_obs::counter("route.astar_expansions", expansions);
    let (cost, end) = best?;
    let mut nodes = vec![end];
    let mut cur = end;
    while buffers.came[cur] != u32::MAX {
        cur = buffers.came[cur] as usize;
        nodes.push(cur);
    }
    nodes.reverse();
    Some(FoundPath { nodes, cost })
}

/// Bidirectional Dijkstra (no heuristic on either side) for one source, one
/// target. Used when the heuristic is too weak to steer a one-sided search —
/// two balls of radius d/2 expand far fewer nodes than one of radius d.
///
/// The backward search relaxes reversed edges: stepping `u ← v` backward
/// charges the cost of *entering v* (what the forward path would pay), with
/// the bend checked at `v` between the edge to `u` and `v`'s successor
/// toward the target. The seam bend at the meeting node is not charged —
/// consistent with the bend cost being path-approximate, not exact.
fn search_bidir<G: GridView>(
    step: &StepCost<'_, G>,
    source: usize,
    target: usize,
    buffers: &mut SearchBuffers,
) -> Option<FoundPath> {
    let dim = *step.grid.dim();
    buffers.ensure(dim.len());
    buffers.next_gen();
    let gen = buffers.cur;
    if !step.passable(source) || !step.passable(target) {
        return None;
    }
    if source == target {
        return Some(FoundPath {
            nodes: vec![source],
            cost: 0.0,
        });
    }

    let (mut fwd, mut bwd) = match step.cfg.open_list {
        OpenListKind::Bucket => (
            Open::Bucket(&mut buffers.fwd_bucket),
            Open::Bucket(&mut buffers.bwd_bucket),
        ),
        _ => (
            Open::Heap(&mut buffers.fwd_heap),
            Open::Heap(&mut buffers.bwd_heap),
        ),
    };
    fwd.clear();
    bwd.clear();
    buffers.dist[source] = 0.0;
    buffers.stamp[source] = gen;
    buffers.came[source] = u32::MAX;
    fwd.push(0.0, 0.0, source);
    buffers.bdist[target] = 0.0;
    buffers.bstamp[target] = gen;
    buffers.bcame[target] = u32::MAX;
    bwd.push(0.0, 0.0, target);

    // Best known source→target cost μ and its meeting node.
    let mut best: Option<(f64, usize)> = None;
    let mut expansions: u64 = 0;
    loop {
        let bf = fwd.min_bound();
        let bb = bwd.min_bound();
        if bf.is_infinite() && bb.is_infinite() {
            break;
        }
        if let Some((mu, _)) = best {
            // No pair of frontier extensions can beat μ anymore.
            if bf + bb >= mu - 1e-12 {
                break;
            }
        }
        let forward = bf <= bb;
        let Some((_, g, node)) = (if forward { fwd.pop() } else { bwd.pop() }) else {
            continue;
        };
        let (dist, came, stamp, odist, ostamp) = if forward {
            (
                &mut buffers.dist,
                &mut buffers.came,
                &mut buffers.stamp,
                &buffers.bdist,
                &buffers.bstamp,
            )
        } else {
            (
                &mut buffers.bdist,
                &mut buffers.bcame,
                &mut buffers.bstamp,
                &buffers.dist,
                &buffers.stamp,
            )
        };
        if stamp[node] == gen && g > dist[node] + 1e-12 {
            continue; // stale entry
        }
        expansions += 1;
        let gp = dim.from_flat(node);
        // Axis of the edge this node already has on its own side: toward the
        // source (forward came) or toward the target (backward came).
        let settled_axis = if came[node] != u32::MAX {
            axis_between(dim.from_flat(came[node] as usize), gp)
        } else {
            None
        };
        for dir in Dir3::ALL {
            let Some((ng, nidx)) = neighbor(&dim, gp, dir) else {
                continue;
            };
            if !step.passable(nidx) {
                continue;
            }
            let bend = match settled_axis {
                Some(axis) if axis != dir.axis() && axis != Axis::Z && dir.axis() != Axis::Z => {
                    step.cfg.bend_penalty
                }
                _ => 0.0,
            };
            // Forward: pay to enter the neighbor. Backward: the forward path
            // underneath steps neighbor→node, so pay to enter *node*.
            let (enter_idx, hi_l) = if forward {
                (nidx, gp.l.max(ng.l))
            } else {
                (node, gp.l.max(ng.l))
            };
            let layer = if dir.axis() == Axis::Z {
                hi_l
            } else if forward {
                ng.l
            } else {
                gp.l
            };
            let ncost = g + step.enter_cost(enter_idx, dir.axis(), layer) + bend;
            if stamp[nidx] != gen || ncost + 1e-12 < dist[nidx] {
                if let Some((mu, _)) = best {
                    if ncost >= mu - 1e-12 {
                        continue;
                    }
                }
                stamp[nidx] = gen;
                dist[nidx] = ncost;
                came[nidx] = node as u32;
                if forward {
                    fwd.push(ncost, ncost, nidx);
                } else {
                    bwd.push(ncost, ncost, nidx);
                }
                if ostamp[nidx] == gen {
                    let total = ncost + odist[nidx];
                    if best.is_none_or(|(mu, _)| total < mu - 1e-12) {
                        best = Some((total, nidx));
                    }
                }
            }
        }
    }
    af_obs::counter("route.astar_expansions", expansions);
    let (cost, meet) = best?;
    let mut nodes = vec![meet];
    let mut cur = meet;
    while buffers.came[cur] != u32::MAX {
        cur = buffers.came[cur] as usize;
        nodes.push(cur);
    }
    nodes.reverse();
    cur = meet;
    while buffers.bcame[cur] != u32::MAX {
        cur = buffers.bcame[cur] as usize;
        nodes.push(cur);
    }
    Some(FoundPath { nodes, cost })
}

/// Axis of the (unit) step from `a` to `b`, `None` when coincident.
fn axis_between(a: GridPoint, b: GridPoint) -> Option<Axis> {
    if a.x != b.x {
        Some(Axis::X)
    } else if a.y != b.y {
        Some(Axis::Y)
    } else if a.l != b.l {
        Some(Axis::Z)
    } else {
        None
    }
}

/// In-bounds neighbor of `gp` along `dir`, with its flat index.
fn neighbor(dim: &af_geom::GridDim, gp: GridPoint, dir: Dir3) -> Option<(GridPoint, usize)> {
    let (dx, dy, dz) = dir.delta();
    let nxt = (
        i64::from(gp.x) + dx,
        i64::from(gp.y) + dy,
        i64::from(gp.l) + dz,
    );
    if nxt.0 < 0
        || nxt.1 < 0
        || nxt.2 < 0
        || nxt.0 >= i64::from(dim.nx())
        || nxt.1 >= i64::from(dim.ny())
        || nxt.2 >= i64::from(dim.layers())
    {
        return None;
    }
    let ng = GridPoint::new(nxt.0 as u32, nxt.1 as u32, nxt.2 as u8);
    Some((ng, dim.flat_index(ng)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::PinAccessMap;
    use crate::grid::RoutingGrid;
    use crate::router::RouterConfig;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;
    use proptest::prelude::*;

    #[test]
    fn heap_is_min_on_f() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry {
            f: 3.0,
            g: 0.0,
            node: 1,
        });
        h.push(HeapEntry {
            f: 1.0,
            g: 0.0,
            node: 2,
        });
        h.push(HeapEntry {
            f: 2.0,
            g: 0.0,
            node: 3,
        });
        assert_eq!(h.pop().unwrap().node, 2);
        assert_eq!(h.pop().unwrap().node, 3);
        assert_eq!(h.pop().unwrap().node, 1);
    }

    #[test]
    fn bucket_queue_pops_in_bucket_order() {
        let mut q = BucketQueue::default();
        q.push(3.1, 3.1, 1);
        q.push(0.1, 0.1, 2);
        q.push(1.6, 1.6, 3);
        assert_eq!(q.pop().unwrap().2, 2);
        assert_eq!(q.pop().unwrap().2, 3);
        // Re-opening a cheaper label pulls the cursor back.
        q.push(0.2, 0.2, 4);
        assert_eq!(q.pop().unwrap().2, 4);
        assert_eq!(q.pop().unwrap().2, 1);
        assert!(q.pop().is_none());
        assert!(q.min_bound().is_infinite());
        // clear() resets touched buckets for reuse.
        q.push(2.0, 2.0, 5);
        q.clear();
        assert!(q.pop().is_none());
    }

    #[test]
    fn bucket_queue_clamps_huge_costs() {
        let mut q = BucketQueue::default();
        q.push(1e12, 1e12, 7);
        q.push(0.0, 0.0, 8);
        assert_eq!(q.pop().unwrap().2, 8);
        assert_eq!(q.pop().unwrap().2, 7);
    }

    #[test]
    fn preferred_direction_convention() {
        assert!(grid_preferred(0, Axis::X));
        assert!(!grid_preferred(0, Axis::Y));
        assert!(grid_preferred(1, Axis::Y));
        assert!(!grid_preferred(1, Axis::X));
        assert!(grid_preferred(2, Axis::X));
        assert!(grid_preferred(3, Axis::Z));
    }

    #[test]
    fn stamp_generation_wraps_safely() {
        let mut b = SearchBuffers::default();
        b.ensure(4);
        b.cur = u32::MAX;
        b.next_gen();
        assert_eq!(b.cur, 1);
        assert!(b.stamp.iter().all(|&s| s == 0));
    }

    /// An admissible-cost config: reuse discount off and via cost ≥ 1 keep
    /// every step cost ≥ the heuristic scale, so both engines are exact and
    /// must agree on cost. Bends stay 0 because the bend term is
    /// path-dependent (not part of the node relaxation invariant).
    fn exact_cfg(open_list: OpenListKind, bidirectional: bool, via_cost: f64) -> RouterConfig {
        // Legacy weak heuristic: keeps h admissible AND below the 0.5
        // bidirectional threshold, so `bidirectional: true` really
        // exercises the two-sided engine.
        RouterConfig {
            open_list,
            bidirectional,
            reuse_discount: 1.0,
            bend_penalty: 0.0,
            via_cost,
            guidance_aware_h: false,
            ..Default::default()
        }
    }

    fn search_cost(
        grid: &RoutingGrid,
        cfg: &RouterConfig,
        net: NetId,
        sources: &[usize],
        targets: &[usize],
    ) -> Option<(f64, usize)> {
        let step = StepCost {
            grid,
            guidance: &RoutingGuidance::None,
            guidance_norm: 1.0,
            cfg,
            net,
            mirror_net: None,
            enforce_mirror: false,
        };
        let mut buffers = SearchBuffers::default();
        search(&step, sources, targets, &mut buffers).map(|p| (p.cost, p.nodes.len()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite: the bucketed open list returns paths whose cost equals
        /// the `BinaryHeap` oracle's, across random endpoint pairs, via
        /// costs, and engine dispositions (uni- and bidirectional).
        #[test]
        fn bucket_open_list_matches_heap_oracle(
            seed in 0usize..4096,
            via_cost in 1.0f64..5.0,
            bidir_bit in 0usize..2,
        ) {
            let bidirectional = bidir_bit == 1;
            let c = benchmarks::ota1();
            let p = place(&c, PlacementVariant::A);
            let tech = Technology::nm40();
            let mut grid = RoutingGrid::new(&c, &p, &tech, 2);
            let aps = PinAccessMap::extract(&c, &p, &mut grid);
            // Endpoints must belong to the routed net; sample a multi-pin
            // net and a pair of its access points from the seed.
            let per_net: Vec<(NetId, Vec<usize>)> = (0..c.nets().len() as u32)
                .map(NetId::new)
                .map(|id| {
                    let nodes: Vec<usize> = aps
                        .of_net(id)
                        .iter()
                        .map(|ap| grid.dim().flat_index(ap.node))
                        .collect();
                    (id, nodes)
                })
                .filter(|(_, nodes)| nodes.len() >= 2)
                .collect();
            prop_assert!(!per_net.is_empty(), "ota1 must have multi-pin nets");
            let (net, nodes) = &per_net[seed % per_net.len()];
            let net = *net;
            let s = nodes[(seed / 7) % nodes.len()];
            let t = nodes[(seed / 91) % nodes.len()];

            let bucket = search_cost(
                &grid,
                &exact_cfg(OpenListKind::Bucket, bidirectional, via_cost),
                net,
                &[s],
                &[t],
            );
            let heap = search_cost(
                &grid,
                &exact_cfg(OpenListKind::Heap, bidirectional, via_cost),
                net,
                &[s],
                &[t],
            );
            match (bucket, heap) {
                (None, None) => {}
                (Some((bc, _)), Some((hc, _))) => {
                    prop_assert!(
                        (bc - hc).abs() < 1e-6,
                        "bucket cost {bc} != heap cost {hc} (s={s}, t={t})"
                    );
                }
                other => prop_assert!(false, "reachability disagrees: {other:?}"),
            }
        }
    }

    #[test]
    fn bidirectional_matches_unidirectional_cost() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let tech = Technology::nm40();
        let mut grid = RoutingGrid::new(&c, &p, &tech, 2);
        let aps = PinAccessMap::extract(&c, &p, &mut grid);
        // Endpoints must belong to the routed net — other nets' pins are
        // impassable. Pick the first net with at least two access points.
        let (net, nodes) = (0..c.nets().len() as u32)
            .map(NetId::new)
            .map(|id| {
                let nodes: Vec<usize> = aps
                    .of_net(id)
                    .iter()
                    .map(|ap| grid.dim().flat_index(ap.node))
                    .collect();
                (id, nodes)
            })
            .find(|(_, nodes)| nodes.len() >= 2)
            .expect("ota1 has a multi-pin net");
        let (s, t) = (nodes[0], nodes[nodes.len() - 1]);
        let uni = search_cost(
            &grid,
            &exact_cfg(OpenListKind::Bucket, false, 3.0),
            net,
            &[s],
            &[t],
        );
        let bi = search_cost(
            &grid,
            &exact_cfg(OpenListKind::Bucket, true, 3.0),
            net,
            &[s],
            &[t],
        );
        let (Some((uc, _)), Some((bc, _))) = (uni, bi) else {
            panic!("route between access points should exist: {uni:?} {bi:?}");
        };
        assert!(
            (uc - bc).abs() < 1e-6,
            "bidirectional cost {bc} != unidirectional cost {uc}"
        );
    }
}
