//! A* maze search over the routing grid.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use af_geom::{Axis, Dir3, GridPoint};
use af_netlist::NetId;

use crate::grid::RoutingGrid;
use crate::guidance::RoutingGuidance;
use crate::router::RouterConfig;

/// Reusable search scratch space (stamped so clearing is O(1) per search).
#[derive(Debug, Default)]
pub(crate) struct SearchBuffers {
    dist: Vec<f64>,
    came: Vec<u32>,
    stamp: Vec<u32>,
    target_stamp: Vec<u32>,
    cur: u32,
}

impl SearchBuffers {
    pub(crate) fn ensure(&mut self, len: usize) {
        if self.dist.len() < len {
            self.dist.resize(len, 0.0);
            self.came.resize(len, u32::MAX);
            self.stamp.resize(len, 0);
            self.target_stamp.resize(len, 0);
        }
    }

    fn next_gen(&mut self) {
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.target_stamp.iter_mut().for_each(|s| *s = 0);
            self.cur = 1;
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    f: f64,
    g: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on f, tie-break larger g first (deeper nodes explored first)
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.g.partial_cmp(&other.g).unwrap_or(Ordering::Equal))
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Outcome of one A* run: the path from a source to a target, source first.
pub(crate) struct FoundPath {
    pub nodes: Vec<usize>,
    /// Total path cost (useful to diagnostics and future cost-based pruning).
    #[allow(dead_code)]
    pub cost: f64,
}

/// Per-step parameters captured once per net route.
pub(crate) struct StepCost<'a> {
    pub grid: &'a RoutingGrid,
    pub guidance: &'a RoutingGuidance,
    pub cfg: &'a RouterConfig,
    pub net: NetId,
    /// Partner of a symmetric pair (its resources look like our own), and
    /// whether passability must also hold at the mirror node.
    pub mirror_net: Option<NetId>,
    pub enforce_mirror: bool,
}

impl StepCost<'_> {
    /// Whether the search may stand on `idx` at all.
    fn passable(&self, idx: usize) -> bool {
        let grid = self.grid;
        if grid.is_blocked(idx) {
            return false;
        }
        if let Some(owner) = grid.owner(idx) {
            if owner != self.net && Some(owner) != self.mirror_net && grid.is_pin(idx) {
                return false; // never touch another net's pin
            }
        }
        if self.enforce_mirror {
            let g = grid.dim().from_flat(idx);
            // Mirrored routing is confined to the net's own (left) half-plane
            // so a route can never collide with its own mirror image.
            if g.x >= grid.axis_col() {
                return false;
            }
            match grid.mirror(g) {
                None => return false,
                Some(m) => {
                    let midx = grid.dim().flat_index(m);
                    if grid.is_blocked(midx) {
                        return false;
                    }
                    if let Some(owner) = grid.owner(midx) {
                        if owner != self.net && Some(owner) != self.mirror_net && grid.is_pin(midx)
                        {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Cost of stepping onto `idx` along `axis`.
    fn enter_cost(&self, idx: usize, axis: Axis, layer: u8) -> f64 {
        let grid = self.grid;
        let cfg = self.cfg;
        let pos = grid.node_dbu(idx);
        let mut cost = match axis {
            Axis::Z => cfg.via_cost,
            a => {
                let preferred = grid_preferred(layer, a);
                if preferred {
                    1.0
                } else {
                    cfg.wrong_dir_mult
                }
            }
        };
        cost *= self
            .guidance
            .multiplier(self.net, pos, axis)
            .max(cfg.min_guidance);
        // Congestion negotiation. History applies even on currently-free
        // nodes (PathFinder): a node that keeps being contested must repel
        // every net, not just the late-comer.
        let mut penalty = f64::from(grid.history(idx));
        if let Some(owner) = grid.owner(idx) {
            if owner == self.net || Some(owner) == self.mirror_net {
                cost *= cfg.reuse_discount;
                penalty = 0.0;
            } else {
                penalty += cfg.present_cost;
            }
        }
        if self.enforce_mirror {
            let g = grid.dim().from_flat(idx);
            if let Some(m) = grid.mirror(g) {
                let midx = grid.dim().flat_index(m);
                if let Some(owner) = grid.owner(midx) {
                    if owner != self.net && Some(owner) != self.mirror_net {
                        penalty += cfg.present_cost + f64::from(grid.history(midx));
                    }
                }
            }
        }
        cost + penalty
    }
}

/// Preferred-direction convention: even layers (M1, M3) run horizontally,
/// odd layers vertically — matching `Technology::nm40`.
fn grid_preferred(layer: u8, axis: Axis) -> bool {
    match axis {
        Axis::X => layer.is_multiple_of(2),
        Axis::Y => !layer.is_multiple_of(2),
        Axis::Z => true,
    }
}

/// Runs A* from `sources` (cost 0) to any node in `targets`.
///
/// Returns the path (source first, target last) or `None` when unreachable.
pub(crate) fn search(
    step: &StepCost<'_>,
    sources: &[usize],
    targets: &[usize],
    buffers: &mut SearchBuffers,
) -> Option<FoundPath> {
    let dim = *step.grid.dim();
    buffers.ensure(dim.len());
    buffers.next_gen();
    let gen = buffers.cur;

    for &t in targets {
        buffers.target_stamp[t] = gen;
    }
    let target_points: Vec<GridPoint> = targets.iter().map(|&t| dim.from_flat(t)).collect();
    let h_scale = 0.999 * step.cfg.min_guidance.min(1.0);
    let h = |node: usize| -> f64 {
        let g = dim.from_flat(node);
        let mut best = u64::MAX;
        for t in &target_points {
            best = best.min(g.manhattan(*t));
        }
        best as f64 * h_scale
    };

    let mut heap = BinaryHeap::new();
    for &s in sources {
        if !step.passable(s) {
            continue;
        }
        buffers.dist[s] = 0.0;
        buffers.stamp[s] = gen;
        buffers.came[s] = u32::MAX;
        heap.push(HeapEntry {
            f: h(s),
            g: 0.0,
            node: s,
        });
    }

    // Expansions are counted locally and flushed as one counter update per
    // search so the hot loop never touches the observability atomics.
    let mut expansions: u64 = 0;
    while let Some(HeapEntry { g, node, .. }) = heap.pop() {
        if buffers.stamp[node] == gen && g > buffers.dist[node] + 1e-12 {
            continue; // stale entry
        }
        expansions += 1;
        if buffers.target_stamp[node] == gen {
            // Reconstruct.
            let mut nodes = vec![node];
            let mut cur = node;
            while buffers.came[cur] != u32::MAX {
                cur = buffers.came[cur] as usize;
                nodes.push(cur);
            }
            nodes.reverse();
            af_obs::counter("route.astar_expansions", expansions);
            return Some(FoundPath { nodes, cost: g });
        }
        let gp = dim.from_flat(node);
        // Approximate bend cost: compare each candidate direction with the
        // direction this node was reached from (path-dependent, so not a
        // strict A* cost — standard maze-router practice).
        let incoming_axis = if buffers.came[node] != u32::MAX {
            let prev = dim.from_flat(buffers.came[node] as usize);
            let (dx, dy, dz) = (
                i64::from(gp.x) - i64::from(prev.x),
                i64::from(gp.y) - i64::from(prev.y),
                i64::from(gp.l) - i64::from(prev.l),
            );
            if dx != 0 {
                Some(Axis::X)
            } else if dy != 0 {
                Some(Axis::Y)
            } else if dz != 0 {
                Some(Axis::Z)
            } else {
                None
            }
        } else {
            None
        };
        for dir in Dir3::ALL {
            let (dx, dy, dz) = dir.delta();
            let nxt = (
                i64::from(gp.x) + dx,
                i64::from(gp.y) + dy,
                i64::from(gp.l) + dz,
            );
            if nxt.0 < 0
                || nxt.1 < 0
                || nxt.2 < 0
                || nxt.0 >= i64::from(dim.nx())
                || nxt.1 >= i64::from(dim.ny())
                || nxt.2 >= i64::from(dim.layers())
            {
                continue;
            }
            let ng = GridPoint::new(nxt.0 as u32, nxt.1 as u32, nxt.2 as u8);
            let nidx = dim.flat_index(ng);
            if !step.passable(nidx) {
                continue;
            }
            let layer = if dir.axis() == Axis::Z {
                gp.l.max(ng.l)
            } else {
                ng.l
            };
            let bend = match incoming_axis {
                Some(axis) if axis != dir.axis() && axis != Axis::Z && dir.axis() != Axis::Z => {
                    step.cfg.bend_penalty
                }
                _ => 0.0,
            };
            let ncost = g + step.enter_cost(nidx, dir.axis(), layer) + bend;
            if buffers.stamp[nidx] != gen || ncost + 1e-12 < buffers.dist[nidx] {
                buffers.stamp[nidx] = gen;
                buffers.dist[nidx] = ncost;
                buffers.came[nidx] = node as u32;
                heap.push(HeapEntry {
                    f: ncost + h(nidx),
                    g: ncost,
                    node: nidx,
                });
            }
        }
    }
    af_obs::counter("route.astar_expansions", expansions);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_is_min_on_f() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry {
            f: 3.0,
            g: 0.0,
            node: 1,
        });
        h.push(HeapEntry {
            f: 1.0,
            g: 0.0,
            node: 2,
        });
        h.push(HeapEntry {
            f: 2.0,
            g: 0.0,
            node: 3,
        });
        assert_eq!(h.pop().unwrap().node, 2);
        assert_eq!(h.pop().unwrap().node, 3);
        assert_eq!(h.pop().unwrap().node, 1);
    }

    #[test]
    fn preferred_direction_convention() {
        assert!(grid_preferred(0, Axis::X));
        assert!(!grid_preferred(0, Axis::Y));
        assert!(grid_preferred(1, Axis::Y));
        assert!(!grid_preferred(1, Axis::X));
        assert!(grid_preferred(2, Axis::X));
        assert!(grid_preferred(3, Axis::Z));
    }

    #[test]
    fn stamp_generation_wraps_safely() {
        let mut b = SearchBuffers::default();
        b.ensure(4);
        b.cur = u32::MAX;
        b.next_gen();
        assert_eq!(b.cur, 1);
        assert!(b.stamp.iter().all(|&s| s == 0));
    }
}
