//! Constraint-aware iterative (negotiated) routing.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

use af_netlist::{Circuit, NetId};
use af_place::Placement;
use af_tech::Technology;

use crate::access::PinAccessMap;
use crate::astar::{search, SearchBuffers, StepCost};
use crate::grid::RoutingGrid;
use crate::guidance::RoutingGuidance;
use crate::post;
use crate::{RoutedLayout, RoutedNet};

/// Router tuning parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Grid-pitch multiplier over the technology pitch (1 = full density).
    pub coarsen: i64,
    /// Cost of one via hop relative to one planar step.
    pub via_cost: f64,
    /// Multiplier for steps against a layer's preferred direction.
    pub wrong_dir_mult: f64,
    /// Immediate penalty for using a node another net occupies.
    pub present_cost: f64,
    /// History added to each conflicted node per rip-up iteration.
    pub history_increment: f32,
    /// Multiplier for re-walking nodes the net already owns (Steiner reuse).
    pub reuse_discount: f64,
    /// Lower clamp on guidance multipliers (keeps A* admissible).
    pub min_guidance: f64,
    /// Extra cost per direction change (approximate bend minimization).
    pub bend_penalty: f64,
    /// Maximum rip-up/re-route iterations.
    pub max_iterations: u32,
    /// Whether symmetric net pairs are routed by mirroring.
    pub enforce_symmetry: bool,
}

impl RouterConfig {
    /// Validates the configuration, returning a description of the first
    /// nonsensical setting.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.coarsen < 1 {
            return Err(format!("coarsen must be >= 1, got {}", self.coarsen));
        }
        if self.via_cost <= 0.0 {
            return Err(format!("via_cost must be positive, got {}", self.via_cost));
        }
        if self.wrong_dir_mult < 1.0 {
            return Err(format!(
                "wrong_dir_mult must be >= 1, got {}",
                self.wrong_dir_mult
            ));
        }
        if self.present_cost < 0.0 || self.history_increment < 0.0 {
            return Err("congestion penalties must be non-negative".to_string());
        }
        if !(0.0..=1.0).contains(&self.reuse_discount) {
            return Err(format!(
                "reuse_discount must be in [0, 1], got {}",
                self.reuse_discount
            ));
        }
        if self.min_guidance <= 0.0 {
            return Err(format!(
                "min_guidance must be positive, got {}",
                self.min_guidance
            ));
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be at least 1".to_string());
        }
        if self.bend_penalty < 0.0 {
            return Err(format!(
                "bend_penalty must be non-negative, got {}",
                self.bend_penalty
            ));
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            coarsen: 2,
            via_cost: 3.0,
            wrong_dir_mult: 2.0,
            present_cost: 40.0,
            history_increment: 40.0,
            reuse_discount: 0.2,
            min_guidance: 0.25,
            bend_penalty: 0.5,
            max_iterations: 24,
            enforce_symmetry: true,
        }
    }
}

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// A net could not be connected at all (hard obstacles).
    Unroutable {
        /// The failing net.
        net: NetId,
        /// Net name for diagnostics.
        name: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { net, name } => {
                write!(f, "net `{name}` ({net}) cannot be routed")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Per-net route state during negotiation.
#[derive(Debug, Clone, Default)]
struct NetRoute {
    nodes: HashSet<u32>,
    edges: HashSet<(u32, u32)>,
}

/// One unit of routing work: a lone net or a mirrored pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Single(NetId),
    Pair(NetId, NetId),
}

impl Task {
    fn members(self) -> [Option<NetId>; 2] {
        match self {
            Task::Single(n) => [Some(n), None],
            Task::Pair(a, b) => [Some(a), Some(b)],
        }
    }

    fn contains(self, n: NetId) -> bool {
        self.members().contains(&Some(n))
    }
}

/// Routes a placed circuit.
///
/// Without guidance this is the MagicalRoute baseline; with guidance it is
/// the paper's guided analog detailed routing.
///
/// # Errors
///
/// [`RouteError::Unroutable`] when a net has no feasible path even ignoring
/// congestion (hard blockage).
pub fn route(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    guidance: &RoutingGuidance,
    cfg: &RouterConfig,
) -> Result<RoutedLayout, RouteError> {
    let t0 = Instant::now();
    let _route = af_obs::span!("route");
    let mut grid = RoutingGrid::new(circuit, placement, tech, cfg.coarsen);
    let aps = PinAccessMap::extract(circuit, placement, &mut grid);

    // Build tasks: symmetric pairs first (so the mirror corridor is free),
    // then remaining nets by descending weight; supplies last.
    let mut tasks: Vec<Task> = Vec::new();
    let mut in_pair = vec![false; circuit.nets().len()];
    if cfg.enforce_symmetry {
        for &(a, b) in circuit.symmetric_net_pairs() {
            // A pair is only routable by mirroring when the two AP sets are
            // exact mirror images AND net `a` lives strictly left of the
            // axis (mirrored routing confines each net to its half-plane, so
            // cross-axis pairs fall back to independent routing).
            if !aps_mirror(&grid, &aps, a, b) || !one_sided(&grid, &aps, a) {
                continue;
            }
            if aps.of_net(a).len() >= 2 || aps.of_net(b).len() >= 2 {
                tasks.push(Task::Pair(a, b));
            }
            in_pair[a.index()] = true;
            in_pair[b.index()] = true;
        }
    }
    let mut singles: Vec<NetId> = Vec::new();
    for (i, &paired) in in_pair.iter().enumerate() {
        let id = NetId::new(i as u32);
        if paired || aps.of_net(id).len() < 2 {
            continue;
        }
        singles.push(id);
    }
    let priority = |n: NetId| {
        let net = circuit.net(n);
        if net.ty.is_supply() {
            -1.0
        } else {
            net.weight
        }
    };
    singles.sort_by(|&a, &b| {
        priority(b)
            .partial_cmp(&priority(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    tasks.extend(singles.into_iter().map(Task::Single));
    af_obs::counter("route.tasks", tasks.len() as u64);

    let mut routes: HashMap<u32, NetRoute> = HashMap::new();
    let mut buffers = SearchBuffers::default();

    // Initial pass.
    for &task in &tasks {
        route_task(
            circuit,
            &mut grid,
            &aps,
            guidance,
            cfg,
            task,
            &mut routes,
            &mut buffers,
        )?;
    }

    // Negotiated rip-up & re-route.
    let debug = std::env::var_os("AF_ROUTE_DEBUG").is_some();
    let mut iterations = 1;
    let mut conflicts = conflicted_nodes(&grid, &routes);
    while !conflicts.is_empty() && iterations < cfg.max_iterations {
        af_obs::counter("route.ripup_iterations", 1);
        af_obs::counter("route.conflict_nodes", conflicts.len() as u64);
        if debug {
            for (&node, users) in &conflicts {
                let g = grid.dim().from_flat(node as usize);
                eprintln!(
                    "iter {iterations}: conflict at {g} {} users={:?} hist={}",
                    grid.node_dbu(node as usize),
                    users
                        .iter()
                        .map(|&u| circuit.net(NetId::new(u)).name.clone())
                        .collect::<Vec<_>>(),
                    grid.history(node as usize),
                );
            }
        }
        iterations += 1;
        // Raise history on contested nodes.
        // PathFinder semantics: every user of a contested node is ripped up,
        // the owner included — otherwise a trespasser whose only passage is a
        // node the owner sits on (e.g. a shared pin escape column) deadlocks.
        let mut victims: HashSet<u32> = HashSet::new();
        for (&node, users) in &conflicts {
            grid.bump_history(node as usize, cfg.history_increment);
            for &u in users {
                victims.insert(u);
            }
        }
        // Expand victims to whole tasks and rip them up.
        let victim_tasks: Vec<Task> = tasks
            .iter()
            .copied()
            .filter(|t| victims.iter().any(|&v| t.contains(NetId::new(v))))
            .collect();
        af_obs::counter("route.victims_ripped", victim_tasks.len() as u64);
        for task in &victim_tasks {
            for member in task.members().into_iter().flatten() {
                grid.release_net(member);
                routes.remove(&(member.index() as u32));
            }
        }
        for &task in &victim_tasks {
            route_task(
                circuit,
                &mut grid,
                &aps,
                guidance,
                cfg,
                task,
                &mut routes,
                &mut buffers,
            )?;
        }
        conflicts = conflicted_nodes(&grid, &routes);
    }

    // Post-process each net: prune stubs, release pruned nodes, compress.
    let mut nets = Vec::new();
    let mut pruned: u64 = 0;
    for (i, _) in circuit.nets().iter().enumerate() {
        let id = NetId::new(i as u32);
        let Some(r) = routes.get_mut(&(i as u32)) else {
            continue;
        };
        let pin_nodes: HashSet<u32> = aps
            .of_net(id)
            .iter()
            .map(|ap| grid.dim().flat_index(ap.node) as u32)
            .collect();
        let kept = post::prune_stubs(&mut r.edges, &pin_nodes);
        for &n in r.nodes.iter() {
            if !kept.contains(&n) && grid.owner(n as usize) == Some(id) && !grid.is_pin(n as usize)
            {
                grid.force_free(n as usize);
                pruned += 1;
            }
        }
        r.nodes = kept;
        let segments = post::edges_to_segments(grid.dim(), &r.edges);
        nets.push(RoutedNet::from_segments(id, segments));
    }

    af_obs::counter("route.drc_fixes", pruned);
    af_obs::counter("route.nets_routed", nets.len() as u64);

    Ok(RoutedLayout {
        nets,
        iterations,
        conflicts: conflicted_nodes(&grid, &routes).len() as u32,
        runtime_s: t0.elapsed().as_secs_f64(),
    })
}

/// Whether every AP of `a` lies strictly left of the symmetry axis.
fn one_sided(grid: &RoutingGrid, aps: &PinAccessMap, a: NetId) -> bool {
    aps.of_net(a).iter().all(|ap| ap.node.x < grid.axis_col())
}

/// Whether the AP sets of `a` and `b` are exact mirror images.
fn aps_mirror(grid: &RoutingGrid, aps: &PinAccessMap, a: NetId, b: NetId) -> bool {
    let an = aps.of_net(a);
    let bn = aps.of_net(b);
    if an.len() != bn.len() {
        return false;
    }
    an.iter().all(|ap| {
        grid.mirror(ap.node)
            .map(|m| bn.iter().any(|bp| bp.node == m))
            .unwrap_or(false)
    })
}

/// Map from contested node to the nets using it (only nodes with >1 user).
fn conflicted_nodes(grid: &RoutingGrid, routes: &HashMap<u32, NetRoute>) -> HashMap<u32, Vec<u32>> {
    let mut users: HashMap<u32, Vec<u32>> = HashMap::new();
    for (&net, r) in routes {
        for &n in &r.nodes {
            // A node "belongs" to its owner; other users make it contested.
            if grid.owner(n as usize) != Some(NetId::new(net)) || users.contains_key(&n) {
                users.entry(n).or_default().push(net);
            }
        }
    }
    // Re-scan to attach owners of contested nodes.
    let mut conflicts: HashMap<u32, Vec<u32>> = HashMap::new();
    for (&node, extra) in &users {
        let mut all = extra.clone();
        if let Some(owner) = grid.owner(node as usize) {
            let raw = owner.index() as u32;
            if !all.contains(&raw) {
                all.push(raw);
            }
        }
        if all.len() > 1 {
            conflicts.insert(node, all);
        }
    }
    conflicts
}

#[allow(clippy::too_many_arguments)]
fn route_task(
    circuit: &Circuit,
    grid: &mut RoutingGrid,
    aps: &PinAccessMap,
    guidance: &RoutingGuidance,
    cfg: &RouterConfig,
    task: Task,
    routes: &mut HashMap<u32, NetRoute>,
    buffers: &mut SearchBuffers,
) -> Result<(), RouteError> {
    match task {
        Task::Single(net) => {
            let r = route_net(circuit, grid, aps, guidance, cfg, net, None, false, buffers)?;
            routes.insert(net.index() as u32, r);
        }
        Task::Pair(a, b) => {
            let ra = route_net(circuit, grid, aps, guidance, cfg, a, Some(b), true, buffers)?;
            // Mirror a's geometry onto b.
            let mut rb = NetRoute::default();
            for &n in &ra.nodes {
                let g = grid.dim().from_flat(n as usize);
                if let Some(m) = grid.mirror(g) {
                    let mi = grid.dim().flat_index(m) as u32;
                    grid.claim(mi as usize, b);
                    rb.nodes.insert(mi);
                }
            }
            for &(x, y) in &ra.edges {
                let gx = grid.dim().from_flat(x as usize);
                let gy = grid.dim().from_flat(y as usize);
                if let (Some(mx), Some(my)) = (grid.mirror(gx), grid.mirror(gy)) {
                    let ix = grid.dim().flat_index(mx) as u32;
                    let iy = grid.dim().flat_index(my) as u32;
                    rb.edges.insert((ix.min(iy), ix.max(iy)));
                }
            }
            // Ensure every AP of b is attached (stitch if mirroring missed).
            let missing: Vec<u32> = aps
                .of_net(b)
                .iter()
                .map(|ap| grid.dim().flat_index(ap.node) as u32)
                .filter(|n| !rb.nodes.contains(n))
                .collect();
            if !missing.is_empty() || rb.nodes.is_empty() {
                let stitched = route_net(
                    circuit,
                    grid,
                    aps,
                    guidance,
                    cfg,
                    b,
                    Some(a),
                    false,
                    buffers,
                )?;
                rb.nodes.extend(stitched.nodes);
                rb.edges.extend(stitched.edges);
            }
            routes.insert(a.index() as u32, ra);
            routes.insert(b.index() as u32, rb);
        }
    }
    Ok(())
}

/// Routes one net: connects all its access points into a single tree.
#[allow(clippy::too_many_arguments)]
fn route_net(
    circuit: &Circuit,
    grid: &mut RoutingGrid,
    aps: &PinAccessMap,
    guidance: &RoutingGuidance,
    cfg: &RouterConfig,
    net: NetId,
    mirror_net: Option<NetId>,
    enforce_mirror: bool,
    buffers: &mut SearchBuffers,
) -> Result<NetRoute, RouteError> {
    let mut route = NetRoute::default();
    // Seed the tree with anything the net already owns (pins at minimum).
    let ap_nodes: Vec<u32> = aps
        .of_net(net)
        .iter()
        .map(|ap| grid.dim().flat_index(ap.node) as u32)
        .collect();
    if ap_nodes.is_empty() {
        return Ok(route);
    }
    route.nodes.insert(ap_nodes[0]);
    let mut remaining: Vec<u32> = ap_nodes[1..].to_vec();
    // Sort remaining pins by distance to the seed for stable Steiner growth.
    let seed = grid.dim().from_flat(ap_nodes[0] as usize);
    remaining.sort_by_key(|&n| grid.dim().from_flat(n as usize).manhattan(seed));

    while !remaining.is_empty() {
        let sources: Vec<usize> = route.nodes.iter().map(|&n| n as usize).collect();
        let targets: Vec<usize> = remaining.iter().map(|&n| n as usize).collect();
        let step = StepCost {
            grid,
            guidance,
            cfg,
            net,
            mirror_net,
            enforce_mirror,
        };
        let Some(found) = search(&step, &sources, &targets, buffers) else {
            return Err(RouteError::Unroutable {
                net,
                name: circuit.net(net).name.clone(),
            });
        };
        // Claim and record the path.
        let mut prev: Option<u32> = None;
        for &n in &found.nodes {
            let n32 = n as u32;
            grid.claim(n, net); // may fail on contested nodes — negotiation handles it
            route.nodes.insert(n32);
            if let Some(p) = prev {
                route.edges.insert((p.min(n32), p.max(n32)));
            }
            prev = Some(n32);
        }
        let reached = *found.nodes.last().expect("path has nodes") as u32;
        remaining.retain(|&r| r != reached);
    }
    Ok(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    fn routed(circuit: &Circuit) -> RoutedLayout {
        let p = place(circuit, PlacementVariant::A);
        let t = Technology::nm40();
        route(
            circuit,
            &p,
            &t,
            &RoutingGuidance::None,
            &RouterConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn ota1_routes_clean() {
        let c = benchmarks::ota1();
        let layout = routed(&c);
        assert!(layout.is_clean(), "{} conflicts", layout.conflicts);
        assert!(layout.total_wirelength() > 0);
        // every routable net present
        for (i, net) in c.nets().iter().enumerate() {
            if net.is_routable() {
                assert!(
                    layout.net(NetId::new(i as u32)).is_some(),
                    "net `{}` missing",
                    net.name
                );
            }
        }
    }

    #[test]
    fn ota3_routes() {
        let c = benchmarks::ota3();
        let layout = routed(&c);
        assert!(
            layout.conflicts <= 2,
            "too many conflicts: {}",
            layout.conflicts
        );
        assert!(layout.total_vias() > 0, "multilayer design should use vias");
    }

    #[test]
    fn symmetric_nets_have_mirrored_wirelength() {
        let c = benchmarks::ota1();
        let layout = routed(&c);
        for &(a, b) in c.symmetric_net_pairs() {
            let (ra, rb) = (layout.net(a), layout.net(b));
            if let (Some(ra), Some(rb)) = (ra, rb) {
                // mirroring implies identical wirelength when no stitching was
                // needed; allow a small tolerance for stitches
                let (wa, wb) = (ra.wirelength as f64, rb.wirelength as f64);
                let rel = (wa - wb).abs() / wa.max(wb).max(1.0);
                assert!(rel < 0.35, "{}: {} vs {}", c.net(a).name, wa, wb);
            }
        }
    }

    #[test]
    fn deterministic() {
        let c = benchmarks::ota2();
        let p = place(&c, PlacementVariant::B);
        let t = Technology::nm40();
        let l1 = route(&c, &p, &t, &RoutingGuidance::None, &RouterConfig::default()).unwrap();
        let l2 = route(&c, &p, &t, &RoutingGuidance::None, &RouterConfig::default()).unwrap();
        assert_eq!(l1.nets, l2.nets);
    }

    #[test]
    fn guidance_changes_routing() {
        use crate::guidance::NonUniformGuidance;
        use af_geom::CostTriple;

        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let base = route(&c, &p, &t, &RoutingGuidance::None, &RouterConfig::default()).unwrap();

        let mut g = NonUniformGuidance::new();
        // make vertical routing very expensive for the output net
        let vout = c.net_by_name("vout").unwrap();
        for pin in p.pins_of_net(vout) {
            let center = pin.rect.center();
            g.set(
                vout,
                af_geom::Point3::new(center.x, center.y, pin.layer),
                CostTriple([1.0, 8.0, 4.0]),
            );
        }
        let guided = route(
            &c,
            &p,
            &t,
            &RoutingGuidance::NonUniform(g),
            &RouterConfig::default(),
        )
        .unwrap();
        assert_ne!(
            base.net(vout).map(|n| &n.segments),
            guided.net(vout).map(|n| &n.segments),
            "strong guidance should alter the route"
        );
    }

    #[test]
    fn default_config_is_valid() {
        RouterConfig::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let cases: Vec<(RouterConfig, &str)> = vec![
            (
                RouterConfig {
                    coarsen: 0,
                    ..RouterConfig::default()
                },
                "coarsen",
            ),
            (
                RouterConfig {
                    via_cost: 0.0,
                    ..RouterConfig::default()
                },
                "via_cost",
            ),
            (
                RouterConfig {
                    wrong_dir_mult: 0.5,
                    ..RouterConfig::default()
                },
                "wrong_dir_mult",
            ),
            (
                RouterConfig {
                    present_cost: -1.0,
                    ..RouterConfig::default()
                },
                "penalties",
            ),
            (
                RouterConfig {
                    reuse_discount: 2.0,
                    ..RouterConfig::default()
                },
                "reuse_discount",
            ),
            (
                RouterConfig {
                    min_guidance: 0.0,
                    ..RouterConfig::default()
                },
                "min_guidance",
            ),
            (
                RouterConfig {
                    max_iterations: 0,
                    ..RouterConfig::default()
                },
                "max_iterations",
            ),
            (
                RouterConfig {
                    bend_penalty: -0.1,
                    ..RouterConfig::default()
                },
                "bend_penalty",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }

    #[test]
    fn report_renders_all_nets() {
        let c = benchmarks::ota1();
        let layout = routed(&c);
        let report = layout.report(&c);
        assert!(report.contains("vout"));
        assert!(report.contains("TOTAL"));
        assert!(report.lines().count() >= layout.nets.len() + 2);
    }

    #[test]
    fn bend_penalty_reduces_bends() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let count_bends = |layout: &RoutedLayout| -> usize {
            // planar segments per net minus one approximates bend count
            layout
                .nets
                .iter()
                .map(|n| {
                    n.segments
                        .iter()
                        .filter(|s| !s.is_via())
                        .count()
                        .saturating_sub(1)
                })
                .sum()
        };
        let straight = route(
            &c,
            &p,
            &t,
            &RoutingGuidance::None,
            &RouterConfig {
                bend_penalty: 3.0,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let free = route(
            &c,
            &p,
            &t,
            &RoutingGuidance::None,
            &RouterConfig {
                bend_penalty: 0.0,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert!(
            count_bends(&straight) <= count_bends(&free),
            "bend penalty must not increase bends: {} vs {}",
            count_bends(&straight),
            count_bends(&free)
        );
    }

    #[test]
    fn disabling_symmetry_still_routes() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let cfg = RouterConfig {
            enforce_symmetry: false,
            ..RouterConfig::default()
        };
        let layout = route(&c, &p, &t, &RoutingGuidance::None, &cfg).unwrap();
        assert!(layout.is_clean());
    }
}
