//! Constraint-aware negotiated routing: parallel PathFinder rounds.
//!
//! Each round routes **every uncommitted task concurrently** against a
//! read-only snapshot of the shared grid plus a private per-task overlay
//! ([`crate::view::TaskView`]): a task sees the other pending tasks'
//! *previous-round* claims as present-cost penalties (one-round-stale
//! negotiation — the classic parallel-PathFinder relaxation) while its own
//! stale wires are hidden. Results are merged deterministically in task
//! order, conflicts detected, history costs escalated, and only contested
//! tasks are ripped for the next round — so the routed layout is
//! bit-identical at every thread count.
//!
//! The entry point is the [`Router`] session type, built from a validated
//! [`RouterConfig`] (see [`RouterConfig::builder`]); the free [`route`]
//! function remains as a deprecated shim.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

use af_netlist::{Circuit, NetId};
use af_place::Placement;
use af_tech::Technology;

use crate::access::PinAccessMap;
use crate::astar::{search, SearchBuffers, StepCost};
use crate::grid::RoutingGrid;
use crate::guidance::RoutingGuidance;
use crate::post;
use crate::view::{GridView, TaskView};
use crate::{RoutedLayout, RoutedNet};

/// Open-list engine for the A* inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum OpenListKind {
    /// Bucketed queue keyed on quantized f-cost (default; O(1) push/pop).
    #[default]
    Bucket,
    /// Classic binary heap — the correctness oracle for the bucket queue.
    Heap,
}

/// Router tuning parameters.
///
/// Construct via [`RouterConfig::builder`] (which validates on build) or
/// start from [`RouterConfig::default`] and adjust fields. The struct is
/// `#[non_exhaustive]`: downstream crates must go through the builder or
/// field-by-field mutation, which lets new knobs land without breakage.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RouterConfig {
    /// Grid-pitch multiplier over the technology pitch (1 = full density).
    pub coarsen: i64,
    /// Cost of one via hop relative to one planar step.
    pub via_cost: f64,
    /// Multiplier for steps against a layer's preferred direction.
    pub wrong_dir_mult: f64,
    /// Immediate penalty for using a node another net occupies.
    pub present_cost: f64,
    /// History added to each conflicted node per negotiation round.
    pub history_increment: f32,
    /// Multiplier for re-walking nodes the net already owns (Steiner reuse).
    pub reuse_discount: f64,
    /// Lower clamp on guidance multipliers (keeps A* admissible).
    pub min_guidance: f64,
    /// Extra cost per direction change (approximate bend minimization).
    pub bend_penalty: f64,
    /// Maximum negotiation rounds.
    pub max_iterations: u32,
    /// Whether symmetric net pairs are routed by mirroring.
    pub enforce_symmetry: bool,
    /// Worker threads for the parallel rounds. `0` means auto: the `afrt`
    /// runtime honors `AFRT_THREADS`, then the hardware parallelism. Every
    /// thread count produces bit-identical layouts.
    pub threads: usize,
    /// Open-list engine for the A* inner loop.
    pub open_list: OpenListKind,
    /// Bidirectional search for plain two-pin connections whose heuristic
    /// is too weak to steer a one-sided search.
    pub bidirectional: bool,
    /// Scale the A* heuristic by the normalized per-net guidance floor
    /// (unit, because multipliers are normalized scale-free per net) instead
    /// of the global `min_guidance` floor — much sharper pruning.
    pub guidance_aware_h: bool,
}

impl RouterConfig {
    /// Starts a builder pre-loaded with the default configuration.
    #[must_use]
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder::default()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// The typed [`RouteConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), RouteConfigError> {
        // Finiteness first: the range checks below then never carry NaN or
        // ±∞ payloads, which keeps `RouteConfigError: Eq` honest.
        for (field, v) in [
            ("via_cost", self.via_cost),
            ("wrong_dir_mult", self.wrong_dir_mult),
            ("present_cost", self.present_cost),
            ("history_increment", f64::from(self.history_increment)),
            ("reuse_discount", self.reuse_discount),
            ("min_guidance", self.min_guidance),
            ("bend_penalty", self.bend_penalty),
        ] {
            if !v.is_finite() {
                return Err(RouteConfigError::NotFinite { field });
            }
        }
        if self.coarsen < 1 {
            return Err(RouteConfigError::Coarsen { got: self.coarsen });
        }
        if self.via_cost <= 0.0 {
            return Err(RouteConfigError::ViaCost { got: self.via_cost });
        }
        if self.wrong_dir_mult < 1.0 {
            return Err(RouteConfigError::WrongDirMult {
                got: self.wrong_dir_mult,
            });
        }
        if self.present_cost < 0.0 || self.history_increment < 0.0 {
            return Err(RouteConfigError::NegativePenalties);
        }
        if !(0.0..=1.0).contains(&self.reuse_discount) {
            return Err(RouteConfigError::ReuseDiscount {
                got: self.reuse_discount,
            });
        }
        if self.min_guidance <= 0.0 {
            return Err(RouteConfigError::MinGuidance {
                got: self.min_guidance,
            });
        }
        if self.max_iterations == 0 {
            return Err(RouteConfigError::MaxIterations);
        }
        if self.bend_penalty < 0.0 {
            return Err(RouteConfigError::BendPenalty {
                got: self.bend_penalty,
            });
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            coarsen: 2,
            via_cost: 3.0,
            wrong_dir_mult: 2.0,
            present_cost: 40.0,
            history_increment: 40.0,
            reuse_discount: 0.2,
            min_guidance: 0.25,
            bend_penalty: 0.5,
            max_iterations: 24,
            enforce_symmetry: true,
            threads: 1,
            open_list: OpenListKind::Bucket,
            bidirectional: true,
            guidance_aware_h: true,
        }
    }
}

/// Fluent builder for [`RouterConfig`]; [`RouterConfigBuilder::build`]
/// validates, so a successfully built config is always usable.
#[derive(Debug, Clone, Default)]
pub struct RouterConfigBuilder {
    cfg: RouterConfig,
}

impl RouterConfigBuilder {
    /// Grid-pitch multiplier over the technology pitch.
    #[must_use]
    pub fn coarsen(mut self, v: i64) -> Self {
        self.cfg.coarsen = v;
        self
    }

    /// Cost of one via hop relative to one planar step.
    #[must_use]
    pub fn via_cost(mut self, v: f64) -> Self {
        self.cfg.via_cost = v;
        self
    }

    /// Multiplier for steps against a layer's preferred direction.
    #[must_use]
    pub fn wrong_dir_mult(mut self, v: f64) -> Self {
        self.cfg.wrong_dir_mult = v;
        self
    }

    /// Immediate penalty for using a node another net occupies.
    #[must_use]
    pub fn present_cost(mut self, v: f64) -> Self {
        self.cfg.present_cost = v;
        self
    }

    /// History added to each conflicted node per negotiation round.
    #[must_use]
    pub fn history_increment(mut self, v: f32) -> Self {
        self.cfg.history_increment = v;
        self
    }

    /// Multiplier for re-walking nodes the net already owns.
    #[must_use]
    pub fn reuse_discount(mut self, v: f64) -> Self {
        self.cfg.reuse_discount = v;
        self
    }

    /// Lower clamp on guidance multipliers.
    #[must_use]
    pub fn min_guidance(mut self, v: f64) -> Self {
        self.cfg.min_guidance = v;
        self
    }

    /// Extra cost per direction change.
    #[must_use]
    pub fn bend_penalty(mut self, v: f64) -> Self {
        self.cfg.bend_penalty = v;
        self
    }

    /// Maximum negotiation rounds.
    #[must_use]
    pub fn max_iterations(mut self, v: u32) -> Self {
        self.cfg.max_iterations = v;
        self
    }

    /// Whether symmetric net pairs are routed by mirroring.
    #[must_use]
    pub fn enforce_symmetry(mut self, v: bool) -> Self {
        self.cfg.enforce_symmetry = v;
        self
    }

    /// Worker threads for the parallel rounds (`0` = auto).
    #[must_use]
    pub fn threads(mut self, v: usize) -> Self {
        self.cfg.threads = v;
        self
    }

    /// Open-list engine for the A* inner loop.
    #[must_use]
    pub fn open_list(mut self, v: OpenListKind) -> Self {
        self.cfg.open_list = v;
        self
    }

    /// Bidirectional search for weakly-guided two-pin connections.
    #[must_use]
    pub fn bidirectional(mut self, v: bool) -> Self {
        self.cfg.bidirectional = v;
        self
    }

    /// Per-net guidance-aware heuristic scaling.
    #[must_use]
    pub fn guidance_aware_h(mut self, v: bool) -> Self {
        self.cfg.guidance_aware_h = v;
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// The typed [`RouteConfigError`] naming the first offending field.
    pub fn build(self) -> Result<RouterConfig, RouteConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A nonsensical [`RouterConfig`] field, found by validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteConfigError {
    /// A float field is NaN or infinite.
    NotFinite {
        /// The offending field.
        field: &'static str,
    },
    /// `coarsen` below 1.
    Coarsen {
        /// The rejected value.
        got: i64,
    },
    /// Non-positive `via_cost`.
    ViaCost {
        /// The rejected value.
        got: f64,
    },
    /// `wrong_dir_mult` below 1.
    WrongDirMult {
        /// The rejected value.
        got: f64,
    },
    /// Negative `present_cost` or `history_increment`.
    NegativePenalties,
    /// `reuse_discount` outside `[0, 1]`.
    ReuseDiscount {
        /// The rejected value.
        got: f64,
    },
    /// Non-positive `min_guidance`.
    MinGuidance {
        /// The rejected value.
        got: f64,
    },
    /// Zero `max_iterations`.
    MaxIterations,
    /// Negative `bend_penalty`.
    BendPenalty {
        /// The rejected value.
        got: f64,
    },
}

// Payload floats are guaranteed finite: `validate` rejects non-finite
// fields with the payload-free `NotFinite` variant before any range check.
impl Eq for RouteConfigError {}

impl fmt::Display for RouteConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteConfigError::NotFinite { field } => {
                write!(f, "router config field `{field}` must be finite")
            }
            RouteConfigError::Coarsen { got } => {
                write!(f, "coarsen must be >= 1, got {got}")
            }
            RouteConfigError::ViaCost { got } => {
                write!(f, "via_cost must be positive, got {got}")
            }
            RouteConfigError::WrongDirMult { got } => {
                write!(f, "wrong_dir_mult must be >= 1, got {got}")
            }
            RouteConfigError::NegativePenalties => {
                write!(f, "congestion penalties must be non-negative")
            }
            RouteConfigError::ReuseDiscount { got } => {
                write!(f, "reuse_discount must be in [0, 1], got {got}")
            }
            RouteConfigError::MinGuidance { got } => {
                write!(f, "min_guidance must be positive, got {got}")
            }
            RouteConfigError::MaxIterations => {
                write!(f, "max_iterations must be at least 1")
            }
            RouteConfigError::BendPenalty { got } => {
                write!(f, "bend_penalty must be non-negative, got {got}")
            }
        }
    }
}

impl std::error::Error for RouteConfigError {}

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// A net could not be connected at all (hard obstacles).
    Unroutable {
        /// The failing net.
        net: NetId,
        /// Net name for diagnostics.
        name: String,
    },
    /// The router configuration failed validation.
    Config(RouteConfigError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { net, name } => {
                write!(f, "net `{name}` ({net}) cannot be routed")
            }
            RouteError::Config(e) => write!(f, "invalid router configuration: {e}"),
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouteConfigError> for RouteError {
    fn from(e: RouteConfigError) -> Self {
        RouteError::Config(e)
    }
}

/// Per-net route state during negotiation.
#[derive(Debug, Clone, Default)]
struct NetRoute {
    nodes: HashSet<u32>,
    edges: HashSet<(u32, u32)>,
}

/// One unit of routing work: a lone net or a mirrored pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Single(NetId),
    Pair(NetId, NetId),
}

impl Task {
    fn members(self) -> [Option<NetId>; 2] {
        match self {
            Task::Single(n) => [Some(n), None],
            Task::Pair(a, b) => [Some(a), Some(b)],
        }
    }

    fn contains(self, n: NetId) -> bool {
        self.members().contains(&Some(n))
    }
}

/// Result of routing one task during a parallel round.
enum TaskOutcome {
    /// Routes per member net, in member order.
    Routed(Vec<(NetId, NetRoute)>),
    /// The task cannot be routed even ignoring congestion.
    Unroutable(RouteError),
    /// The task panicked (fault injection / bugs): its nets fall back to
    /// sequential routing on the merged grid, after all healthy commits.
    Faulted(String),
}

thread_local! {
    /// Per-worker search scratch. `afrt` scopes its workers per `par_map`
    /// call, so these are re-initialized each round — still a win, because
    /// every net a worker routes within a round reuses one allocation.
    static BUFFERS: RefCell<SearchBuffers> = RefCell::new(SearchBuffers::default());
}

/// A routing session: a validated configuration plus the worker runtime.
///
/// Build one per configuration and reuse it across layouts — validation and
/// thread-pool setup happen once, in [`Router::new`].
///
/// # Examples
///
/// ```no_run
/// use af_route::{Router, RouterConfig, RoutingGuidance};
/// # fn demo(circuit: &af_netlist::Circuit, placement: &af_place::Placement,
/// #         tech: &af_tech::Technology) -> Result<(), af_route::RouteError> {
/// let router = Router::new(RouterConfig::builder().threads(4).build()?)?;
/// let layout = router.route(circuit, placement, tech, &RoutingGuidance::None)?;
/// # let _ = layout; Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    cfg: RouterConfig,
    runtime: afrt::Runtime,
}

impl Router {
    /// Creates a session from `cfg`, validating it first.
    ///
    /// # Errors
    ///
    /// [`RouteConfigError`] when the configuration is nonsensical.
    pub fn new(cfg: RouterConfig) -> Result<Self, RouteConfigError> {
        cfg.validate()?;
        let runtime = afrt::Runtime::with_threads(cfg.threads);
        Ok(Self { cfg, runtime })
    }

    /// The validated configuration this session routes with.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Resolved worker count (after `0` = auto resolution).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.runtime.threads()
    }

    /// Routes a placed circuit.
    ///
    /// Without guidance this is the MagicalRoute baseline; with guidance it
    /// is the paper's guided analog detailed routing. The layout is
    /// bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// [`RouteError::Unroutable`] when a net has no feasible path even
    /// ignoring congestion (hard blockage).
    pub fn route(
        &self,
        circuit: &Circuit,
        placement: &Placement,
        tech: &Technology,
        guidance: &RoutingGuidance,
    ) -> Result<RoutedLayout, RouteError> {
        let cfg = &self.cfg;
        let t0 = Instant::now();
        let _route = af_obs::span!("route");
        let mut grid = RoutingGrid::new(circuit, placement, tech, cfg.coarsen);
        let aps = PinAccessMap::extract(circuit, placement, &mut grid);
        let tasks = build_tasks(circuit, &grid, &aps, cfg);
        af_obs::counter("route.tasks", tasks.len() as u64);

        let debug = std::env::var_os("AF_ROUTE_DEBUG").is_some();
        let mut routes: HashMap<u32, NetRoute> = HashMap::new();
        // Every task is uncommitted at first; later rounds only re-route
        // the contested ones. Indices stay sorted — task order is the merge
        // order, and the determinism contract hangs off it.
        let mut pending: Vec<usize> = (0..tasks.len()).collect();
        let mut rounds: u32 = 0;
        // Parallel selfish rounds can oscillate near convergence: two
        // contested tasks each avoid the other's *stale* path and land in
        // the same fresh channel, forever. Once a round stops strictly
        // shrinking the conflict set (or the tail is too small to be worth
        // fanning out), latch into sequential rounds on the live grid —
        // exactly the legacy negotiation, which sees fresh claims within
        // the round. The latch depends only on deterministic conflict
        // counts, so layouts stay thread-count independent.
        let mut prev_conflicts = usize::MAX;
        let mut sequential_tail = false;
        while !pending.is_empty() && rounds < cfg.max_iterations {
            rounds += 1;
            af_obs::counter("route.rounds", 1);

            if sequential_tail || pending.len() <= 2 {
                af_obs::counter("route.sequential_rounds", 1);
                for &ti in &pending {
                    for member in tasks[ti].members().into_iter().flatten() {
                        grid.release_net(member);
                        routes.remove(&(member.index() as u32));
                    }
                }
                BUFFERS.with(|b| {
                    let mut buffers = b.borrow_mut();
                    for &ti in &pending {
                        route_task(
                            circuit,
                            &mut grid,
                            &aps,
                            guidance,
                            cfg,
                            tasks[ti],
                            &mut routes,
                            &mut buffers,
                        )?;
                    }
                    Ok::<(), RouteError>(())
                })?;
            } else {
                // --- Parallel phase: read-only snapshot + per-task overlay. ---
                let outcomes = self.round(circuit, &grid, &aps, guidance, &tasks, &pending);

                // --- Deterministic merge, in task order. ---
                // Release every pending task's previous-round claims: they were
                // visible to the other searches as stale present costs, but the
                // new routes replace them wholesale.
                for &ti in &pending {
                    for member in tasks[ti].members().into_iter().flatten() {
                        grid.release_net(member);
                        routes.remove(&(member.index() as u32));
                    }
                }
                let mut faulted: Vec<usize> = Vec::new();
                let mut unroutable: Option<RouteError> = None;
                for (k, outcome) in outcomes.into_iter().enumerate() {
                    match outcome {
                        TaskOutcome::Routed(rs) => {
                            for (net, r) in rs {
                                for &n in &r.nodes {
                                    // May fail on contested nodes — negotiation
                                    // resolves those next round.
                                    grid.claim(n as usize, net);
                                }
                                routes.insert(net.index() as u32, r);
                            }
                        }
                        TaskOutcome::Unroutable(e) => {
                            // Keep the first failure in task order for a
                            // deterministic error, but finish the merge scan.
                            if unroutable.is_none() {
                                unroutable = Some(e);
                            }
                        }
                        TaskOutcome::Faulted(msg) => {
                            af_obs::counter("route.task_panics", 1);
                            if debug {
                                eprintln!("round {rounds}: task {} faulted: {msg}", pending[k]);
                            }
                            faulted.push(pending[k]);
                        }
                    }
                }
                if let Some(e) = unroutable {
                    return Err(e);
                }
                // --- Supervised degradation: faulted tasks re-route
                // sequentially on the merged grid. ---
                if !faulted.is_empty() {
                    af_obs::counter("route.sequential_fallbacks", faulted.len() as u64);
                    BUFFERS.with(|b| {
                        let mut buffers = b.borrow_mut();
                        for &ti in &faulted {
                            route_task(
                                circuit,
                                &mut grid,
                                &aps,
                                guidance,
                                cfg,
                                tasks[ti],
                                &mut routes,
                                &mut buffers,
                            )?;
                        }
                        Ok::<(), RouteError>(())
                    })?;
                }
            }

            // --- Conflict detection & escalation. ---
            let conflicts = conflicted_nodes(&grid, &routes);
            if conflicts.is_empty() {
                pending.clear();
                break;
            }
            if conflicts.len() >= prev_conflicts {
                sequential_tail = true;
            }
            prev_conflicts = conflicts.len();
            af_obs::counter("route.conflict_nodes", conflicts.len() as u64);
            if debug {
                for (&node, users) in &conflicts {
                    let g = grid.dim().from_flat(node as usize);
                    eprintln!(
                        "round {rounds}: conflict at {g} {} users={:?} hist={}",
                        grid.node_dbu(node as usize),
                        users
                            .iter()
                            .map(|&u| circuit.net(NetId::new(u)).name.clone())
                            .collect::<Vec<_>>(),
                        grid.history(node as usize),
                    );
                }
            }
            // PathFinder semantics: every user of a contested node is ripped
            // up, the owner included — otherwise a trespasser whose only
            // passage is a node the owner sits on (e.g. a shared pin escape
            // column) deadlocks. History bumps commute, so the HashMap
            // iteration order cannot leak into results.
            let mut victims: HashSet<u32> = HashSet::new();
            for (&node, users) in &conflicts {
                grid.bump_history(node as usize, cfg.history_increment);
                for &u in users {
                    victims.insert(u);
                }
            }
            pending = (0..tasks.len())
                .filter(|&ti| victims.iter().any(|&v| tasks[ti].contains(NetId::new(v))))
                .collect();
            af_obs::counter("route.victims_ripped", pending.len() as u64);
        }

        // Post-process each net: prune stubs, release pruned nodes, compress.
        let mut nets = Vec::new();
        let mut pruned: u64 = 0;
        for (i, _) in circuit.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            let Some(r) = routes.get_mut(&(i as u32)) else {
                continue;
            };
            let pin_nodes: HashSet<u32> = aps
                .of_net(id)
                .iter()
                .map(|ap| grid.dim().flat_index(ap.node) as u32)
                .collect();
            let kept = post::prune_stubs(&mut r.edges, &pin_nodes);
            for &n in r.nodes.iter() {
                if !kept.contains(&n)
                    && grid.owner(n as usize) == Some(id)
                    && !grid.is_pin(n as usize)
                {
                    grid.force_free(n as usize);
                    pruned += 1;
                }
            }
            r.nodes = kept;
            let segments = post::edges_to_segments(grid.dim(), &r.edges);
            nets.push(RoutedNet::from_segments(id, segments));
        }

        let runtime_s = t0.elapsed().as_secs_f64();
        af_obs::counter("route.drc_fixes", pruned);
        af_obs::counter("route.nets_routed", nets.len() as u64);
        if runtime_s > 0.0 {
            af_obs::counter(
                "route.nets_per_sec",
                (nets.len() as f64 / runtime_s).round() as u64,
            );
        }

        Ok(RoutedLayout {
            nets,
            iterations: rounds.max(1),
            conflicts: conflicted_nodes(&grid, &routes).len() as u32,
            runtime_s,
        })
    }

    /// Routes `pending` tasks concurrently against the immutable `grid`
    /// snapshot. Outcomes are ordered like `pending` regardless of worker
    /// interleaving, and a panic in one task is contained to that task.
    fn round(
        &self,
        circuit: &Circuit,
        grid: &RoutingGrid,
        aps: &PinAccessMap,
        guidance: &RoutingGuidance,
        tasks: &[Task],
        pending: &[usize],
    ) -> Vec<TaskOutcome> {
        let cfg = &self.cfg;
        let run = |_k: usize, ti: &usize| -> TaskOutcome {
            let ti = *ti;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                af_fault::fail!("route.task", key = ti as u64);
                BUFFERS.with(|b| {
                    let mut buffers = b.borrow_mut();
                    route_task_on_view(circuit, grid, aps, guidance, cfg, tasks[ti], &mut buffers)
                })
            }));
            match result {
                Ok(Ok(rs)) => TaskOutcome::Routed(rs),
                Ok(Err(e)) => TaskOutcome::Unroutable(e),
                Err(payload) => TaskOutcome::Faulted(afrt::panic_message(payload.as_ref())),
            }
        };
        if self.runtime.threads() <= 1 || pending.len() <= 1 {
            // Inline fast path: same closure, same outcomes, no workers.
            return pending
                .iter()
                .enumerate()
                .map(|(k, ti)| run(k, ti))
                .collect();
        }
        match self.runtime.par_map(pending, run) {
            Ok(outcomes) => outcomes,
            // Unreachable in practice (panics are caught inside the task),
            // but degrade to the inline path rather than give up the round.
            Err(_) => pending
                .iter()
                .enumerate()
                .map(|(k, ti)| run(k, ti))
                .collect(),
        }
    }
}

/// Routes a placed circuit (deprecated free-function shim).
///
/// # Errors
///
/// [`RouteError::Config`] when `cfg` fails validation, otherwise whatever
/// [`Router::route`] returns.
#[deprecated(
    since = "0.2.0",
    note = "build a `Router` session instead: `Router::new(cfg.clone())?.route(circuit, placement, tech, guidance)`"
)]
pub fn route(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    guidance: &RoutingGuidance,
    cfg: &RouterConfig,
) -> Result<RoutedLayout, RouteError> {
    let router = Router::new(cfg.clone())?;
    router.route(circuit, placement, tech, guidance)
}

/// Builds the work list: symmetric pairs first (so the mirror corridor is
/// free), then remaining nets by descending weight; supplies last.
fn build_tasks(
    circuit: &Circuit,
    grid: &RoutingGrid,
    aps: &PinAccessMap,
    cfg: &RouterConfig,
) -> Vec<Task> {
    let mut tasks: Vec<Task> = Vec::new();
    let mut in_pair = vec![false; circuit.nets().len()];
    if cfg.enforce_symmetry {
        for &(a, b) in circuit.symmetric_net_pairs() {
            // A pair is only routable by mirroring when the two AP sets are
            // exact mirror images AND net `a` lives strictly left of the
            // axis (mirrored routing confines each net to its half-plane, so
            // cross-axis pairs fall back to independent routing).
            if !aps_mirror(grid, aps, a, b) || !one_sided(grid, aps, a) {
                continue;
            }
            if aps.of_net(a).len() >= 2 || aps.of_net(b).len() >= 2 {
                tasks.push(Task::Pair(a, b));
            }
            in_pair[a.index()] = true;
            in_pair[b.index()] = true;
        }
    }
    let mut singles: Vec<NetId> = Vec::new();
    for (i, &paired) in in_pair.iter().enumerate() {
        let id = NetId::new(i as u32);
        if paired || aps.of_net(id).len() < 2 {
            continue;
        }
        singles.push(id);
    }
    let priority = |n: NetId| {
        let net = circuit.net(n);
        if net.ty.is_supply() {
            -1.0
        } else {
            net.weight
        }
    };
    singles.sort_by(|&a, &b| {
        priority(b)
            .partial_cmp(&priority(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    tasks.extend(singles.into_iter().map(Task::Single));
    tasks
}

/// Whether every AP of `a` lies strictly left of the symmetry axis.
fn one_sided(grid: &RoutingGrid, aps: &PinAccessMap, a: NetId) -> bool {
    aps.of_net(a).iter().all(|ap| ap.node.x < grid.axis_col())
}

/// Whether the AP sets of `a` and `b` are exact mirror images.
fn aps_mirror(grid: &RoutingGrid, aps: &PinAccessMap, a: NetId, b: NetId) -> bool {
    let an = aps.of_net(a);
    let bn = aps.of_net(b);
    if an.len() != bn.len() {
        return false;
    }
    an.iter().all(|ap| {
        grid.mirror(ap.node)
            .map(|m| bn.iter().any(|bp| bp.node == m))
            .unwrap_or(false)
    })
}

/// Map from contested node to the nets using it (only nodes with >1 user).
fn conflicted_nodes(grid: &RoutingGrid, routes: &HashMap<u32, NetRoute>) -> HashMap<u32, Vec<u32>> {
    let mut users: HashMap<u32, Vec<u32>> = HashMap::new();
    for (&net, r) in routes {
        for &n in &r.nodes {
            // A node "belongs" to its owner; other users make it contested.
            if grid.owner(n as usize) != Some(NetId::new(net)) || users.contains_key(&n) {
                users.entry(n).or_default().push(net);
            }
        }
    }
    // Re-scan to attach owners of contested nodes.
    let mut conflicts: HashMap<u32, Vec<u32>> = HashMap::new();
    for (&node, extra) in &users {
        let mut all = extra.clone();
        if let Some(owner) = grid.owner(node as usize) {
            let raw = owner.index() as u32;
            if !all.contains(&raw) {
                all.push(raw);
            }
        }
        if all.len() > 1 {
            conflicts.insert(node, all);
        }
    }
    conflicts
}

/// Routes one task against a private [`TaskView`] of the shared grid,
/// returning its members' routes in member order.
fn route_task_on_view(
    circuit: &Circuit,
    base: &RoutingGrid,
    aps: &PinAccessMap,
    guidance: &RoutingGuidance,
    cfg: &RouterConfig,
    task: Task,
    buffers: &mut SearchBuffers,
) -> Result<Vec<(NetId, NetRoute)>, RouteError> {
    let mut view = TaskView::new(base, task.members());
    let mut routes: HashMap<u32, NetRoute> = HashMap::new();
    route_task(
        circuit,
        &mut view,
        aps,
        guidance,
        cfg,
        task,
        &mut routes,
        buffers,
    )?;
    let mut out = Vec::new();
    for member in task.members().into_iter().flatten() {
        if let Some(r) = routes.remove(&(member.index() as u32)) {
            out.push((member, r));
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn route_task<G: GridView>(
    circuit: &Circuit,
    grid: &mut G,
    aps: &PinAccessMap,
    guidance: &RoutingGuidance,
    cfg: &RouterConfig,
    task: Task,
    routes: &mut HashMap<u32, NetRoute>,
    buffers: &mut SearchBuffers,
) -> Result<(), RouteError> {
    match task {
        Task::Single(net) => {
            let r = route_net(circuit, grid, aps, guidance, cfg, net, None, false, buffers)?;
            routes.insert(net.index() as u32, r);
        }
        Task::Pair(a, b) => {
            let ra = route_net(circuit, grid, aps, guidance, cfg, a, Some(b), true, buffers)?;
            // Mirror a's geometry onto b.
            let mut rb = NetRoute::default();
            for &n in &ra.nodes {
                let g = grid.dim().from_flat(n as usize);
                if let Some(m) = grid.mirror(g) {
                    let mi = grid.dim().flat_index(m) as u32;
                    grid.claim_node(mi as usize, b);
                    rb.nodes.insert(mi);
                }
            }
            for &(x, y) in &ra.edges {
                let gx = grid.dim().from_flat(x as usize);
                let gy = grid.dim().from_flat(y as usize);
                if let (Some(mx), Some(my)) = (grid.mirror(gx), grid.mirror(gy)) {
                    let ix = grid.dim().flat_index(mx) as u32;
                    let iy = grid.dim().flat_index(my) as u32;
                    rb.edges.insert((ix.min(iy), ix.max(iy)));
                }
            }
            // Ensure every AP of b is attached (stitch if mirroring missed).
            let missing: Vec<u32> = aps
                .of_net(b)
                .iter()
                .map(|ap| grid.dim().flat_index(ap.node) as u32)
                .filter(|n| !rb.nodes.contains(n))
                .collect();
            if !missing.is_empty() || rb.nodes.is_empty() {
                let stitched = route_net(
                    circuit,
                    grid,
                    aps,
                    guidance,
                    cfg,
                    b,
                    Some(a),
                    false,
                    buffers,
                )?;
                rb.nodes.extend(stitched.nodes);
                rb.edges.extend(stitched.edges);
            }
            routes.insert(a.index() as u32, ra);
            routes.insert(b.index() as u32, rb);
        }
    }
    Ok(())
}

/// Routes one net: connects all its access points into a single tree.
#[allow(clippy::too_many_arguments)]
fn route_net<G: GridView>(
    circuit: &Circuit,
    grid: &mut G,
    aps: &PinAccessMap,
    guidance: &RoutingGuidance,
    cfg: &RouterConfig,
    net: NetId,
    mirror_net: Option<NetId>,
    enforce_mirror: bool,
    buffers: &mut SearchBuffers,
) -> Result<NetRoute, RouteError> {
    let mut route = NetRoute::default();
    // Seed the tree with anything the net already owns (pins at minimum).
    let ap_nodes: Vec<u32> = aps
        .of_net(net)
        .iter()
        .map(|ap| grid.dim().flat_index(ap.node) as u32)
        .collect();
    if ap_nodes.is_empty() {
        return Ok(route);
    }
    route.nodes.insert(ap_nodes[0]);
    let mut remaining: Vec<u32> = ap_nodes[1..].to_vec();
    // Sort remaining pins by distance to the seed for stable Steiner growth.
    let seed = grid.dim().from_flat(ap_nodes[0] as usize);
    remaining.sort_by_key(|&n| grid.dim().from_flat(n as usize).manhattan(seed));

    while !remaining.is_empty() {
        // Sorted sources: `route.nodes` is a HashSet whose iteration order
        // is seeded per instance, and the bucket open list pops LIFO within
        // a bucket — push order must not leak into results.
        let mut sources: Vec<usize> = route.nodes.iter().map(|&n| n as usize).collect();
        sources.sort_unstable();
        let targets: Vec<usize> = remaining.iter().map(|&n| n as usize).collect();
        let step = StepCost {
            grid: &*grid,
            guidance,
            guidance_norm: guidance.scale_floor(net).recip(),
            cfg,
            net,
            mirror_net,
            enforce_mirror,
        };
        let Some(found) = search(&step, &sources, &targets, buffers) else {
            return Err(RouteError::Unroutable {
                net,
                name: circuit.net(net).name.clone(),
            });
        };
        // Claim and record the path.
        let mut prev: Option<u32> = None;
        for &n in &found.nodes {
            let n32 = n as u32;
            grid.claim_node(n, net); // may fail on contested nodes — negotiation handles it
            route.nodes.insert(n32);
            if let Some(p) = prev {
                route.edges.insert((p.min(n32), p.max(n32)));
            }
            prev = Some(n32);
        }
        let reached = *found.nodes.last().expect("path has nodes") as u32;
        remaining.retain(|&r| r != reached);
    }
    Ok(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    fn route_with(circuit: &Circuit, p: &Placement, cfg: RouterConfig) -> RoutedLayout {
        Router::new(cfg)
            .unwrap()
            .route(circuit, p, &Technology::nm40(), &RoutingGuidance::None)
            .unwrap()
    }

    fn routed(circuit: &Circuit) -> RoutedLayout {
        let p = place(circuit, PlacementVariant::A);
        route_with(circuit, &p, RouterConfig::default())
    }

    #[test]
    fn ota1_routes_clean() {
        let c = benchmarks::ota1();
        let layout = routed(&c);
        assert!(layout.is_clean(), "{} conflicts", layout.conflicts);
        assert!(layout.total_wirelength() > 0);
        // every routable net present
        for (i, net) in c.nets().iter().enumerate() {
            if net.is_routable() {
                assert!(
                    layout.net(NetId::new(i as u32)).is_some(),
                    "net `{}` missing",
                    net.name
                );
            }
        }
    }

    #[test]
    fn ota3_routes() {
        let c = benchmarks::ota3();
        let layout = routed(&c);
        assert!(
            layout.conflicts <= 2,
            "too many conflicts: {}",
            layout.conflicts
        );
        assert!(layout.total_vias() > 0, "multilayer design should use vias");
    }

    #[test]
    fn symmetric_nets_have_mirrored_wirelength() {
        let c = benchmarks::ota1();
        let layout = routed(&c);
        for &(a, b) in c.symmetric_net_pairs() {
            let (ra, rb) = (layout.net(a), layout.net(b));
            if let (Some(ra), Some(rb)) = (ra, rb) {
                // mirroring implies identical wirelength when no stitching was
                // needed; allow a small tolerance for stitches
                let (wa, wb) = (ra.wirelength as f64, rb.wirelength as f64);
                let rel = (wa - wb).abs() / wa.max(wb).max(1.0);
                assert!(rel < 0.35, "{}: {} vs {}", c.net(a).name, wa, wb);
            }
        }
    }

    #[test]
    fn deterministic() {
        let c = benchmarks::ota2();
        let p = place(&c, PlacementVariant::B);
        let l1 = route_with(&c, &p, RouterConfig::default());
        let l2 = route_with(&c, &p, RouterConfig::default());
        assert_eq!(l1.nets, l2.nets);
    }

    #[test]
    fn thread_count_does_not_change_layout() {
        let c = benchmarks::ota3();
        let p = place(&c, PlacementVariant::A);
        let base = route_with(&c, &p, RouterConfig::default());
        for threads in [2, 4, 8] {
            let cfg = RouterConfig::builder().threads(threads).build().unwrap();
            let l = route_with(&c, &p, cfg);
            assert_eq!(
                base.nets, l.nets,
                "{threads}-thread layout must be bit-identical to 1-thread"
            );
            assert_eq!(base.conflicts, l.conflicts);
        }
    }

    #[test]
    fn open_list_engines_route_equivalently() {
        // Different engines may legally differ on cost ties, but both must
        // converge to clean layouts of comparable quality.
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let bucket = route_with(
            &c,
            &p,
            RouterConfig::builder()
                .open_list(OpenListKind::Bucket)
                .build()
                .unwrap(),
        );
        let heap = route_with(
            &c,
            &p,
            RouterConfig::builder()
                .open_list(OpenListKind::Heap)
                .build()
                .unwrap(),
        );
        assert!(bucket.is_clean() && heap.is_clean());
        let (wb, wh) = (
            bucket.total_wirelength() as f64,
            heap.total_wirelength() as f64,
        );
        assert!(
            (wb - wh).abs() / wb.max(wh) < 0.2,
            "engines diverged: {wb} vs {wh}"
        );
    }

    #[test]
    fn guidance_changes_routing() {
        use crate::guidance::NonUniformGuidance;
        use af_geom::CostTriple;

        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let router = Router::new(RouterConfig::default()).unwrap();
        let base = router.route(&c, &p, &t, &RoutingGuidance::None).unwrap();

        let mut g = NonUniformGuidance::new();
        // make vertical routing very expensive for the output net
        let vout = c.net_by_name("vout").unwrap();
        for pin in p.pins_of_net(vout) {
            let center = pin.rect.center();
            g.set(
                vout,
                af_geom::Point3::new(center.x, center.y, pin.layer),
                CostTriple([1.0, 8.0, 4.0]),
            );
        }
        let guided = router
            .route(&c, &p, &t, &RoutingGuidance::NonUniform(g))
            .unwrap();
        assert_ne!(
            base.net(vout).map(|n| &n.segments),
            guided.net(vout).map(|n| &n.segments),
            "strong guidance should alter the route"
        );
    }

    #[test]
    fn default_config_is_valid() {
        RouterConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_validates_on_build() {
        let cfg = RouterConfig::builder()
            .threads(3)
            .via_cost(5.0)
            .bidirectional(false)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.via_cost, 5.0);
        assert!(!cfg.bidirectional);

        let err = RouterConfig::builder().coarsen(0).build().unwrap_err();
        assert_eq!(err, RouteConfigError::Coarsen { got: 0 });
        assert!(Router::new(RouterConfig::default()).is_ok());
    }

    #[test]
    fn router_new_rejects_bad_config() {
        let cfg = RouterConfig {
            min_guidance: 0.0,
            ..Default::default()
        };
        let err = Router::new(cfg).unwrap_err();
        assert_eq!(err, RouteConfigError::MinGuidance { got: 0.0 });
        // and the error folds into RouteError for the shim path
        let re: RouteError = err.into();
        assert!(re.to_string().contains("min_guidance"));
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let cases: Vec<(RouterConfig, &str)> = vec![
            (
                RouterConfig {
                    coarsen: 0,
                    ..RouterConfig::default()
                },
                "coarsen",
            ),
            (
                RouterConfig {
                    via_cost: 0.0,
                    ..RouterConfig::default()
                },
                "via_cost",
            ),
            (
                RouterConfig {
                    via_cost: f64::NAN,
                    ..RouterConfig::default()
                },
                "via_cost",
            ),
            (
                RouterConfig {
                    wrong_dir_mult: 0.5,
                    ..RouterConfig::default()
                },
                "wrong_dir_mult",
            ),
            (
                RouterConfig {
                    present_cost: -1.0,
                    ..RouterConfig::default()
                },
                "penalties",
            ),
            (
                RouterConfig {
                    reuse_discount: 2.0,
                    ..RouterConfig::default()
                },
                "reuse_discount",
            ),
            (
                RouterConfig {
                    min_guidance: 0.0,
                    ..RouterConfig::default()
                },
                "min_guidance",
            ),
            (
                RouterConfig {
                    max_iterations: 0,
                    ..RouterConfig::default()
                },
                "max_iterations",
            ),
            (
                RouterConfig {
                    bend_penalty: -0.1,
                    ..RouterConfig::default()
                },
                "bend_penalty",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_route_shim_matches_session() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let cfg = RouterConfig::default();
        let via_shim = route(&c, &p, &t, &RoutingGuidance::None, &cfg).unwrap();
        let via_session = Router::new(cfg)
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        assert_eq!(via_shim.nets, via_session.nets);

        // invalid config surfaces as RouteError::Config through the shim
        let bad = RouterConfig {
            max_iterations: 0,
            ..RouterConfig::default()
        };
        let err = route(&c, &p, &t, &RoutingGuidance::None, &bad).unwrap_err();
        assert!(matches!(err, RouteError::Config(_)));
    }

    #[test]
    fn report_renders_all_nets() {
        let c = benchmarks::ota1();
        let layout = routed(&c);
        let report = layout.report(&c);
        assert!(report.contains("vout"));
        assert!(report.contains("TOTAL"));
        assert!(report.lines().count() >= layout.nets.len() + 2);
    }

    #[test]
    fn bend_penalty_reduces_bends() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let count_bends = |layout: &RoutedLayout| -> usize {
            // planar segments per net minus one approximates bend count
            layout
                .nets
                .iter()
                .map(|n| {
                    n.segments
                        .iter()
                        .filter(|s| !s.is_via())
                        .count()
                        .saturating_sub(1)
                })
                .sum()
        };
        let straight = route_with(
            &c,
            &p,
            RouterConfig {
                bend_penalty: 3.0,
                ..RouterConfig::default()
            },
        );
        let free = route_with(
            &c,
            &p,
            RouterConfig {
                bend_penalty: 0.0,
                ..RouterConfig::default()
            },
        );
        assert!(
            count_bends(&straight) <= count_bends(&free),
            "bend penalty must not increase bends: {} vs {}",
            count_bends(&straight),
            count_bends(&free)
        );
    }

    #[test]
    fn disabling_symmetry_still_routes() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let cfg = RouterConfig {
            enforce_symmetry: false,
            ..RouterConfig::default()
        };
        let layout = route_with(&c, &p, cfg);
        assert!(layout.is_clean());
    }

    #[test]
    fn faulted_task_degrades_to_sequential() {
        // Arm a one-shot panic inside the first route task; the round must
        // absorb it, re-route the victim sequentially on the merged grid,
        // and still converge to a clean, complete layout.
        let _guard = af_fault::scenario();
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);

        af_fault::arm_spec("route.task:panic:1.0:1").unwrap();
        let faulted = route_with(&c, &p, RouterConfig::default());
        let stats = af_fault::stats("route.task").expect("failpoint armed");
        af_fault::disarm_all();
        assert!(stats.fires >= 1, "failpoint should have fired");
        assert!(faulted.is_clean(), "{} conflicts", faulted.conflicts);
        for (i, net) in c.nets().iter().enumerate() {
            if net.is_routable() {
                assert!(
                    faulted.net(NetId::new(i as u32)).is_some(),
                    "net `{}` missing after fault degradation",
                    net.name
                );
            }
        }
    }
}
