//! The 3-D routing grid: geometry, occupancy, obstacles, and mirror math.

use af_geom::{GridDim, GridPoint, Point, Point3};
use af_netlist::{Circuit, DeviceKind, NetId};
use af_place::Placement;
use af_tech::Technology;

/// Occupancy encoding: `FREE`, `BLOCKED`, or `NET_BASE + net index`.
const FREE: u32 = u32::MAX;
const BLOCKED: u32 = u32::MAX - 1;

/// The routing grid of one placement: node occupancy, history costs, pin
/// flags, and the symmetry-mirror transform.
///
/// Nodes are indexed by [`GridDim::flat_index`]. Layer 0 is M1.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    dim: GridDim,
    /// Primary owner per node (`FREE`, `BLOCKED`, or net index).
    occ: Vec<u32>,
    /// Negotiated-routing history cost per node.
    history: Vec<f32>,
    /// Nodes that are pin access points (impassable for other nets).
    is_pin: Vec<bool>,
    /// Grid column of the symmetry axis.
    axis_col: u32,
    layer_pitch: i64,
}

impl RoutingGrid {
    /// Builds a grid covering the placement's die.
    ///
    /// `coarsen` multiplies the technology grid pitch (1 = full density). The
    /// grid origin is aligned so the symmetry axis falls exactly on a grid
    /// column, making mirroring exact.
    ///
    /// Obstacles: every device footprint blocks M1 (capacitors additionally
    /// block M2, as MOM caps consume low metal).
    pub fn new(circuit: &Circuit, placement: &Placement, tech: &Technology, coarsen: i64) -> Self {
        assert!(coarsen >= 1, "coarsen must be >= 1");
        let pitch = tech.grid_pitch() * coarsen;
        let die = placement.die();
        let axis = placement.axis_x();

        // Align origin.x so that the axis is on a grid column.
        let cols_left = (axis - die.lo().x) / pitch;
        let origin_x = axis - cols_left * pitch;
        let origin = Point::new(origin_x, die.lo().y);
        let nx = ((die.hi().x - origin_x) / pitch + 1).max(2) as u32;
        let ny = ((die.hi().y - origin.y) / pitch + 1).max(2) as u32;
        let layers = tech.num_layers();
        let dim = GridDim::new(origin, nx, ny, layers, pitch);

        let mut grid = Self {
            dim,
            occ: vec![FREE; dim.len()],
            history: vec![0.0; dim.len()],
            is_pin: vec![false; dim.len()],
            axis_col: cols_left as u32,
            layer_pitch: tech.layer_pitch(),
        };

        // Device obstacles.
        for (i, rect) in placement.device_rects().iter().enumerate() {
            let kind = circuit.devices()[i].kind;
            let keepout = tech.rules().device_keepout;
            let r = rect.expanded(keepout);
            let max_layer: u8 = if kind == DeviceKind::Capacitor { 1 } else { 0 };
            for l in 0..=max_layer {
                grid.block_rect(&r, l);
            }
        }
        grid
    }

    fn block_rect(&mut self, r: &af_geom::Rect, layer: u8) {
        let (x0, y0) = self.cell_floor(r.lo());
        let (x1, y1) = self.cell_ceil(r.hi());
        for y in y0..=y1.min(self.dim.ny() as i64 - 1) {
            for x in x0..=x1.min(self.dim.nx() as i64 - 1) {
                if x < 0 || y < 0 {
                    continue;
                }
                let g = GridPoint::new(x as u32, y as u32, layer);
                let idx = self.dim.flat_index(g);
                self.occ[idx] = BLOCKED;
            }
        }
    }

    fn cell_floor(&self, p: Point) -> (i64, i64) {
        (
            (p.x - self.dim.origin().x).div_euclid(self.dim.pitch()),
            (p.y - self.dim.origin().y).div_euclid(self.dim.pitch()),
        )
    }

    fn cell_ceil(&self, p: Point) -> (i64, i64) {
        (
            (p.x - self.dim.origin().x + self.dim.pitch() - 1).div_euclid(self.dim.pitch()),
            (p.y - self.dim.origin().y + self.dim.pitch() - 1).div_euclid(self.dim.pitch()),
        )
    }

    /// Grid dimensions.
    pub fn dim(&self) -> &GridDim {
        &self.dim
    }

    /// dbu-per-layer-hop used in cost-aware distances.
    pub fn layer_pitch(&self) -> i64 {
        self.layer_pitch
    }

    /// Grid column of the symmetry axis.
    pub fn axis_col(&self) -> u32 {
        self.axis_col
    }

    /// Mirrors a grid point across the symmetry axis; `None` if the mirror
    /// falls outside the grid.
    pub fn mirror(&self, g: GridPoint) -> Option<GridPoint> {
        let mx = 2 * i64::from(self.axis_col) - i64::from(g.x);
        if mx < 0 || mx >= i64::from(self.dim.nx()) {
            return None;
        }
        Some(GridPoint::new(mx as u32, g.y, g.l))
    }

    /// Whether the node is free (unowned and unblocked).
    pub fn is_free(&self, idx: usize) -> bool {
        self.occ[idx] == FREE
    }

    /// Whether the node is a hard obstacle.
    pub fn is_blocked(&self, idx: usize) -> bool {
        self.occ[idx] == BLOCKED
    }

    /// The net owning the node, if any.
    pub fn owner(&self, idx: usize) -> Option<NetId> {
        match self.occ[idx] {
            FREE | BLOCKED => None,
            n => Some(NetId::new(n)),
        }
    }

    /// Whether the node is a pin access point.
    pub fn is_pin(&self, idx: usize) -> bool {
        self.is_pin[idx]
    }

    /// History cost of the node.
    pub fn history(&self, idx: usize) -> f32 {
        self.history[idx]
    }

    /// Adds negotiated-routing history cost to the node.
    pub fn bump_history(&mut self, idx: usize, amount: f32) {
        self.history[idx] += amount;
    }

    /// Claims a free (or already-owned-by-`net`) node for `net`.
    ///
    /// Returns `false` when the node is blocked or owned by a different net.
    pub fn claim(&mut self, idx: usize, net: NetId) -> bool {
        match self.occ[idx] {
            FREE => {
                self.occ[idx] = net.index() as u32;
                true
            }
            BLOCKED => false,
            n => n == net.index() as u32,
        }
    }

    /// Marks a node as a pin access point of `net`.
    ///
    /// # Panics
    ///
    /// Panics if the node is owned by a different net or is another net's pin.
    pub fn claim_pin(&mut self, idx: usize, net: NetId) {
        let ok = self.claim(idx, net);
        assert!(ok, "pin node already taken by another net");
        self.is_pin[idx] = true;
    }

    /// Releases every non-pin node owned by `net`.
    pub fn release_net(&mut self, net: NetId) {
        let raw = net.index() as u32;
        for idx in 0..self.occ.len() {
            if self.occ[idx] == raw && !self.is_pin[idx] {
                self.occ[idx] = FREE;
            }
        }
    }

    /// Unblocks a node (used when a pin shape overlaps a device keepout).
    pub fn force_free(&mut self, idx: usize) {
        self.occ[idx] = FREE;
    }

    /// Converts a node index to its dbu location.
    pub fn node_dbu(&self, idx: usize) -> Point3 {
        self.dim.to_dbu(self.dim.from_flat(idx))
    }

    /// Number of free nodes (for tests / diagnostics).
    pub fn free_count(&self) -> usize {
        self.occ.iter().filter(|&&o| o == FREE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    fn grid() -> (af_netlist::Circuit, Placement, RoutingGrid) {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let g = RoutingGrid::new(&c, &p, &t, 2);
        (c, p, g)
    }

    #[test]
    fn axis_on_grid_column() {
        let (_, p, g) = grid();
        let axis_dbu = g.dim().to_dbu(GridPoint::new(g.axis_col(), 0, 0)).x;
        assert_eq!(
            axis_dbu,
            p.axis_x() - (p.axis_x() - axis_dbu),
            "axis column maps near axis"
        );
        // the axis column must be within one pitch of the true axis
        assert!((axis_dbu - p.axis_x()).abs() < g.dim().pitch());
    }

    #[test]
    fn mirror_is_involution_inside() {
        let (_, _, g) = grid();
        let pt = GridPoint::new(g.axis_col() + 3, 5, 1);
        let m = g.mirror(pt).unwrap();
        assert_eq!(g.mirror(m), Some(pt));
        assert_eq!(m.x, g.axis_col() - 3);
    }

    #[test]
    fn devices_block_m1() {
        let (_, p, g) = grid();
        let r = p.device_rects()[0];
        let center = r.center();
        let gp = g.dim().snap(center, 0).unwrap();
        assert!(g.is_blocked(g.dim().flat_index(gp)));
        // M3 above the device is free
        let gp3 = g.dim().snap(center, 2).unwrap();
        assert!(!g.is_blocked(g.dim().flat_index(gp3)));
    }

    #[test]
    fn claim_and_release() {
        let (_, _, g0) = grid();
        let mut g = g0;
        // find a free node
        let idx = (0..g.dim().len()).find(|&i| g.is_free(i)).unwrap();
        let net = NetId::new(3);
        assert!(g.claim(idx, net));
        assert_eq!(g.owner(idx), Some(net));
        assert!(g.claim(idx, net), "re-claim by same net ok");
        assert!(!g.claim(idx, NetId::new(4)), "other net cannot claim");
        g.release_net(net);
        assert!(g.is_free(idx));
    }

    #[test]
    fn pin_nodes_survive_release() {
        let (_, _, g0) = grid();
        let mut g = g0;
        let idx = (0..g.dim().len()).find(|&i| g.is_free(i)).unwrap();
        let net = NetId::new(2);
        g.claim_pin(idx, net);
        g.release_net(net);
        assert_eq!(g.owner(idx), Some(net));
        assert!(g.is_pin(idx));
    }

    #[test]
    fn history_accumulates() {
        let (_, _, g0) = grid();
        let mut g = g0;
        g.bump_history(10, 1.5);
        g.bump_history(10, 0.5);
        assert!((g.history(10) - 2.0).abs() < 1e-6);
    }
}
