//! A DEF-flavored text interchange format for routed layouts.
//!
//! Real flows hand routed layouts between tools as DEF; this module writes a
//! compact DEF-like dialect (`DIEAREA`, `NETS` with `ROUTED` segment lists)
//! and parses it back, so routing solutions can be stored, diffed, and
//! post-processed outside the process that produced them.
//!
//! The dialect (one statement per line):
//!
//! ```text
//! VERSION af-route-1 ;
//! DESIGN <name> ;
//! DIEAREA ( x0 y0 ) ( x1 y1 ) ;
//! NETS <count> ;
//! - <net-name>
//!   ROUTED M<layer> ( x0 y0 ) ( x1 y1 )
//!   VIA ( x y ) M<from> M<to>
//! ;
//! END NETS
//! ```

use std::fmt::Write as _;

use af_geom::{Point3, Segment};
use af_netlist::{Circuit, NetId};
use af_place::Placement;

use crate::{RoutedLayout, RoutedNet};

/// Serializes a routed layout to the DEF-like dialect.
pub fn write_def(circuit: &Circuit, placement: &Placement, layout: &RoutedLayout) -> String {
    let mut out = String::new();
    let die = placement.die();
    let _ = writeln!(out, "VERSION af-route-1 ;");
    let _ = writeln!(out, "DESIGN {} ;", circuit.name());
    let _ = writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        die.lo().x,
        die.lo().y,
        die.hi().x,
        die.hi().y
    );
    let _ = writeln!(out, "NETS {} ;", layout.nets.len());
    for rn in &layout.nets {
        let _ = writeln!(out, "- {}", circuit.net(rn.net).name);
        for seg in &rn.segments {
            if seg.is_via() {
                let _ = writeln!(
                    out,
                    "  VIA ( {} {} ) M{} M{}",
                    seg.start().x,
                    seg.start().y,
                    seg.start().z + 1,
                    seg.end().z + 1
                );
            } else {
                let _ = writeln!(
                    out,
                    "  ROUTED M{} ( {} {} ) ( {} {} )",
                    seg.layer() + 1,
                    seg.start().x,
                    seg.start().y,
                    seg.end().x,
                    seg.end().y
                );
            }
        }
        let _ = writeln!(out, ";");
    }
    let _ = writeln!(out, "END NETS");
    out
}

/// Parse error with line number context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefParseError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for DefParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DefParseError {}

/// Parses a layout written by [`write_def`] back into a [`RoutedLayout`].
///
/// Net names are resolved against `circuit`; unknown nets are an error.
///
/// # Errors
///
/// [`DefParseError`] with the offending line on malformed input.
pub fn parse_def(circuit: &Circuit, text: &str) -> Result<RoutedLayout, DefParseError> {
    let err = |line: usize, message: &str| DefParseError {
        line,
        message: message.to_string(),
    };
    let mut nets: Vec<RoutedNet> = Vec::new();
    let mut current: Option<(NetId, Vec<Segment>)> = None;
    let mut seen_version = false;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "VERSION" => {
                if tokens.get(1) != Some(&"af-route-1") {
                    return Err(err(line_no, "unsupported version"));
                }
                seen_version = true;
            }
            "DESIGN" | "DIEAREA" | "NETS" | "END" => {}
            "-" => {
                if let Some((net, segments)) = current.take() {
                    nets.push(RoutedNet::from_segments(net, segments));
                }
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "net statement without name"))?;
                let net = circuit
                    .net_by_name(name)
                    .ok_or_else(|| err(line_no, "unknown net"))?;
                current = Some((net, Vec::new()));
            }
            "ROUTED" => {
                let (_, segments) = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "ROUTED outside a net"))?;
                // ROUTED M<l> ( x0 y0 ) ( x1 y1 )
                if tokens.len() != 10 {
                    return Err(err(line_no, "malformed ROUTED statement"));
                }
                let layer: u8 = tokens[1]
                    .strip_prefix('M')
                    .and_then(|s| s.parse::<u8>().ok())
                    .filter(|&l| l >= 1)
                    .ok_or_else(|| err(line_no, "bad layer"))?
                    - 1;
                let nums: Result<Vec<i64>, _> = [tokens[3], tokens[4], tokens[7], tokens[8]]
                    .iter()
                    .map(|t| t.parse::<i64>())
                    .collect();
                let nums = nums.map_err(|_| err(line_no, "bad coordinate"))?;
                let seg = Segment::new(
                    Point3::new(nums[0], nums[1], layer),
                    Point3::new(nums[2], nums[3], layer),
                )
                .ok_or_else(|| err(line_no, "non-Manhattan segment"))?;
                segments.push(seg);
            }
            "VIA" => {
                let (_, segments) = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "VIA outside a net"))?;
                // VIA ( x y ) M<from> M<to>
                if tokens.len() != 7 {
                    return Err(err(line_no, "malformed VIA statement"));
                }
                let x: i64 = tokens[2]
                    .parse()
                    .map_err(|_| err(line_no, "bad coordinate"))?;
                let y: i64 = tokens[3]
                    .parse()
                    .map_err(|_| err(line_no, "bad coordinate"))?;
                let parse_layer = |t: &str| {
                    t.strip_prefix('M')
                        .and_then(|s| s.parse::<u8>().ok())
                        .filter(|&l| l >= 1)
                        .map(|l| l - 1)
                };
                let from = parse_layer(tokens[5]).ok_or_else(|| err(line_no, "bad layer"))?;
                let to = parse_layer(tokens[6]).ok_or_else(|| err(line_no, "bad layer"))?;
                let seg = Segment::new(Point3::new(x, y, from), Point3::new(x, y, to))
                    .ok_or_else(|| err(line_no, "bad via"))?;
                segments.push(seg);
            }
            ";" => {
                if let Some((net, segments)) = current.take() {
                    nets.push(RoutedNet::from_segments(net, segments));
                }
            }
            other => return Err(err(line_no, &format!("unknown statement `{other}`"))),
        }
    }
    if !seen_version {
        return Err(err(1, "missing VERSION statement"));
    }
    if let Some((net, segments)) = current.take() {
        nets.push(RoutedNet::from_segments(net, segments));
    }
    Ok(RoutedLayout {
        nets,
        iterations: 0,
        conflicts: 0,
        runtime_s: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Router, RouterConfig, RoutingGuidance};
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    #[test]
    fn def_roundtrip_preserves_geometry() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let l = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let text = write_def(&c, &p, &l);
        let back = parse_def(&c, &text).unwrap();
        assert_eq!(back.nets.len(), l.nets.len());
        for (a, b) in l.nets.iter().zip(&back.nets) {
            assert_eq!(a.net, b.net);
            assert_eq!(a.wirelength, b.wirelength);
            assert_eq!(a.vias, b.vias);
            let mut sa = a.segments.clone();
            let mut sb = b.segments.clone();
            sa.sort_by_key(|s| (s.start().z, s.start().x, s.start().y, s.end().x, s.end().y));
            sb.sort_by_key(|s| (s.start().z, s.start().x, s.start().y, s.end().x, s.end().y));
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn def_header_contents() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let l = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let text = write_def(&c, &p, &l);
        assert!(text.starts_with("VERSION af-route-1 ;"));
        assert!(text.contains("DESIGN OTA1 ;"));
        assert!(text.contains("DIEAREA"));
        assert!(text.contains("- vout"));
        assert!(text.contains("END NETS"));
    }

    #[test]
    fn parse_rejects_garbage() {
        let c = benchmarks::ota1();
        let cases = [
            ("GARBAGE ;", "unknown statement"),
            ("VERSION af-route-2 ;", "unsupported version"),
            (
                "VERSION af-route-1 ;\nROUTED M1 ( 0 0 ) ( 1 0 )",
                "ROUTED outside",
            ),
            ("VERSION af-route-1 ;\n- nosuchnet", "unknown net"),
            (
                "VERSION af-route-1 ;\n- vout\n  ROUTED M0 ( 0 0 ) ( 1 0 )",
                "bad layer",
            ),
            (
                "VERSION af-route-1 ;\n- vout\n  ROUTED M1 ( 0 0 ) ( 1 1 )",
                "non-Manhattan",
            ),
        ];
        for (text, want) in cases {
            let e = parse_def(&c, text).unwrap_err();
            assert!(
                e.message.contains(want) || e.to_string().contains(want),
                "{text:?} -> {e}"
            );
        }
        assert!(parse_def(&c, "DESIGN x ;").is_err(), "missing version");
    }

    #[test]
    fn error_display_includes_line() {
        let c = benchmarks::ota1();
        let e = parse_def(&c, "VERSION af-route-1 ;\nGARBAGE ;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }
}
