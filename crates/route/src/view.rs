//! Read-mostly grid views for parallel negotiated-congestion rounds.
//!
//! During a PathFinder round every uncommitted task routes against an
//! immutable snapshot of the shared [`RoutingGrid`] plus a private overlay
//! of its own in-progress claims ([`TaskView`]). The base grid still holds
//! the *previous* round's claims of every other ripped-up task, so each
//! search negotiates against one-round-stale present costs — the classic
//! parallel-PathFinder relaxation — while the task's own previous claims
//! are hidden (a rip-up must not give the old path a reuse discount).
//!
//! The [`GridView`] trait is what the A* engine ([`crate::astar`]) and the
//! net-routing loop see; it is implemented both by the real grid (used for
//! the sequential fault-degradation path) and by the per-task overlay.

use std::collections::HashMap;

use af_geom::{GridDim, GridPoint, Point3};
use af_netlist::NetId;

use crate::grid::RoutingGrid;

/// Uniform read/claim interface over a routing grid or a task overlay.
pub(crate) trait GridView {
    /// Grid dimensions.
    fn dim(&self) -> &GridDim;
    /// Grid column of the symmetry axis.
    fn axis_col(&self) -> u32;
    /// Mirror transform across the symmetry axis.
    fn mirror(&self, g: GridPoint) -> Option<GridPoint>;
    /// dbu location of a node.
    fn node_dbu(&self, idx: usize) -> Point3;
    /// Whether the node is a hard obstacle.
    fn is_blocked(&self, idx: usize) -> bool;
    /// Whether the node is a pin access point.
    fn is_pin(&self, idx: usize) -> bool;
    /// Effective owner of the node.
    fn owner(&self, idx: usize) -> Option<NetId>;
    /// Negotiation history cost of the node.
    fn history(&self, idx: usize) -> f32;
    /// Claims a node for `net`; `false` when blocked or owned by another
    /// net (the trespass is still recorded by the caller — negotiation
    /// resolves it later).
    fn claim_node(&mut self, idx: usize, net: NetId) -> bool;
}

impl GridView for RoutingGrid {
    fn dim(&self) -> &GridDim {
        RoutingGrid::dim(self)
    }
    fn axis_col(&self) -> u32 {
        RoutingGrid::axis_col(self)
    }
    fn mirror(&self, g: GridPoint) -> Option<GridPoint> {
        RoutingGrid::mirror(self, g)
    }
    fn node_dbu(&self, idx: usize) -> Point3 {
        RoutingGrid::node_dbu(self, idx)
    }
    fn is_blocked(&self, idx: usize) -> bool {
        RoutingGrid::is_blocked(self, idx)
    }
    fn is_pin(&self, idx: usize) -> bool {
        RoutingGrid::is_pin(self, idx)
    }
    fn owner(&self, idx: usize) -> Option<NetId> {
        RoutingGrid::owner(self, idx)
    }
    fn history(&self, idx: usize) -> f32 {
        RoutingGrid::history(self, idx)
    }
    fn claim_node(&mut self, idx: usize, net: NetId) -> bool {
        RoutingGrid::claim(self, idx, net)
    }
}

/// One task's private view during a parallel round: the shared base grid
/// (immutable) plus this task's overlay claims.
///
/// Ownership resolution:
/// 1. overlay claims win (the task sees its own in-progress tree),
/// 2. base claims of the task's *own* nets are hidden unless they are pins
///    (the task is being re-routed; its stale wires must not look owned),
/// 3. everything else reads through to the base snapshot.
pub(crate) struct TaskView<'a> {
    base: &'a RoutingGrid,
    exclude: [Option<NetId>; 2],
    claims: HashMap<u32, NetId>,
}

impl<'a> TaskView<'a> {
    /// A fresh view for a task over `exclude` nets (its members).
    pub(crate) fn new(base: &'a RoutingGrid, exclude: [Option<NetId>; 2]) -> Self {
        Self {
            base,
            exclude,
            claims: HashMap::new(),
        }
    }
}

impl GridView for TaskView<'_> {
    fn dim(&self) -> &GridDim {
        self.base.dim()
    }
    fn axis_col(&self) -> u32 {
        self.base.axis_col()
    }
    fn mirror(&self, g: GridPoint) -> Option<GridPoint> {
        self.base.mirror(g)
    }
    fn node_dbu(&self, idx: usize) -> Point3 {
        self.base.node_dbu(idx)
    }
    fn is_blocked(&self, idx: usize) -> bool {
        self.base.is_blocked(idx)
    }
    fn is_pin(&self, idx: usize) -> bool {
        self.base.is_pin(idx)
    }
    fn owner(&self, idx: usize) -> Option<NetId> {
        if let Some(&n) = self.claims.get(&(idx as u32)) {
            return Some(n);
        }
        match self.base.owner(idx) {
            Some(o) if self.exclude.contains(&Some(o)) && !self.base.is_pin(idx) => None,
            other => other,
        }
    }
    fn history(&self, idx: usize) -> f32 {
        self.base.history(idx)
    }
    fn claim_node(&mut self, idx: usize, net: NetId) -> bool {
        if self.is_blocked(idx) {
            return false;
        }
        match self.owner(idx) {
            None => {
                self.claims.insert(idx as u32, net);
                true
            }
            Some(o) => o == net,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    fn grid() -> RoutingGrid {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        RoutingGrid::new(&c, &p, &Technology::nm40(), 2)
    }

    #[test]
    fn overlay_claims_shadow_base() {
        let mut base = grid();
        let idx = (0..base.dim().len()).find(|&i| base.is_free(i)).unwrap();
        let committed = NetId::new(5);
        assert!(base.claim(idx, committed));

        let me = NetId::new(1);
        let mut v = TaskView::new(&base, [Some(me), None]);
        // committed claims of other nets read through
        assert_eq!(GridView::owner(&v, idx), Some(committed));
        assert!(!v.claim_node(idx, me), "cannot claim another net's node");
        // fresh claims land in the overlay, not the base
        let free = (0..base.dim().len())
            .find(|&i| base.is_free(i) && i != idx)
            .unwrap();
        assert!(v.claim_node(free, me));
        assert_eq!(GridView::owner(&v, free), Some(me));
        assert!(base.is_free(free), "base untouched by overlay claims");
    }

    #[test]
    fn own_stale_claims_are_hidden_but_pins_stay() {
        let mut base = grid();
        let me = NetId::new(2);
        let wire = (0..base.dim().len()).find(|&i| base.is_free(i)).unwrap();
        let pin = (0..base.dim().len())
            .find(|&i| base.is_free(i) && i != wire)
            .unwrap();
        base.claim(wire, me);
        base.claim_pin(pin, me);

        let v = TaskView::new(&base, [Some(me), None]);
        assert_eq!(
            GridView::owner(&v, wire),
            None,
            "previous-round wire is invisible to its own re-route"
        );
        assert_eq!(GridView::owner(&v, pin), Some(me), "pins stay owned");
        assert!(GridView::is_pin(&v, pin));
    }

    #[test]
    fn blocked_nodes_cannot_be_claimed() {
        let base = grid();
        let blocked = (0..base.dim().len()).find(|&i| base.is_blocked(i)).unwrap();
        let mut v = TaskView::new(&base, [None, None]);
        assert!(!v.claim_node(blocked, NetId::new(0)));
        assert_eq!(GridView::owner(&v, blocked), None);
    }
}
