//! Post-processing: stub pruning and conversion of grid edges to merged
//! geometric segments.

use std::collections::{HashMap, HashSet};

use af_geom::{GridDim, Segment};

/// Removes dangling stubs: repeatedly deletes degree-1 nodes that are not pin
/// access points, together with their edges.
///
/// `edges` are undirected unit-step pairs of flat node indices (lo, hi).
pub(crate) fn prune_stubs(edges: &mut HashSet<(u32, u32)>, pins: &HashSet<u32>) -> HashSet<u32> {
    let mut degree: HashMap<u32, u32> = HashMap::new();
    for &(a, b) in edges.iter() {
        *degree.entry(a).or_insert(0) += 1;
        *degree.entry(b).or_insert(0) += 1;
    }
    loop {
        let victims: Vec<u32> = degree
            .iter()
            .filter(|(n, &d)| d == 1 && !pins.contains(*n))
            .map(|(&n, _)| n)
            .collect();
        if victims.is_empty() {
            break;
        }
        for v in victims {
            let incident: Vec<(u32, u32)> = edges
                .iter()
                .filter(|&&(a, b)| a == v || b == v)
                .copied()
                .collect();
            for e in incident {
                edges.remove(&e);
                let other = if e.0 == v { e.1 } else { e.0 };
                if let Some(d) = degree.get_mut(&other) {
                    *d = d.saturating_sub(1);
                }
            }
            degree.remove(&v);
        }
    }
    let mut nodes: HashSet<u32> = HashSet::new();
    for &(a, b) in edges.iter() {
        nodes.insert(a);
        nodes.insert(b);
    }
    // isolated pins still count as nodes
    for &p in pins {
        nodes.insert(p);
    }
    nodes
}

/// Converts unit-step grid edges into merged dbu segments: collinear runs on
/// the same track become single segments; via edges become unit vias.
pub(crate) fn edges_to_segments(dim: &GridDim, edges: &HashSet<(u32, u32)>) -> Vec<Segment> {
    // Group planar edges per track.
    let mut x_runs: HashMap<(u32, u8), Vec<(u32, u32)>> = HashMap::new(); // key (y, l) -> (x0, x1)
    let mut y_runs: HashMap<(u32, u8), Vec<(u32, u32)>> = HashMap::new(); // key (x, l)
    let mut vias: Vec<Segment> = Vec::new();
    for &(a, b) in edges {
        let ga = dim.from_flat(a as usize);
        let gb = dim.from_flat(b as usize);
        if ga.l != gb.l {
            let pa = dim.to_dbu(ga);
            let pb = dim.to_dbu(gb);
            vias.push(Segment::new(pa, pb).expect("via edge is axis-aligned"));
        } else if ga.y == gb.y {
            x_runs
                .entry((ga.y, ga.l))
                .or_default()
                .push((ga.x.min(gb.x), ga.x.max(gb.x)));
        } else {
            y_runs
                .entry((ga.x, ga.l))
                .or_default()
                .push((ga.y.min(gb.y), ga.y.max(gb.y)));
        }
    }
    let mut segments = Vec::new();
    let emit =
        |runs: HashMap<(u32, u8), Vec<(u32, u32)>>, horizontal: bool, out: &mut Vec<Segment>| {
            for ((fixed, l), mut intervals) in runs {
                intervals.sort_unstable();
                let mut start = intervals[0].0;
                let mut end = intervals[0].1;
                let flush = |s: u32, e: u32, out: &mut Vec<Segment>| {
                    let (ga, gb) = if horizontal {
                        (
                            af_geom::GridPoint::new(s, fixed, l),
                            af_geom::GridPoint::new(e, fixed, l),
                        )
                    } else {
                        (
                            af_geom::GridPoint::new(fixed, s, l),
                            af_geom::GridPoint::new(fixed, e, l),
                        )
                    };
                    out.push(
                        Segment::new(dim.to_dbu(ga), dim.to_dbu(gb))
                            .expect("track run is axis-aligned"),
                    );
                };
                for &(s, e) in intervals.iter().skip(1) {
                    if s <= end {
                        end = end.max(e);
                    } else {
                        flush(start, end, out);
                        start = s;
                        end = e;
                    }
                }
                flush(start, end, out);
            }
        };
    emit(x_runs, true, &mut segments);
    emit(y_runs, false, &mut segments);
    vias.sort_by_key(|v| (v.start().x, v.start().y, v.start().z));
    vias.dedup();
    segments.sort_by_key(|s| {
        let p = s.start();
        (p.z, p.y, p.x, s.end().x, s.end().y, s.end().z)
    });
    segments.extend(vias);
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_geom::Point;

    fn dim() -> GridDim {
        GridDim::new(Point::new(0, 0), 10, 10, 3, 100)
    }

    fn e(d: &GridDim, a: (u32, u32, u8), b: (u32, u32, u8)) -> (u32, u32) {
        let ia = d.flat_index(af_geom::GridPoint::new(a.0, a.1, a.2)) as u32;
        let ib = d.flat_index(af_geom::GridPoint::new(b.0, b.1, b.2)) as u32;
        (ia.min(ib), ia.max(ib))
    }

    #[test]
    fn prune_removes_dangling_branch() {
        let d = dim();
        let mut edges: HashSet<(u32, u32)> = HashSet::new();
        // main path 0..3 on x, plus a stub up from (1,0)
        edges.insert(e(&d, (0, 0, 0), (1, 0, 0)));
        edges.insert(e(&d, (1, 0, 0), (2, 0, 0)));
        edges.insert(e(&d, (2, 0, 0), (3, 0, 0)));
        edges.insert(e(&d, (1, 0, 0), (1, 1, 0)));
        edges.insert(e(&d, (1, 1, 0), (1, 2, 0)));
        let pins: HashSet<u32> = [
            d.flat_index(af_geom::GridPoint::new(0, 0, 0)) as u32,
            d.flat_index(af_geom::GridPoint::new(3, 0, 0)) as u32,
        ]
        .into_iter()
        .collect();
        let nodes = prune_stubs(&mut edges, &pins);
        assert_eq!(edges.len(), 3, "stub edges removed");
        assert!(!nodes.contains(&(d.flat_index(af_geom::GridPoint::new(1, 2, 0)) as u32)));
    }

    #[test]
    fn prune_keeps_pin_stubs() {
        let d = dim();
        let mut edges: HashSet<(u32, u32)> = HashSet::new();
        edges.insert(e(&d, (0, 0, 0), (1, 0, 0)));
        edges.insert(e(&d, (1, 0, 0), (1, 1, 0)));
        let pins: HashSet<u32> = [
            d.flat_index(af_geom::GridPoint::new(0, 0, 0)) as u32,
            d.flat_index(af_geom::GridPoint::new(1, 1, 0)) as u32,
        ]
        .into_iter()
        .collect();
        prune_stubs(&mut edges, &pins);
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn collinear_edges_merge() {
        let d = dim();
        let mut edges: HashSet<(u32, u32)> = HashSet::new();
        for x in 0..4 {
            edges.insert(e(&d, (x, 2, 1), (x + 1, 2, 1)));
        }
        let segs = edges_to_segments(&d, &edges);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].length(), 400);
        assert_eq!(segs[0].layer(), 1);
    }

    #[test]
    fn vias_and_bends() {
        let d = dim();
        let mut edges: HashSet<(u32, u32)> = HashSet::new();
        edges.insert(e(&d, (0, 0, 0), (1, 0, 0)));
        edges.insert(e(&d, (1, 0, 0), (1, 0, 1)));
        edges.insert(e(&d, (1, 0, 1), (1, 1, 1)));
        let segs = edges_to_segments(&d, &edges);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs.iter().filter(|s| s.is_via()).count(), 1);
    }

    #[test]
    fn disjoint_runs_stay_separate() {
        let d = dim();
        let mut edges: HashSet<(u32, u32)> = HashSet::new();
        edges.insert(e(&d, (0, 0, 0), (1, 0, 0)));
        edges.insert(e(&d, (3, 0, 0), (4, 0, 0)));
        let segs = edges_to_segments(&d, &edges);
        assert_eq!(segs.len(), 2);
    }
}
