//! Congestion analysis: probabilistic demand estimation before routing and
//! exact track-usage measurement after routing.
//!
//! The paper frames guidance as acting on "routing cost maps for global
//! routing"; this module provides the classic global-routing view of the
//! problem: a coarse raster where each cell carries estimated demand
//! (pre-route, from net bounding boxes) or measured usage (post-route, from
//! segments), normalized by the cell's track supply.

use serde::{Deserialize, Serialize};

use af_netlist::{Circuit, NetId};
use af_place::Placement;
use af_tech::Technology;

use crate::RoutedLayout;

/// A coarse congestion raster over the die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionMap {
    /// Raster width (cells).
    pub w: usize,
    /// Raster height (cells).
    pub h: usize,
    /// Die lower-left, dbu.
    pub origin: (i64, i64),
    /// Cell size, dbu.
    pub cell: (i64, i64),
    /// Demand or usage per cell, in track-lengths (row-major, y-major).
    pub demand: Vec<f64>,
    /// Available routing supply per cell, in track-lengths.
    pub supply: Vec<f64>,
}

impl CongestionMap {
    fn empty(placement: &Placement, tech: &Technology, w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "degenerate raster");
        let die = placement.die();
        let cell = (die.width() / w as i64, die.height() / h as i64);
        // Supply: tracks per cell × layers, expressed as total routable track
        // length in the cell (tracks × cell span), halved for blockages-ish
        // conservatism.
        let pitch = tech.grid_pitch() as f64;
        let layers = f64::from(tech.num_layers());
        let tracks_x = cell.1 as f64 / pitch;
        let tracks_y = cell.0 as f64 / pitch;
        let per_cell = 0.5 * layers * (tracks_x * cell.0 as f64 + tracks_y * cell.1 as f64) / 2.0;
        Self {
            w,
            h,
            origin: (die.lo().x, die.lo().y),
            cell,
            demand: vec![0.0; w * h],
            supply: vec![per_cell.max(1.0); w * h],
        }
    }

    fn cell_of(&self, x: i64, y: i64) -> Option<usize> {
        let cx = (x - self.origin.0).div_euclid(self.cell.0.max(1));
        let cy = (y - self.origin.1).div_euclid(self.cell.1.max(1));
        if cx < 0 || cy < 0 || cx >= self.w as i64 || cy >= self.h as i64 {
            return None;
        }
        Some(cy as usize * self.w + cx as usize)
    }

    /// Utilization (demand/supply) per cell.
    pub fn utilization(&self) -> Vec<f64> {
        self.demand
            .iter()
            .zip(&self.supply)
            .map(|(d, s)| d / s.max(1e-9))
            .collect()
    }

    /// Maximum cell utilization.
    pub fn peak_utilization(&self) -> f64 {
        self.utilization().into_iter().fold(0.0, f64::max)
    }

    /// Cells whose utilization exceeds `threshold`.
    pub fn hotspots(&self, threshold: f64) -> Vec<(usize, usize)> {
        self.utilization()
            .iter()
            .enumerate()
            .filter(|(_, u)| **u > threshold)
            .map(|(i, _)| (i % self.w, i / self.w))
            .collect()
    }

    /// ASCII heat map (rows top-down), digits 0–9 ~ utilization 0–90 %+.
    pub fn ascii(&self) -> String {
        let util = self.utilization();
        let mut out = String::new();
        for y in (0..self.h).rev() {
            for x in 0..self.w {
                let u = util[y * self.w + x];
                let d = ((u * 10.0) as usize).min(9);
                out.push(char::from_digit(d as u32, 10).unwrap_or('9'));
            }
            out.push('\n');
        }
        out
    }
}

/// Pre-route demand estimate: each routable net spreads one expected
/// track-length of demand uniformly over its pin bounding box (the classic
/// probabilistic global-routing model).
pub fn estimate_congestion(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    w: usize,
    h: usize,
) -> CongestionMap {
    let mut map = CongestionMap::empty(placement, tech, w, h);
    for (i, _) in circuit.nets().iter().enumerate() {
        let id = NetId::new(i as u32);
        let pins: Vec<_> = placement.pins_of_net(id).collect();
        if pins.len() < 2 {
            continue;
        }
        let mut bbox = pins[0].rect;
        for p in &pins[1..] {
            bbox = bbox.union(&p.rect);
        }
        // expected wirelength ≈ half-perimeter; spread over covered cells
        let expected = bbox.half_perimeter() as f64;
        let mut cells = Vec::new();
        let (x0, y0) = (bbox.lo().x, bbox.lo().y);
        let (x1, y1) = (bbox.hi().x, bbox.hi().y);
        let step_x = map.cell.0.max(1);
        let step_y = map.cell.1.max(1);
        let mut y = y0;
        while y <= y1 {
            let mut x = x0;
            while x <= x1 {
                if let Some(c) = map.cell_of(x, y) {
                    cells.push(c);
                }
                x += step_x;
            }
            y += step_y;
        }
        cells.sort_unstable();
        cells.dedup();
        if cells.is_empty() {
            continue;
        }
        let share = expected / cells.len() as f64;
        for c in cells {
            map.demand[c] += share;
        }
    }
    map
}

/// Post-route usage measurement: actual wirelength per cell.
pub fn measure_congestion(
    placement: &Placement,
    tech: &Technology,
    layout: &RoutedLayout,
    w: usize,
    h: usize,
) -> CongestionMap {
    let mut map = CongestionMap::empty(placement, tech, w, h);
    for rn in &layout.nets {
        for seg in rn.segments.iter().filter(|s| !s.is_via()) {
            // sample the segment into cells
            let (a, b) = (seg.start(), seg.end());
            let steps = (seg.length() / map.cell.0.min(map.cell.1).max(1)).max(1);
            let per_sample = seg.length() as f64 / (steps + 1) as f64;
            for s in 0..=steps {
                let x = a.x + (b.x - a.x) * s / steps.max(1);
                let y = a.y + (b.y - a.y) * s / steps.max(1);
                if let Some(c) = map.cell_of(x, y) {
                    map.demand[c] += per_sample;
                }
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Router, RouterConfig, RoutingGuidance};
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    fn setup() -> (af_netlist::Circuit, Placement, Technology) {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        (c, p, Technology::nm40())
    }

    #[test]
    fn estimate_has_demand_where_pins_are() {
        let (c, p, t) = setup();
        let map = estimate_congestion(&c, &p, &t, 8, 8);
        assert_eq!(map.demand.len(), 64);
        assert!(map.demand.iter().sum::<f64>() > 0.0);
        assert!(map.peak_utilization() > 0.0);
        // supply positive everywhere
        assert!(map.supply.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn measured_total_matches_wirelength_approximately() {
        let (c, p, t) = setup();
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let map = measure_congestion(&p, &t, &layout, 8, 8);
        let total_demand: f64 = map.demand.iter().sum();
        let total_wire = layout.total_wirelength() as f64;
        let rel = (total_demand - total_wire).abs() / total_wire;
        assert!(rel < 0.15, "sampled {total_demand} vs wire {total_wire}");
    }

    #[test]
    fn estimate_correlates_with_measurement() {
        let (c, p, t) = setup();
        let est = estimate_congestion(&c, &p, &t, 6, 6);
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let meas = measure_congestion(&p, &t, &layout, 6, 6);
        // Pearson correlation between estimated and measured demand
        let n = est.demand.len() as f64;
        let (mu_e, mu_m) = (
            est.demand.iter().sum::<f64>() / n,
            meas.demand.iter().sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut ve = 0.0;
        let mut vm = 0.0;
        for (e, m) in est.demand.iter().zip(&meas.demand) {
            cov += (e - mu_e) * (m - mu_m);
            ve += (e - mu_e) * (e - mu_e);
            vm += (m - mu_m) * (m - mu_m);
        }
        let corr = cov / (ve.sqrt() * vm.sqrt()).max(1e-9);
        assert!(
            corr > 0.3,
            "estimate should correlate with reality: r = {corr}"
        );
    }

    #[test]
    fn ascii_rendering_shape() {
        let (c, p, t) = setup();
        let map = estimate_congestion(&c, &p, &t, 5, 4);
        let art = map.ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 5));
    }

    #[test]
    fn hotspots_threshold() {
        let (c, p, t) = setup();
        let map = estimate_congestion(&c, &p, &t, 8, 8);
        let all = map.hotspots(0.0);
        let none = map.hotspots(f64::INFINITY);
        assert!(all.len() >= none.len());
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate raster")]
    fn rejects_zero_raster() {
        let (c, p, t) = setup();
        let _ = estimate_congestion(&c, &p, &t, 0, 4);
    }
}
