//! Pin access point extraction.
//!
//! The paper (Definition 1): *pin access points refer to the intersections
//! between pin geometry and routing grids; each pin has at least one access
//! point.* On a coarsened grid a small pin shape may not contain a grid node,
//! so the extractor falls back to the nearest node, spiralling outward past
//! nodes already taken by other nets.

use af_geom::{GridPoint, Point3};
use af_netlist::{Circuit, NetId};
use af_place::Placement;

use crate::grid::RoutingGrid;

/// One pin access point: a grid node bound to a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPoint {
    /// Owning net.
    pub net: NetId,
    /// Grid node.
    pub node: GridPoint,
    /// dbu location of the node.
    pub dbu: Point3,
    /// Index of the placed pin this AP came from.
    pub pin_index: usize,
}

/// All access points of a placement, grouped per net.
#[derive(Debug, Clone, Default)]
pub struct PinAccessMap {
    /// `aps[net.index()]` = access points of that net.
    per_net: Vec<Vec<AccessPoint>>,
    /// Flat list in placed-pin order.
    all: Vec<AccessPoint>,
}

impl PinAccessMap {
    /// Extracts access points for every placed pin and claims them in the
    /// grid.
    ///
    /// # Panics
    ///
    /// Panics if a pin cannot be given any access point (grid fully
    /// congested around it) — placements produced by `af-place` always leave
    /// room.
    pub fn extract(circuit: &Circuit, placement: &Placement, grid: &mut RoutingGrid) -> Self {
        let mut per_net = vec![Vec::new(); circuit.nets().len()];
        let mut all = Vec::new();
        for (pin_index, pin) in placement.pins().iter().enumerate() {
            let center = pin.rect.center();
            let node = find_node(grid, center, pin.layer, pin.net)
                .unwrap_or_else(|| panic!("no access point for pin {pin_index} of {}", pin.net));
            let idx = grid.dim().flat_index(node);
            // Pin shapes may fall inside a device keepout; the pin itself must
            // stay routable.
            if grid.is_blocked(idx) {
                grid.force_free(idx);
            }
            grid.claim_pin(idx, pin.net);
            // Pins surrounded by device blockage (e.g. on a capacitor plate)
            // need a via escape: free the column straight above the pin until
            // the first unblocked layer.
            for l in (node.l + 1)..grid.dim().layers() {
                let up = af_geom::GridPoint::new(node.x, node.y, l);
                let uidx = grid.dim().flat_index(up);
                if grid.is_blocked(uidx) {
                    // Reserve the escape for this net: it is the pin's only
                    // way out, so no other net may squat on it.
                    grid.force_free(uidx);
                    grid.claim_pin(uidx, pin.net);
                } else {
                    break;
                }
            }
            let ap = AccessPoint {
                net: pin.net,
                node,
                dbu: grid.dim().to_dbu(node),
                pin_index,
            };
            per_net[pin.net.index()].push(ap);
            all.push(ap);
        }
        Self { per_net, all }
    }

    /// Access points of one net.
    pub fn of_net(&self, net: NetId) -> &[AccessPoint] {
        &self.per_net[net.index()]
    }

    /// Every access point, in placed-pin order.
    pub fn all(&self) -> &[AccessPoint] {
        &self.all
    }

    /// Total number of access points.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether no access points were extracted.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }
}

/// Nearest usable node to `center` on `layer` for `net`: the snapped node if
/// it is not another net's pin, otherwise a spiral search outward.
fn find_node(
    grid: &RoutingGrid,
    center: af_geom::Point,
    layer: u8,
    net: NetId,
) -> Option<GridPoint> {
    let dim = *grid.dim();
    let base = dim.snap(center, layer).or_else(|| {
        // Clamp to the grid if the pin sits within half a pitch of the edge.
        let x = (center.x - dim.origin().x).clamp(0, (i64::from(dim.nx()) - 1) * dim.pitch());
        let y = (center.y - dim.origin().y).clamp(0, (i64::from(dim.ny()) - 1) * dim.pitch());
        dim.snap(
            af_geom::Point::new(dim.origin().x + x, dim.origin().y + y),
            layer,
        )
    })?;
    let usable = |g: GridPoint| {
        let idx = dim.flat_index(g);
        match grid.owner(idx) {
            Some(owner) => owner == net && !grid.is_pin(idx),
            // Blocked nodes are force-freed by the caller; a free node is fine.
            None => true,
        }
    };
    if usable(base) {
        return Some(base);
    }
    for radius in 1..=4i64 {
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                if dx.abs().max(dy.abs()) != radius {
                    continue;
                }
                let x = i64::from(base.x) + dx;
                let y = i64::from(base.y) + dy;
                if x < 0 || y < 0 || x >= i64::from(dim.nx()) || y >= i64::from(dim.ny()) {
                    continue;
                }
                let g = GridPoint::new(x as u32, y as u32, layer);
                if usable(g) {
                    return Some(g);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    #[test]
    fn every_pin_gets_an_access_point() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let mut g = RoutingGrid::new(&c, &p, &t, 2);
        let aps = PinAccessMap::extract(&c, &p, &mut g);
        assert_eq!(aps.len(), p.pins().len());
        assert!(!aps.is_empty());
        for ap in aps.all() {
            let idx = g.dim().flat_index(ap.node);
            assert_eq!(g.owner(idx), Some(ap.net));
            assert!(g.is_pin(idx));
        }
    }

    #[test]
    fn per_net_grouping_consistent() {
        let c = benchmarks::ota3();
        let p = place(&c, PlacementVariant::B);
        let t = Technology::nm40();
        let mut g = RoutingGrid::new(&c, &p, &t, 2);
        let aps = PinAccessMap::extract(&c, &p, &mut g);
        let mut count = 0;
        for (i, _) in c.nets().iter().enumerate() {
            let net = NetId::new(i as u32);
            for ap in aps.of_net(net) {
                assert_eq!(ap.net, net);
                count += 1;
            }
        }
        assert_eq!(count, aps.len());
    }

    #[test]
    fn distinct_nets_get_distinct_nodes() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let mut g = RoutingGrid::new(&c, &p, &t, 2);
        let aps = PinAccessMap::extract(&c, &p, &mut g);
        for (i, a) in aps.all().iter().enumerate() {
            for b in aps.all().iter().skip(i + 1) {
                if a.net != b.net {
                    assert_ne!(a.node, b.node, "{} vs {}", a.net, b.net);
                }
            }
        }
    }

    #[test]
    fn symmetric_pair_aps_mirror() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let mut g = RoutingGrid::new(&c, &p, &t, 2);
        let aps = PinAccessMap::extract(&c, &p, &mut g);
        let (na, nb) = c.symmetric_net_pairs()[0];
        let a_nodes: Vec<_> = aps.of_net(na).iter().map(|ap| ap.node).collect();
        let b_nodes: Vec<_> = aps.of_net(nb).iter().map(|ap| ap.node).collect();
        assert_eq!(a_nodes.len(), b_nodes.len());
        for an in &a_nodes {
            let m = g.mirror(*an).expect("mirror in grid");
            assert!(
                b_nodes.contains(&m),
                "mirror of {an} = {m} not among {b_nodes:?}"
            );
        }
    }
}
