//! SVG rendering of routed layouts (Figure 6-style visual comparisons).

use std::fmt::Write as _;

use af_netlist::Circuit;
use af_place::Placement;

use crate::RoutedLayout;

/// Layer colors: M1..M4.
const LAYER_COLORS: [&str; 4] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];

/// Renders a routed layout as an SVG document.
///
/// Devices are gray boxes, pins black squares, wires colored by layer with
/// per-net opacity grouping, vias small circles. The viewBox is the die in
/// dbu scaled by `1/100` so viewers handle the numbers comfortably.
///
/// # Examples
///
/// ```
/// use af_netlist::benchmarks;
/// use af_place::{place, PlacementVariant};
/// use af_route::{render_svg, Router, RouterConfig, RoutingGuidance};
/// use af_tech::Technology;
///
/// let c = benchmarks::ota1();
/// let p = place(&c, PlacementVariant::A);
/// let t = Technology::nm40();
/// let l = Router::new(RouterConfig::default())
///     .unwrap()
///     .route(&c, &p, &t, &RoutingGuidance::None)
///     .unwrap();
/// let svg = render_svg(&c, &p, &l, "OTA1-A baseline");
/// assert!(svg.starts_with("<svg"));
/// ```
pub fn render_svg(
    circuit: &Circuit,
    placement: &Placement,
    layout: &RoutedLayout,
    title: &str,
) -> String {
    let die = placement.die();
    let s = 0.01; // dbu -> svg units
    let (w, h) = (die.width() as f64 * s, die.height() as f64 * s);
    let tx = |x: i64| (x - die.lo().x) as f64 * s;
    // flip y so the layout reads with +y up
    let ty = |y: i64| (die.hi().y - y) as f64 * s;

    let mut out = String::new();
    let _ = write!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w:.1} {h:.1}" width="{w:.0}" height="{h:.0}">"##
    );
    let _ = write!(
        out,
        r##"<rect x="0" y="0" width="{w:.1}" height="{h:.1}" fill="#fafafa" stroke="#333" stroke-width="0.5"/>"##
    );
    let _ = write!(
        out,
        r##"<text x="2" y="8" font-size="7" fill="#333">{title}</text>"##
    );

    // symmetry axis
    let ax = tx(placement.axis_x());
    let _ = write!(
        out,
        r##"<line x1="{ax:.1}" y1="0" x2="{ax:.1}" y2="{h:.1}" stroke="#bbb" stroke-dasharray="3,3" stroke-width="0.4"/>"##
    );

    // devices
    for (i, r) in placement.device_rects().iter().enumerate() {
        let name = &circuit.devices()[i].name;
        let _ = write!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#ddd" stroke="#888" stroke-width="0.3"/>"##,
            tx(r.lo().x),
            ty(r.hi().y),
            r.width() as f64 * s,
            r.height() as f64 * s
        );
        let c = r.center();
        let _ = write!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="3" text-anchor="middle" fill="#555">{name}</text>"##,
            tx(c.x),
            ty(c.y)
        );
    }

    // pins
    for pin in placement.pins() {
        let r = pin.rect;
        let _ = write!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#000"/>"##,
            tx(r.lo().x),
            ty(r.hi().y),
            (r.width().max(100)) as f64 * s,
            (r.height().max(100)) as f64 * s
        );
    }

    // wires
    for rn in &layout.nets {
        let name = &circuit.net(rn.net).name;
        let _ = write!(out, r##"<g data-net="{name}">"##);
        for seg in &rn.segments {
            if seg.is_via() {
                let _ = write!(
                    out,
                    r##"<circle cx="{:.1}" cy="{:.1}" r="0.8" fill="#222"/>"##,
                    tx(seg.start().x),
                    ty(seg.start().y)
                );
            } else {
                let color = LAYER_COLORS[seg.layer() as usize % LAYER_COLORS.len()];
                let _ = write!(
                    out,
                    r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="1.0" stroke-opacity="0.75"/>"##,
                    tx(seg.start().x),
                    ty(seg.start().y),
                    tx(seg.end().x),
                    ty(seg.end().y)
                );
            }
        }
        let _ = write!(out, "</g>");
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Router, RouterConfig, RoutingGuidance};
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    #[test]
    fn svg_contains_wires_and_devices() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let l = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let svg = render_svg(&c, &p, &l, "test");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("data-net=\"vout\""));
        assert!(svg.contains("M1"), "device labels present");
        assert!(svg.matches("<line").count() > 10, "wires rendered");
    }
}
