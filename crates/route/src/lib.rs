#![warn(missing_docs)]
//! 3-D grid analog detailed routing for the AnalogFold reproduction.
//!
//! This crate is the substitute for the MAGICAL detailed router the paper
//! builds on ("MagicalRoute", Chen et al. ICCAD'20): a gridded multi-layer
//! maze router with
//!
//! * per-layer preferred directions and via costs,
//! * **symmetric-net-pair routing** — the route of one net is mirrored across
//!   the placement's symmetry axis onto its partner,
//! * **constraint-aware iterative routing** — negotiated rip-up/re-route with
//!   history costs until no two nets share routing resources,
//! * **routing-guidance hooks** — the paper's non-uniform per-pin-access-point
//!   cost triples ([`RoutingGuidance::NonUniform`]) and the uniform 2-D cost
//!   maps of GeniusRoute ([`RoutingGuidance::Map`]) both plug into the cost
//!   function as directional penalties,
//! * post-processing (stub pruning) and a DRC/connectivity checker.
//!
//! Routing without guidance *is* the MagicalRoute baseline; routing with a
//! guidance field is the paper's guided analog detailed routing (Problem 3).
//!
//! # Examples
//!
//! ```
//! use af_netlist::benchmarks;
//! use af_place::{place, PlacementVariant};
//! use af_route::{Router, RouterConfig, RoutingGuidance};
//! use af_tech::Technology;
//!
//! let circuit = benchmarks::ota1();
//! let placement = place(&circuit, PlacementVariant::A);
//! let tech = Technology::nm40();
//! let router = Router::new(RouterConfig::default()).unwrap();
//! let routed = router
//!     .route(&circuit, &placement, &tech, &RoutingGuidance::None)
//!     .unwrap();
//! assert!(routed.total_wirelength() > 0);
//! ```

mod access;
mod astar;
mod congestion;
mod def;
mod drc;
mod grid;
mod guidance;
mod post;
mod router;
mod svg;
mod view;

pub use access::{AccessPoint, PinAccessMap};
pub use congestion::{estimate_congestion, measure_congestion, CongestionMap};
pub use def::{parse_def, write_def, DefParseError};
pub use drc::{check_layout, Violation, ViolationKind};
pub use grid::RoutingGrid;
pub use guidance::{GuidanceMap2D, NonUniformGuidance, RoutingGuidance};
#[allow(deprecated)]
pub use router::route;
pub use router::{
    OpenListKind, RouteConfigError, RouteError, Router, RouterConfig, RouterConfigBuilder,
};
pub use svg::render_svg;

use serde::{Deserialize, Serialize};

use af_geom::Segment;
use af_netlist::NetId;

/// The routed geometry of a single net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedNet {
    /// The net this route belongs to.
    pub net: NetId,
    /// Planar wire segments and vias in dbu coordinates.
    pub segments: Vec<Segment>,
    /// Number of via cuts.
    pub vias: u32,
    /// Total planar wirelength in dbu.
    pub wirelength: i64,
}

impl RoutedNet {
    /// Creates a routed net record from raw segments.
    pub fn from_segments(net: NetId, segments: Vec<Segment>) -> Self {
        let vias = segments.iter().filter(|s| s.is_via()).count() as u32;
        let wirelength = segments
            .iter()
            .filter(|s| !s.is_via())
            .map(|s| s.length())
            .sum();
        Self {
            net,
            segments,
            vias,
            wirelength,
        }
    }
}

/// A complete routing solution for one placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedLayout {
    /// Per-net routes, in net-id order for routed nets.
    pub nets: Vec<RoutedNet>,
    /// Rip-up/re-route iterations used.
    pub iterations: u32,
    /// Number of resource conflicts remaining (0 for a clean solution).
    pub conflicts: u32,
    /// Wall-clock routing time in seconds.
    pub runtime_s: f64,
}

impl RoutedLayout {
    /// Route of a specific net, if it was routed.
    pub fn net(&self, id: NetId) -> Option<&RoutedNet> {
        self.nets.iter().find(|n| n.net == id)
    }

    /// Sum of planar wirelength over all nets, dbu.
    pub fn total_wirelength(&self) -> i64 {
        self.nets.iter().map(|n| n.wirelength).sum()
    }

    /// Total via count.
    pub fn total_vias(&self) -> u32 {
        self.nets.iter().map(|n| n.vias).sum()
    }

    /// Whether the solution has no remaining conflicts.
    pub fn is_clean(&self) -> bool {
        self.conflicts == 0
    }

    /// Renders a human-readable per-net summary table.
    pub fn report(&self, circuit: &af_netlist::Circuit) -> String {
        use af_obs::fmt::{Cell, Table};
        let t = Table::new(12).col(12).col(8).col(10);
        let mut out = t.header("net", &["wire(um)", "vias", "segments"]);
        out.push('\n');
        let mut nets: Vec<&RoutedNet> = self.nets.iter().collect();
        nets.sort_by_key(|rn| std::cmp::Reverse(rn.wirelength));
        for rn in nets {
            out.push_str(&t.row(
                &circuit.net(rn.net).name,
                &[
                    Cell::Float(rn.wirelength as f64 / 1e3, 2),
                    Cell::Int(i64::from(rn.vias)),
                    Cell::Int(rn.segments.len() as i64),
                ],
            ));
            out.push('\n');
        }
        out.push_str(&t.row(
            "TOTAL",
            &[
                Cell::Float(self.total_wirelength() as f64 / 1e3, 2),
                Cell::Int(i64::from(self.total_vias())),
            ],
        ));
        out.push('\n');
        out
    }

    /// Planar wirelength per metal layer, indexed by layer (dbu).
    pub fn wirelength_by_layer(&self, num_layers: u8) -> Vec<i64> {
        let mut out = vec![0i64; num_layers as usize];
        for rn in &self.nets {
            for s in rn.segments.iter().filter(|s| !s.is_via()) {
                if let Some(slot) = out.get_mut(s.layer() as usize) {
                    *slot += s.length();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_geom::Point3;

    #[test]
    fn routed_net_statistics() {
        let segs = vec![
            Segment::new(Point3::new(0, 0, 0), Point3::new(100, 0, 0)).unwrap(),
            Segment::new(Point3::new(100, 0, 0), Point3::new(100, 0, 1)).unwrap(),
            Segment::new(Point3::new(100, 0, 1), Point3::new(100, 50, 1)).unwrap(),
        ];
        let rn = RoutedNet::from_segments(NetId::new(0), segs);
        assert_eq!(rn.vias, 1);
        assert_eq!(rn.wirelength, 150);
    }

    #[test]
    fn layout_totals() {
        let a = RoutedNet::from_segments(
            NetId::new(0),
            vec![Segment::new(Point3::new(0, 0, 0), Point3::new(10, 0, 0)).unwrap()],
        );
        let b = RoutedNet::from_segments(
            NetId::new(1),
            vec![Segment::new(Point3::new(0, 5, 1), Point3::new(0, 25, 1)).unwrap()],
        );
        let layout = RoutedLayout {
            nets: vec![a, b],
            iterations: 1,
            conflicts: 0,
            runtime_s: 0.0,
        };
        assert_eq!(layout.total_wirelength(), 30);
        assert_eq!(layout.total_vias(), 0);
        assert!(layout.is_clean());
        assert!(layout.net(NetId::new(1)).is_some());
        assert!(layout.net(NetId::new(9)).is_none());
        let by_layer = layout.wirelength_by_layer(4);
        assert_eq!(by_layer, vec![10, 20, 0, 0]);
        assert_eq!(by_layer.iter().sum::<i64>(), layout.total_wirelength());
    }
}
