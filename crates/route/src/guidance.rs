//! Routing guidance fields: the paper's non-uniform per-access-point cost
//! triples, and the uniform 2-D maps of GeniusRoute for comparison.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use af_geom::{Axis, CostTriple, Point3};
use af_netlist::NetId;

/// Non-uniform routing guidance: one [`CostTriple`] per pin access point of
/// each guided net (the paper's `C = {C_i}`; Problem 2).
///
/// During routing, a step along axis `d` near access point `k` of net `i`
/// multiplies the step cost by `C_{i,k}[d]`.
///
/// # Examples
///
/// ```
/// use af_geom::{CostTriple, Point3};
/// use af_netlist::NetId;
/// use af_route::NonUniformGuidance;
///
/// let mut g = NonUniformGuidance::new();
/// g.set(NetId::new(0), Point3::new(0, 0, 0), CostTriple([0.5, 2.0, 1.0]));
/// let m = g.multiplier(NetId::new(0), Point3::new(10, 10, 0), af_geom::Axis::X);
/// assert!((m - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NonUniformGuidance {
    /// Per net: (access-point location, cost triple).
    entries: HashMap<u32, Vec<(Point3, CostTriple)>>,
}

impl NonUniformGuidance {
    /// Creates an empty guidance field (neutral everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the triple for one access point of `net`.
    pub fn set(&mut self, net: NetId, ap: Point3, triple: CostTriple) {
        self.entries
            .entry(net.index() as u32)
            .or_default()
            .push((ap, triple));
    }

    /// All guided entries of one net.
    pub fn of_net(&self, net: NetId) -> &[(Point3, CostTriple)] {
        self.entries
            .get(&(net.index() as u32))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of guided access points across all nets.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the field is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Nets that carry guidance.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.entries.keys().map(|&k| NetId::new(k))
    }

    /// Cost multiplier for a step of `net` along `axis` at `pos`: the triple
    /// of the *nearest* guided access point of that net (1.0 when the net is
    /// unguided).
    pub fn multiplier(&self, net: NetId, pos: Point3, axis: Axis) -> f64 {
        let Some(list) = self.entries.get(&(net.index() as u32)) else {
            return 1.0;
        };
        let mut best = None;
        let mut best_d = i64::MAX;
        for (ap, triple) in list {
            let d = ap.manhattan_3d(pos, 1);
            if d < best_d {
                best_d = d;
                best = Some(triple);
            }
        }
        best.map(|t| t[axis.index()]).unwrap_or(1.0)
    }

    /// Smallest multiplier `net` can see anywhere, any axis (1.0 when the
    /// net is unguided). A valid floor for admissible-heuristic scaling:
    /// [`Self::multiplier`] always returns some triple's component when the
    /// net has entries, so the minimum over all components bounds it.
    pub fn min_multiplier(&self, net: NetId) -> f64 {
        let Some(list) = self.entries.get(&(net.index() as u32)) else {
            return 1.0;
        };
        list.iter()
            .flat_map(|(_, t)| t.0)
            .fold(1.0_f64, f64::min)
            .max(0.0)
    }

    /// Per-net normalization constant: the true minimum over the net's
    /// triple components, with no neutral-1.0 fold (nearest-AP lookup covers
    /// the whole plane, so a guided net never samples neutral). The router
    /// divides every multiplier by this, which makes guidance *scale-free*:
    /// multiplying all of a net's triples by one factor changes nothing.
    pub fn scale_floor(&self, net: NetId) -> f64 {
        let Some(list) = self.entries.get(&(net.index() as u32)) else {
            return 1.0;
        };
        list.iter()
            .flat_map(|(_, t)| t.0)
            .fold(f64::INFINITY, f64::min)
            .clamp(1e-6, f64::MAX)
    }
}

/// A uniform 2-D guidance map (the GeniusRoute style): per-net multiplier
/// sampled on a coarse `w × h` raster over the die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidanceMap2D {
    /// Raster width.
    pub w: usize,
    /// Raster height.
    pub h: usize,
    /// Die lower-left in dbu.
    pub origin: (i64, i64),
    /// Die size in dbu.
    pub size: (i64, i64),
    /// Per net: `w*h` multipliers (row-major, y-major ordering).
    maps: HashMap<u32, Vec<f64>>,
}

impl GuidanceMap2D {
    /// Creates an empty map raster over the given die window.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate raster or window.
    pub fn new(w: usize, h: usize, origin: (i64, i64), size: (i64, i64)) -> Self {
        assert!(w > 0 && h > 0, "degenerate raster");
        assert!(size.0 > 0 && size.1 > 0, "degenerate window");
        Self {
            w,
            h,
            origin,
            size,
            maps: HashMap::new(),
        }
    }

    /// Installs the multiplier raster of one net.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != w*h`.
    pub fn set_net(&mut self, net: NetId, values: Vec<f64>) {
        assert_eq!(values.len(), self.w * self.h, "raster size mismatch");
        self.maps.insert(net.index() as u32, values);
    }

    /// Whether any net carries a map.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Multiplier for `net` at dbu position `pos` (1.0 for unmapped nets or
    /// positions outside the window).
    pub fn multiplier(&self, net: NetId, pos: Point3) -> f64 {
        let Some(map) = self.maps.get(&(net.index() as u32)) else {
            return 1.0;
        };
        let fx = (pos.x - self.origin.0) as f64 / self.size.0 as f64;
        let fy = (pos.y - self.origin.1) as f64 / self.size.1 as f64;
        if !(0.0..1.0).contains(&fx) || !(0.0..1.0).contains(&fy) {
            return 1.0;
        }
        let cx = ((fx * self.w as f64) as usize).min(self.w - 1);
        let cy = ((fy * self.h as f64) as usize).min(self.h - 1);
        map[cy * self.w + cx]
    }

    /// Smallest multiplier `net` can see anywhere (1.0 for unmapped nets).
    /// Includes 1.0 in the minimum because positions outside the raster
    /// window sample as neutral.
    pub fn min_multiplier(&self, net: NetId) -> f64 {
        let Some(map) = self.maps.get(&(net.index() as u32)) else {
            return 1.0;
        };
        map.iter().copied().fold(1.0_f64, f64::min).max(0.0)
    }

    /// Per-net normalization constant (see [`NonUniformGuidance::scale_floor`]).
    /// Folds the neutral 1.0 in because positions outside the raster window
    /// sample as neutral, so the true minimum can never exceed 1.0.
    pub fn scale_floor(&self, net: NetId) -> f64 {
        self.min_multiplier(net).clamp(1e-6, f64::MAX)
    }
}

/// The guidance input to the router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoutingGuidance {
    /// No guidance — the MagicalRoute baseline.
    None,
    /// The paper's non-uniform per-access-point guidance.
    NonUniform(NonUniformGuidance),
    /// GeniusRoute-style uniform 2-D maps.
    Map(GuidanceMap2D),
}

impl RoutingGuidance {
    /// Directional step-cost multiplier for `net` at `pos` along `axis`.
    pub fn multiplier(&self, net: NetId, pos: Point3, axis: Axis) -> f64 {
        match self {
            RoutingGuidance::None => 1.0,
            RoutingGuidance::NonUniform(g) => g.multiplier(net, pos, axis),
            RoutingGuidance::Map(m) => m.multiplier(net, pos),
        }
    }

    /// Smallest multiplier `net` can see anywhere — the per-net floor the
    /// guidance-aware A* heuristic scales by (see `RouterConfig::guidance_aware_h`).
    pub fn min_multiplier(&self, net: NetId) -> f64 {
        match self {
            RoutingGuidance::None => 1.0,
            RoutingGuidance::NonUniform(g) => g.min_multiplier(net),
            RoutingGuidance::Map(m) => m.min_multiplier(net),
        }
    }

    /// Per-net normalization constant. The router divides every multiplier
    /// of `net` by this before costing a step, so guidance expresses only
    /// *relative* preferences: uniformly scaling a net's guidance is a
    /// no-op, and the normalized multiplier is ≥ 1.0 — which is what keeps
    /// the guidance-aware heuristic admissible with unit scale.
    pub fn scale_floor(&self, net: NetId) -> f64 {
        match self {
            RoutingGuidance::None => 1.0,
            RoutingGuidance::NonUniform(g) => g.scale_floor(net),
            RoutingGuidance::Map(m) => m.scale_floor(net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_ap_wins() {
        let mut g = NonUniformGuidance::new();
        let net = NetId::new(1);
        g.set(net, Point3::new(0, 0, 0), CostTriple([0.5, 1.0, 1.0]));
        g.set(net, Point3::new(100, 0, 0), CostTriple([3.0, 1.0, 1.0]));
        assert_eq!(g.multiplier(net, Point3::new(10, 0, 0), Axis::X), 0.5);
        assert_eq!(g.multiplier(net, Point3::new(90, 0, 0), Axis::X), 3.0);
        assert_eq!(
            g.multiplier(NetId::new(9), Point3::new(0, 0, 0), Axis::X),
            1.0
        );
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn map2d_sampling() {
        let mut m = GuidanceMap2D::new(2, 2, (0, 0), (100, 100));
        let net = NetId::new(0);
        m.set_net(net, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.multiplier(net, Point3::new(10, 10, 0)), 1.0);
        assert_eq!(m.multiplier(net, Point3::new(90, 10, 0)), 2.0);
        assert_eq!(m.multiplier(net, Point3::new(10, 90, 2)), 3.0);
        assert_eq!(m.multiplier(net, Point3::new(90, 90, 0)), 4.0);
        // outside window and unmapped nets are neutral
        assert_eq!(m.multiplier(net, Point3::new(-5, 10, 0)), 1.0);
        assert_eq!(m.multiplier(NetId::new(7), Point3::new(10, 10, 0)), 1.0);
    }

    #[test]
    fn guidance_enum_dispatch() {
        assert_eq!(
            RoutingGuidance::None.multiplier(NetId::new(0), Point3::new(0, 0, 0), Axis::Y),
            1.0
        );
        let mut g = NonUniformGuidance::new();
        g.set(
            NetId::new(0),
            Point3::new(0, 0, 0),
            CostTriple([1.0, 7.0, 1.0]),
        );
        let rg = RoutingGuidance::NonUniform(g);
        assert_eq!(
            rg.multiplier(NetId::new(0), Point3::new(0, 0, 0), Axis::Y),
            7.0
        );
    }

    #[test]
    fn min_multiplier_floors() {
        let net = NetId::new(3);
        assert_eq!(RoutingGuidance::None.min_multiplier(net), 1.0);

        let mut g = NonUniformGuidance::new();
        g.set(net, Point3::new(0, 0, 0), CostTriple([0.5, 2.0, 1.0]));
        g.set(net, Point3::new(50, 0, 0), CostTriple([0.8, 0.9, 4.0]));
        let rg = RoutingGuidance::NonUniform(g);
        assert_eq!(rg.min_multiplier(net), 0.5);
        assert_eq!(rg.min_multiplier(NetId::new(9)), 1.0, "unguided is neutral");

        let mut m = GuidanceMap2D::new(2, 1, (0, 0), (100, 100));
        m.set_net(net, vec![0.25, 3.0]);
        let rm = RoutingGuidance::Map(m);
        assert_eq!(rm.min_multiplier(net), 0.25);
        // expensive-everywhere maps still floor at the neutral 1.0 because
        // positions outside the window sample as 1.0
        let mut m2 = GuidanceMap2D::new(1, 1, (0, 0), (10, 10));
        m2.set_net(net, vec![5.0]);
        assert_eq!(RoutingGuidance::Map(m2).min_multiplier(net), 1.0);
    }

    #[test]
    #[should_panic(expected = "raster size mismatch")]
    fn map_rejects_wrong_size() {
        let mut m = GuidanceMap2D::new(2, 2, (0, 0), (10, 10));
        m.set_net(NetId::new(0), vec![1.0; 3]);
    }
}
