//! Design-rule and connectivity checking of routed layouts.
//!
//! On a gridded router with one wire per track, same-layer spacing is honored
//! by construction as long as two different nets never occupy the same node;
//! the checker therefore verifies:
//!
//! * **short**: segments of different nets that intersect on the same layer,
//! * **spacing**: parallel runs of different nets closer than the layer's
//!   minimum spacing,
//! * **connectivity**: each net's segments plus pin locations form a single
//!   connected component,
//! * **bounds**: all geometry inside the die.

use std::fmt;

use af_geom::{parallel_run_length, Point3, Rect, Segment};
use af_netlist::{Circuit, NetId};
use af_place::Placement;
use af_tech::Technology;

use crate::RoutedLayout;

/// The kind of a DRC/connectivity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two nets share geometry on the same layer.
    Short,
    /// Two nets run closer than minimum spacing.
    Spacing,
    /// A net's routed geometry is not a single connected component.
    Open,
    /// Geometry escapes the die.
    OutOfBounds,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Short => "short",
            ViolationKind::Spacing => "spacing",
            ViolationKind::Open => "open",
            ViolationKind::OutOfBounds => "out-of-bounds",
        };
        f.write_str(s)
    }
}

/// One violation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violation class.
    pub kind: ViolationKind,
    /// Nets involved (one for open/bounds, two for short/spacing).
    pub nets: Vec<NetId>,
    /// Human-readable description.
    pub detail: String,
}

/// Checks a routed layout. Returns all violations found (empty = clean).
pub fn check_layout(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    layout: &RoutedLayout,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let die = placement.die();

    // Bounds.
    for rn in &layout.nets {
        for s in &rn.segments {
            for p in [s.start(), s.end()] {
                if !die.contains(af_geom::Point::new(p.x, p.y)) {
                    violations.push(Violation {
                        kind: ViolationKind::OutOfBounds,
                        nets: vec![rn.net],
                        detail: format!("point {p} outside die {die}"),
                    });
                }
            }
        }
    }

    // Shorts & spacing between different nets.
    for (i, a) in layout.nets.iter().enumerate() {
        for b in layout.nets.iter().skip(i + 1) {
            for sa in a.segments.iter().filter(|s| !s.is_via()) {
                for sb in b.segments.iter().filter(|s| !s.is_via()) {
                    if sa.layer() != sb.layer() {
                        continue;
                    }
                    if segments_cross(sa, sb) {
                        violations.push(Violation {
                            kind: ViolationKind::Short,
                            nets: vec![a.net, b.net],
                            detail: format!("{sa} shorts {sb}"),
                        });
                    } else if let Some((run, sep)) = parallel_run_length(sa, sb) {
                        let min = tech.rules().min_spacing(sa.layer());
                        if sep < min && run > 0 {
                            violations.push(Violation {
                                kind: ViolationKind::Spacing,
                                nets: vec![a.net, b.net],
                                detail: format!("separation {sep} < {min} over {run} dbu"),
                            });
                        }
                    }
                }
            }
        }
    }

    // Connectivity per net: segments + pin centers must form one component.
    for rn in &layout.nets {
        let net = rn.net;
        let pins: Vec<Point3> = placement
            .pins_of_net(net)
            .map(|p| {
                let c = p.rect.center();
                Point3::new(c.x, c.y, p.layer)
            })
            .collect();
        if pins.len() < 2 {
            continue;
        }
        if !is_connected(&rn.segments, &pins, tech.grid_pitch() * 4) {
            violations.push(Violation {
                kind: ViolationKind::Open,
                nets: vec![net],
                detail: format!("net `{}` not fully connected", circuit.net(net).name),
            });
        }
    }

    af_obs::counter("route.drc_violations", violations.len() as u64);
    violations
}

/// Whether two same-layer planar segments share a point (touching endpoints
/// count as a short between different nets).
fn segments_cross(a: &Segment, b: &Segment) -> bool {
    let ra = seg_rect(a);
    let rb = seg_rect(b);
    ra.intersects(&rb)
}

fn seg_rect(s: &Segment) -> Rect {
    Rect::from_coords(s.start().x, s.start().y, s.end().x, s.end().y)
}

/// Union-find connectivity: endpoints within `tol` dbu (same layer) merge;
/// vias merge their two layers; pins attach to any segment point within
/// `tol`.
fn is_connected(segments: &[Segment], pins: &[Point3], tol: i64) -> bool {
    // collect nodes: segment endpoints + pins
    let mut points: Vec<Point3> = Vec::new();
    for s in segments {
        points.push(s.start());
        points.push(s.end());
    }
    let first_pin = points.len();
    points.extend_from_slice(pins);
    let n = points.len();
    if n == 0 {
        return true;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };
    // segment endpoints are connected through the segment
    for (si, _) in segments.iter().enumerate() {
        union(&mut parent, 2 * si, 2 * si + 1);
    }
    // merge coincident/near points; pins connect to interior points too
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (points[i], points[j]);
            let near =
                a.xy().manhattan(b.xy()) <= tol && (a.z == b.z || is_via_pair(segments, i, j));
            if near {
                union(&mut parent, i, j);
            }
        }
    }
    // pins may touch a segment midspan: connect pin to segment if the pin
    // projects onto the segment's track within tol
    for (pi, p) in pins.iter().enumerate() {
        for (si, s) in segments.iter().enumerate() {
            if point_on_segment(p, s, tol) {
                union(&mut parent, first_pin + pi, 2 * si);
            }
        }
    }
    let root = find(&mut parent, first_pin);
    (first_pin..n).all(|i| find(&mut parent, i) == root)
}

fn is_via_pair(_segments: &[Segment], _i: usize, _j: usize) -> bool {
    // endpoints of vias are stored as Point3 on distinct layers; they merge
    // through the via segment itself (same segment union), so cross-layer
    // point merging is unnecessary here.
    false
}

fn point_on_segment(p: &Point3, s: &Segment, tol: i64) -> bool {
    if s.is_via() {
        return (p.z == s.start().z || p.z == s.end().z) && p.xy().manhattan(s.start().xy()) <= tol;
    }
    if p.z != s.layer() {
        return false;
    }
    let r = seg_rect(s).expanded(tol);
    r.contains(p.xy())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Router, RouterConfig, RoutingGuidance};
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    #[test]
    fn clean_routing_passes_drc() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let violations = check_layout(&c, &p, &t, &layout);
        let hard: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v.kind, ViolationKind::Short | ViolationKind::OutOfBounds))
            .collect();
        assert!(hard.is_empty(), "hard violations: {hard:?}");
    }

    #[test]
    fn crossing_detection() {
        let a = Segment::new(Point3::new(0, 5, 0), Point3::new(10, 5, 0)).unwrap();
        let b = Segment::new(Point3::new(5, 0, 0), Point3::new(5, 10, 0)).unwrap();
        assert!(segments_cross(&a, &b));
        let c = Segment::new(Point3::new(20, 0, 0), Point3::new(20, 10, 0)).unwrap();
        assert!(!segments_cross(&a, &c));
    }

    #[test]
    fn connectivity_helper() {
        let segs = vec![
            Segment::new(Point3::new(0, 0, 0), Point3::new(100, 0, 0)).unwrap(),
            Segment::new(Point3::new(100, 0, 0), Point3::new(100, 0, 1)).unwrap(),
            Segment::new(Point3::new(100, 0, 1), Point3::new(100, 100, 1)).unwrap(),
        ];
        let pins = vec![Point3::new(0, 0, 0), Point3::new(100, 100, 1)];
        assert!(is_connected(&segs, &pins, 10));
        let disconnected_pins = vec![Point3::new(0, 0, 0), Point3::new(500, 500, 0)];
        assert!(!is_connected(&segs, &disconnected_pins, 10));
    }

    #[test]
    fn violation_display() {
        assert_eq!(ViolationKind::Short.to_string(), "short");
        assert_eq!(ViolationKind::Open.to_string(), "open");
    }
}
