//! Batched row gather / scatter-add over a relation's index list.
//!
//! A [`CsrIndex`] groups one relation's edge endpoints by target row with a
//! stable counting sort, so whole row-blocks move per memory pass instead of
//! one scalar at a time. Stability is what preserves bit-exactness: within
//! each target row the edges keep their original (ascending) order, so the
//! per-row sums accumulate in exactly the order the scalar oracle's
//! edge-at-a-time loop produces.

/// One relation's index list plus its row-grouped (CSR) form.
///
/// The same structure serves both directions of both ops: `scatter_add`
/// forward and `gather` backward walk the grouped form; `gather` forward and
/// `scatter_add` backward walk the raw list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrIndex {
    idx: Vec<u32>,
    n_rows: usize,
    /// `indptr[r]..indptr[r+1]` spans row `r`'s entries in `order`.
    indptr: Vec<u32>,
    /// Edge positions sorted by (row, original position) — a stable grouping.
    order: Vec<u32>,
}

impl CsrIndex {
    /// Groups `idx` (one target row per edge) into CSR form over `n_rows`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn new(idx: &[usize], n_rows: usize) -> Self {
        let mut counts = vec![0u32; n_rows + 1];
        for &i in idx {
            assert!(i < n_rows, "index {i} out of {n_rows} rows");
            counts[i + 1] += 1;
        }
        for r in 0..n_rows {
            counts[r + 1] += counts[r];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut order = vec![0u32; idx.len()];
        for (e, &i) in idx.iter().enumerate() {
            order[cursor[i] as usize] = e as u32;
            cursor[i] += 1;
        }
        Self {
            idx: idx.iter().map(|&i| i as u32).collect(),
            n_rows,
            indptr,
            order,
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the relation has no edges.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Number of grouped rows (the matrix side this index addresses).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The raw per-edge index list.
    pub fn idx(&self) -> &[u32] {
        &self.idx
    }

    /// Approximate resident bytes (for cache accounting).
    pub fn approx_bytes(&self) -> usize {
        (self.idx.len() + self.indptr.len() + self.order.len()) * 4 + std::mem::size_of::<Self>()
    }

    /// `out[e] = x[idx[e]]` row-wise: batched gather (`out` is `E×cols`).
    pub fn gather_rows(&self, out: &mut [f64], x: &[f64], cols: usize) {
        debug_assert_eq!(out.len(), self.idx.len() * cols);
        debug_assert_eq!(x.len(), self.n_rows * cols);
        for (e, &i) in self.idx.iter().enumerate() {
            let src = &x[i as usize * cols..(i as usize + 1) * cols];
            out[e * cols..(e + 1) * cols].copy_from_slice(src);
        }
    }

    /// `out[r] = Σ_{e: idx[e]=r} msgs[e]` row-wise: batched scatter-add.
    ///
    /// Overwrites `out` (`n_rows×cols`); per-row accumulation runs in
    /// ascending edge order (stable grouping), matching the oracle.
    pub fn scatter_add_rows(&self, out: &mut [f64], msgs: &[f64], cols: usize) {
        debug_assert_eq!(out.len(), self.n_rows * cols);
        debug_assert_eq!(msgs.len(), self.idx.len() * cols);
        out.fill(0.0);
        for r in 0..self.n_rows {
            let dst = &mut out[r * cols..(r + 1) * cols];
            for &e in &self.order[self.indptr[r] as usize..self.indptr[r + 1] as usize] {
                let src = &msgs[e as usize * cols..(e as usize + 1) * cols];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
    }

    /// Gather backward: `gx[r] += Σ_{e: idx[e]=r} gout[e]` — same grouped
    /// walk as [`scatter_add_rows`](Self::scatter_add_rows) but accumulating.
    ///
    /// Each element's edge sum is built in a local accumulator (ascending
    /// edge order) and added to `gx` once. The oracle materializes the whole
    /// op gradient before accumulating it into the node, so when `gx`
    /// already holds another consumer's contribution a term-by-term `+=`
    /// would associate differently and drift by ULPs.
    pub fn gather_backward_acc(&self, gx: &mut [f64], gout: &[f64], cols: usize) {
        debug_assert_eq!(gx.len(), self.n_rows * cols);
        debug_assert_eq!(gout.len(), self.idx.len() * cols);
        for r in 0..self.n_rows {
            let edges = &self.order[self.indptr[r] as usize..self.indptr[r + 1] as usize];
            if edges.is_empty() {
                continue;
            }
            let dst = &mut gx[r * cols..(r + 1) * cols];
            for (c, d) in dst.iter_mut().enumerate() {
                let mut acc = 0.0;
                for &e in edges {
                    acc += gout[e as usize * cols + c];
                }
                *d += acc;
            }
        }
    }

    /// Scatter-add backward: `gmsgs[e] += gout[idx[e]]` — a pure row copy.
    pub fn scatter_backward_acc(&self, gmsgs: &mut [f64], gout: &[f64], cols: usize) {
        debug_assert_eq!(gmsgs.len(), self.idx.len() * cols);
        debug_assert_eq!(gout.len(), self.n_rows * cols);
        for (e, &i) in self.idx.iter().enumerate() {
            let src = &gout[i as usize * cols..(i as usize + 1) * cols];
            let dst = &mut gmsgs[e * cols..(e + 1) * cols];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_is_stable() {
        let csr = CsrIndex::new(&[2, 0, 2, 1, 0, 2], 3);
        assert_eq!(csr.len(), 6);
        assert_eq!(csr.n_rows(), 3);
        assert_eq!(csr.indptr, vec![0, 2, 3, 6]);
        // Row 0 gets edges 1, 4; row 1 gets edge 3; row 2 gets 0, 2, 5 — all
        // in original order.
        assert_eq!(csr.order, vec![1, 4, 3, 0, 2, 5]);
    }

    #[test]
    fn scatter_matches_scalar_loop_bitwise() {
        let idx = [2usize, 0, 2, 1, 0, 2];
        let csr = CsrIndex::new(&idx, 3);
        let cols = 2;
        let msgs: Vec<f64> = (0..12).map(|i| (i as f64) * 0.37 - 1.0).collect();
        let mut out = vec![f64::NAN; 6];
        csr.scatter_add_rows(&mut out, &msgs, cols);
        // Scalar oracle: edge-at-a-time, ascending edge order.
        let mut want = vec![0.0; 6];
        for (e, &i) in idx.iter().enumerate() {
            for c in 0..cols {
                want[i * cols + c] += msgs[e * cols + c];
            }
        }
        for (g, w) in out.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn gather_roundtrip_and_backward() {
        let idx = [1usize, 1, 0];
        let csr = CsrIndex::new(&idx, 2);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut out = vec![0.0; 6];
        csr.gather_rows(&mut out, &x, 2);
        assert_eq!(out, vec![3.0, 4.0, 3.0, 4.0, 1.0, 2.0]);

        let gout = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let mut gx = vec![0.0; 4];
        csr.gather_backward_acc(&mut gx, &gout, 2);
        // Row 1 accumulates edges 0 then 1 (ascending), row 0 edge 2.
        assert_eq!(gx, vec![0.5, 0.6, 0.1 + 0.3, 0.2 + 0.4]);

        let mut gmsgs = vec![0.0; 6];
        csr.scatter_backward_acc(&mut gmsgs, &[9.0, 8.0, 7.0, 6.0], 2);
        assert_eq!(gmsgs, vec![7.0, 6.0, 7.0, 6.0, 9.0, 8.0]);
    }

    #[test]
    fn empty_relation() {
        let csr = CsrIndex::new(&[], 4);
        assert!(csr.is_empty());
        let mut out = vec![f64::NAN; 8];
        csr.scatter_add_rows(&mut out, &[], 2);
        assert!(out.iter().all(|&v| v == 0.0));
        let mut none: Vec<f64> = vec![];
        csr.gather_rows(&mut none, &[0.0; 8], 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_out_of_range() {
        let _ = CsrIndex::new(&[5], 3);
    }
}
