//! # af-tensor — tensor kernels and a reverse-mode tape for AnalogFold
//!
//! A zero-dependency f64 tensor engine sized for the 3DGNN workload:
//!
//! - [`kernels`] — cache-blocked matmul built from `mul_add` chains, its two
//!   backward forms, and fused `linear`/activation kernels
//!   ([`matmul_bias_relu`](kernels::matmul_bias_relu) and friends);
//! - [`exp`] — a deterministic vectorized `exp`/sigmoid/SiLU (AVX2 with a
//!   bit-identical scalar fallback) that removes the libm bottleneck from
//!   activation- and RBF-heavy replays;
//! - [`csr`] — [`CsrIndex`]: per-relation batched row `gather` /
//!   `scatter_add` with a stable grouping;
//! - [`tape`] — [`Tape`]/[`Var`]: a record-once / replay-many reverse-mode
//!   tape whose forward+backward replays are allocation-free, so one tape
//!   serves every L-BFGS iteration of a relaxation or every sample of a
//!   training epoch.
//!
//! ## Determinism and parity contract
//!
//! Two tiers:
//!
//! **Algebraic kernels** (matmul, gather/scatter, sums, add/mul/…) preserve
//! the **per-output-element accumulation order** of the scalar oracle
//! (`af_nn::Graph`): ascending-`k` dot products, stable ascending-edge
//! scatter sums, ascending-row column sums. On hosts without FMA they are
//! bit-identical to the oracle; when the `fma` target feature is on or the
//! runtime AVX2+FMA dispatch engages ([`kernels::fma_active`]), the matmul
//! family fuses the multiply-add rounding step and matches within `1e-9`.
//!
//! **Transcendentals** (SiLU, sigmoid, RBF) run on the [`exp`] module's
//! polynomial exp — accurate to ≲1e-13 relative against libm, so
//! end-to-end predictions/gradients match the oracle within the documented
//! `≤1e-9` envelope rather than bitwise.
//!
//! Crucially, the fast path is **deterministic in itself**: the AVX2 lanes
//! and the scalar fallback evaluate the identical rounding sequence, so
//! replays are bit-identical across runs, thread counts, and machines.
//! Thread-count invariance is structural: kernels are sequential per
//! tensor, and callers parallelize only across independent tapes.

#![warn(missing_docs)]

pub mod csr;
pub mod exp;
pub mod kernels;
pub mod tape;

pub use csr::CsrIndex;
pub use exp::{fast_exp, fast_sigmoid, vexp_inplace, vsigmoid, vsilu};
pub use kernels::{
    act_backward_aux_inplace, act_backward_inplace, act_forward, act_forward_aux, add_bias_inplace,
    colsum_acc, fma_active, fmadd, linear_forward, linear_forward_aux, matmul, matmul_a_bt_acc,
    matmul_at_b_acc, matmul_bias_relu, Act,
};
pub use tape::{CsrRef, Tape, Var};
