//! Flat-slice compute kernels.
//!
//! Every kernel is **order-preserving**: for each output element the
//! floating-point additions happen in exactly the order the scalar reference
//! implementation (`af_nn::Graph` / `af_nn::Tensor`) performs them — ascending
//! reduction index, one accumulator per element. Cache blocking and the
//! axpy-style inner loops change *which* elements are in flight, never the
//! per-element summation order.
//!
//! On hosts with AVX2+FMA the matmul family dispatches at runtime to a build
//! of the same loop nest compiled with fused multiply-adds ([`fma_active`]).
//! Fusing halves the per-term rounding, so results then match the plain
//! `a*b + c` chain (and hence the oracle) within the crate's ≤1e-9 envelope
//! rather than bitwise; `f64::mul_add` reproduces the fused sequence exactly
//! on any host, which is what the kernel tests pin against. Without FMA the
//! kernels remain bit-identical to the oracle.
//!
//! Forward kernels overwrite their output; `*_acc` kernels accumulate into it
//! (the tape zeroes gradient buffers once per backward sweep). The two
//! backward matmul forms materialize their full product in a caller-owned
//! scratch and fold it into the gradient with a single `+=` per element —
//! the oracle materializes whole gradients too, and a weight shared by
//! several call sites would otherwise associate the contributions
//! differently.

/// Fused (or not) multiply-add `a * b + c`.
///
/// `f64::mul_add` is only fast when the target actually has an FMA unit
/// enabled; on baseline x86-64 it lowers to a libm call that is ~50× slower
/// than a multiply-add pair. So: use the hardware instruction when the `fma`
/// target feature is on, and the plain expression otherwise. The plain form
/// is also what the scalar oracle computes, which is what makes
/// non-dispatched default builds bit-exact.
#[inline(always)]
pub fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Whether the matmul kernels run with fused multiply-adds — either because
/// the build enables the `fma` target feature or because the host supports
/// AVX2+FMA and the runtime dispatch kicks in. Tests use this to pick the
/// matching reference: `f64::mul_add` chains when `true` (bit-exact on any
/// host — the soft-float fallback is correctly rounded), plain `a*b + c`
/// chains when `false`.
pub fn fma_active() -> bool {
    if cfg!(target_feature = "fma") {
        return true;
    }
    #[cfg(target_arch = "x86_64")]
    {
        crate::exp::have_avx2_fma()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Multiply-add selected by the const-generic `FUSE` flag so one loop nest
/// serves both the plain and the FMA-dispatched builds.
#[inline(always)]
fn mad<const FUSE: bool>(a: f64, b: f64, c: f64) -> f64 {
    if FUSE {
        a.mul_add(b, c)
    } else {
        fmadd(a, b, c)
    }
}

/// One `T`-column strip of the product: for every output row, a fixed-size
/// local accumulator covers columns `j0..j0+T` and runs the whole reduction
/// before a single store. `T` is a compile-time constant so LLVM promotes
/// the accumulator to vector registers — the reduction never round-trips
/// through memory, unlike an axpy into `out`. Per output element the sum
/// still runs in ascending `k`, identical to the naive triple loop.
#[inline(always)]
fn matmul_strip<const FUSE: bool, const T: usize>(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
) {
    // Rows go in pairs: each element keeps its own accumulator (so the
    // ascending-`k` order is untouched), but two rows' worth of chains are
    // in flight, hiding the FMA latency that a single accumulator set would
    // serialize on — and the `b` strip loads are shared between the rows.
    let mut i = 0;
    while i + 2 <= m {
        let arow0 = &a[i * k..(i + 1) * k];
        let arow1 = &a[(i + 1) * k..(i + 2) * k];
        let mut acc0 = [0.0f64; T];
        let mut acc1 = [0.0f64; T];
        for kk in 0..k {
            let brow = &b[kk * n + j0..kk * n + j0 + T];
            let a0 = arow0[kk];
            let a1 = arow1[kk];
            for t in 0..T {
                acc0[t] = mad::<FUSE>(a0, brow[t], acc0[t]);
                acc1[t] = mad::<FUSE>(a1, brow[t], acc1[t]);
            }
        }
        out[i * n + j0..i * n + j0 + T].copy_from_slice(&acc0);
        out[(i + 1) * n + j0..(i + 1) * n + j0 + T].copy_from_slice(&acc1);
        i += 2;
    }
    if i < m {
        let arow = &a[i * k..(i + 1) * k];
        let mut acc = [0.0f64; T];
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &b[kk * n + j0..kk * n + j0 + T];
            for (ac, &bv) in acc.iter_mut().zip(brow) {
                *ac = mad::<FUSE>(aik, bv, *ac);
            }
        }
        out[i * n + j0..i * n + j0 + T].copy_from_slice(&acc);
    }
}

/// The strip-tiled loop nest shared by every [`matmul`] build: 16-column
/// strips (4 AVX2 vectors of accumulators) with power-of-two remainder
/// tiles. The strip loop is outer so a `k×16` slice of `b` stays hot across
/// all rows of `a`.
#[inline(always)]
fn matmul_body<const FUSE: bool>(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    m: usize,
    k: usize,
    n: usize,
) {
    let mut j0 = 0;
    while j0 + 16 <= n {
        matmul_strip::<FUSE, 16>(out, a, b, m, k, n, j0);
        j0 += 16;
    }
    if j0 + 8 <= n {
        matmul_strip::<FUSE, 8>(out, a, b, m, k, n, j0);
        j0 += 8;
    }
    if j0 + 4 <= n {
        matmul_strip::<FUSE, 4>(out, a, b, m, k, n, j0);
        j0 += 4;
    }
    if j0 + 2 <= n {
        matmul_strip::<FUSE, 2>(out, a, b, m, k, n, j0);
        j0 += 2;
    }
    if j0 < n {
        matmul_strip::<FUSE, 1>(out, a, b, m, k, n, j0);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_avx2_fma(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    matmul_body::<true>(out, a, b, m, k, n);
}

/// `out = a × b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n`.
///
/// # Panics
///
/// Debug-asserts slice lengths.
pub fn matmul(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    #[cfg(target_arch = "x86_64")]
    if crate::exp::have_avx2_fma() {
        // SAFETY: dispatch is gated on runtime AVX2+FMA detection.
        unsafe { matmul_avx2_fma(out, a, b, m, k, n) };
        return;
    }
    matmul_body::<false>(out, a, b, m, k, n);
}

/// Grows `tmp` to at least `len` and returns the zero-filled prefix.
#[inline]
fn scratch_slice(tmp: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if tmp.len() < len {
        tmp.resize(len, 0.0);
    }
    &mut tmp[..len]
}

/// `ga += g × bᵀ` body: transpose `b` into scratch, run the (possibly
/// fused) matmul into scratch, fold in with one `+=` per element. Per output
/// element the reduction is the same ascending-`c` dot as the oracle's
/// `grad.matmul(&b.transpose())`.
#[inline(always)]
fn a_bt_body<const FUSE: bool>(
    ga: &mut [f64],
    g: &[f64],
    b: &[f64],
    m: usize,
    n: usize,
    p: usize,
    tmp: &mut [f64],
) {
    let (bt, prod) = tmp.split_at_mut(n * p);
    for j in 0..p {
        for (c, &bv) in b[j * n..(j + 1) * n].iter().enumerate() {
            bt[c * p + j] = bv;
        }
    }
    matmul_body::<FUSE>(prod, g, bt, m, n, p);
    for (o, &t) in ga.iter_mut().zip(prod.iter()) {
        *o += t;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn a_bt_avx2_fma(
    ga: &mut [f64],
    g: &[f64],
    b: &[f64],
    m: usize,
    n: usize,
    p: usize,
    tmp: &mut [f64],
) {
    a_bt_body::<true>(ga, g, b, m, n, p, tmp);
}

/// `ga += g × bᵀ` where `g` is `m×n`, `b` is `p×n`, `ga` is `m×p` — the `dA`
/// half of matmul backward. `tmp` is reusable scratch (grown as needed; no
/// steady-state allocation).
pub fn matmul_a_bt_acc(
    ga: &mut [f64],
    g: &[f64],
    b: &[f64],
    m: usize,
    n: usize,
    p: usize,
    tmp: &mut Vec<f64>,
) {
    debug_assert_eq!(ga.len(), m * p);
    debug_assert_eq!(g.len(), m * n);
    debug_assert_eq!(b.len(), p * n);
    let tmp = scratch_slice(tmp, n * p + m * p);
    #[cfg(target_arch = "x86_64")]
    if crate::exp::have_avx2_fma() {
        // SAFETY: dispatch is gated on runtime AVX2+FMA detection.
        unsafe { a_bt_avx2_fma(ga, g, b, m, n, p, tmp) };
        return;
    }
    a_bt_body::<false>(ga, g, b, m, n, p, tmp);
}

/// `gb += aᵀ × g` body: transpose `a` into scratch, run the strip-tiled
/// matmul `aᵀ(k×m) × g(m×n)` into scratch, fold in with one `+=` per
/// element. Per output element the reduction is the same ascending-`r` dot
/// as the oracle's `a.transpose().matmul(&grad)`.
#[inline(always)]
fn at_b_body<const FUSE: bool>(
    gb: &mut [f64],
    a: &[f64],
    g: &[f64],
    m: usize,
    k: usize,
    n: usize,
    tmp: &mut [f64],
) {
    let (at, prod) = tmp.split_at_mut(m * k);
    for r in 0..m {
        for (c, &av) in a[r * k..(r + 1) * k].iter().enumerate() {
            at[c * m + r] = av;
        }
    }
    matmul_body::<FUSE>(prod, at, g, k, m, n);
    for (o, &t) in gb.iter_mut().zip(prod.iter()) {
        *o += t;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn at_b_avx2_fma(
    gb: &mut [f64],
    a: &[f64],
    g: &[f64],
    m: usize,
    k: usize,
    n: usize,
    tmp: &mut [f64],
) {
    at_b_body::<true>(gb, a, g, m, k, n, tmp);
}

/// `gb += aᵀ × g` where `a` is `m×k`, `g` is `m×n`, `gb` is `k×n` — the `dB`
/// half of matmul backward. `tmp` is reusable scratch (grown as needed; no
/// steady-state allocation).
pub fn matmul_at_b_acc(
    gb: &mut [f64],
    a: &[f64],
    g: &[f64],
    m: usize,
    k: usize,
    n: usize,
    tmp: &mut Vec<f64>,
) {
    debug_assert_eq!(gb.len(), k * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(g.len(), m * n);
    let tmp = scratch_slice(tmp, m * k + k * n);
    #[cfg(target_arch = "x86_64")]
    if crate::exp::have_avx2_fma() {
        // SAFETY: dispatch is gated on runtime AVX2+FMA detection.
        unsafe { at_b_avx2_fma(gb, a, g, m, k, n, tmp) };
        return;
    }
    at_b_body::<false>(gb, a, g, m, k, n, tmp);
}

/// Adds a `1×n` bias row to every row of the `m×n` matrix in place.
pub fn add_bias_inplace(x: &mut [f64], bias: &[f64], m: usize, n: usize) {
    debug_assert_eq!(x.len(), m * n);
    debug_assert_eq!(bias.len(), n);
    for r in 0..m {
        let row = &mut x[r * n..(r + 1) * n];
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// `gb += column sums of g` (`g` is `m×n`, `gb` is `1×n`), ascending rows —
/// the bias gradient of a fused linear layer. Each column's sum is built
/// locally and added to `gb` once (see [`matmul_at_b_acc`] for why).
pub fn colsum_acc(gb: &mut [f64], g: &[f64], m: usize, n: usize) {
    debug_assert_eq!(gb.len(), n);
    debug_assert_eq!(g.len(), m * n);
    for (c, o) in gb.iter_mut().enumerate() {
        let mut acc = 0.0;
        for r in 0..m {
            acc += g[r * n + c];
        }
        *o += acc;
    }
}

/// Activation kinds understood by the fused linear kernel and the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// No activation.
    Identity,
    /// `max(x, 0)`.
    Relu,
    /// `x · sigmoid(x)` (swish).
    Silu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// Logistic sigmoid on the deterministic vector-friendly exp — the single
/// definition every kernel (and every kernel test oracle) shares.
#[inline(always)]
fn sigmoid(x: f64) -> f64 {
    crate::exp::fast_sigmoid(x)
}

/// `out[i] = act(pre[i])` elementwise.
///
/// SiLU and sigmoid run through the batched [`crate::exp`] kernels (AVX2
/// where available, bit-identical scalar elsewhere); the oracle's libm exp
/// is matched within the crate's ≤1e-9 parity envelope, not bitwise.
pub fn act_forward(out: &mut [f64], pre: &[f64], act: Act) {
    debug_assert_eq!(out.len(), pre.len());
    match act {
        Act::Identity => out.copy_from_slice(pre),
        Act::Relu => {
            for (o, &v) in out.iter_mut().zip(pre) {
                *o = v.max(0.0);
            }
        }
        Act::Silu => {
            crate::exp::vsigmoid(out, pre);
            for (o, &v) in out.iter_mut().zip(pre) {
                *o *= v;
            }
        }
        Act::Tanh => {
            for (o, &v) in out.iter_mut().zip(pre) {
                *o = v.tanh();
            }
        }
        Act::Sigmoid => {
            crate::exp::vsigmoid(out, pre);
        }
    }
}

/// [`act_forward`] that additionally captures per-element forward state in
/// `aux` so the matching backward pass is exp-free. Only SiLU uses it (the
/// sigmoid lands in `aux`); every other activation ignores `aux`, which may
/// then be empty.
///
/// # Panics
///
/// Debug-asserts `aux.len() == pre.len()` for SiLU.
pub fn act_forward_aux(out: &mut [f64], aux: &mut [f64], pre: &[f64], act: Act) {
    if act == Act::Silu {
        crate::exp::vsilu(out, aux, pre);
    } else {
        act_forward(out, pre, act);
    }
}

/// Turns the output gradient into the pre-activation gradient, writing over
/// `pre` in place (forward recomputes it next run). `post` is the activated
/// output — tanh/sigmoid differentiate through their output value exactly as
/// the oracle does.
pub fn act_backward_inplace(pre: &mut [f64], post: &[f64], gout: &[f64], act: Act) {
    debug_assert_eq!(pre.len(), gout.len());
    debug_assert_eq!(post.len(), gout.len());
    match act {
        Act::Identity => pre.copy_from_slice(gout),
        Act::Relu => {
            for (p, &g) in pre.iter_mut().zip(gout) {
                *p = if *p > 0.0 { g } else { 0.0 };
            }
        }
        Act::Silu => {
            for (p, &g) in pre.iter_mut().zip(gout) {
                let v = *p;
                let s = sigmoid(v);
                *p = g * (s + v * s * (1.0 - s));
            }
        }
        Act::Tanh => {
            for ((p, &y), &g) in pre.iter_mut().zip(post).zip(gout) {
                *p = g * (1.0 - y * y);
            }
        }
        Act::Sigmoid => {
            for ((p, &y), &g) in pre.iter_mut().zip(post).zip(gout) {
                *p = g * y * (1.0 - y);
            }
        }
    }
}

/// [`act_backward_inplace`] using the forward's `aux` capture. For SiLU the
/// cached sigmoid `s` makes the pass exp-free:
/// `g·(s + v·s·(1-s)) = g·(s + post·(1-s))` bit-for-bit, because the forward
/// computed `post = v·s` with the same left association.
///
/// # Panics
///
/// Debug-asserts `aux.len() == gout.len()` for SiLU.
pub fn act_backward_aux_inplace(
    pre: &mut [f64],
    aux: &[f64],
    post: &[f64],
    gout: &[f64],
    act: Act,
) {
    if act == Act::Silu {
        debug_assert_eq!(aux.len(), gout.len());
        for (((p, &s), &y), &g) in pre.iter_mut().zip(aux).zip(post).zip(gout) {
            *p = g * (s + y * (1.0 - s));
        }
    } else {
        act_backward_inplace(pre, post, gout, act);
    }
}

/// Fused dense layer forward: `pre = x·W + b`, `out = act(pre)`.
///
/// `x` is `m×k`, `w` is `k×n`, `bias` is `1×n`. The matmul, bias add, and
/// activation match the oracle's three separate nodes value-for-value.
#[allow(clippy::too_many_arguments)]
pub fn linear_forward(
    out: &mut [f64],
    pre: &mut [f64],
    x: &[f64],
    w: &[f64],
    bias: &[f64],
    act: Act,
    m: usize,
    k: usize,
    n: usize,
) {
    matmul(pre, x, w, m, k, n);
    add_bias_inplace(pre, bias, m, n);
    act_forward(out, pre, act);
}

/// [`linear_forward`] with an `aux` capture buffer for exp-free backward
/// (see [`act_forward_aux`]).
#[allow(clippy::too_many_arguments)]
pub fn linear_forward_aux(
    out: &mut [f64],
    pre: &mut [f64],
    aux: &mut [f64],
    x: &[f64],
    w: &[f64],
    bias: &[f64],
    act: Act,
    m: usize,
    k: usize,
    n: usize,
) {
    matmul(pre, x, w, m, k, n);
    add_bias_inplace(pre, bias, m, n);
    act_forward_aux(out, aux, pre, act);
}

/// Convenience wrapper: fused `relu(x·W + b)`.
#[allow(clippy::too_many_arguments)]
pub fn matmul_bias_relu(
    out: &mut [f64],
    pre: &mut [f64],
    x: &[f64],
    w: &[f64],
    bias: &[f64],
    m: usize,
    k: usize,
    n: usize,
) {
    linear_forward(out, pre, x, w, bias, Act::Relu, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference multiply-add mirroring whatever the dispatched kernels use:
    /// `f64::mul_add` is correctly-rounded fused semantics on every host, so
    /// this oracle stays bit-exact whether or not the AVX2+FMA path runs.
    fn refmad(a: f64, b: f64, c: f64) -> f64 {
        if fma_active() {
            a.mul_add(b, c)
        } else {
            fmadd(a, b, c)
        }
    }

    fn naive_matmul(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] = refmad(av, b[kk * n + j], out[i * n + j]);
                }
            }
        }
        out
    }

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 % 23) as f64 - 11.0) * scale)
            .collect()
    }

    #[test]
    fn matmul_bit_matches_naive_across_blocks() {
        // Shapes straddling the block boundaries exercise every loop edge.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 4),
            (7, 65, 9),
            (3, 64, 256),
            (5, 130, 300),
            (4, 24, 5),
        ] {
            let a = seq(m * k, 0.31);
            let b = seq(k * n, 0.17);
            let mut out = vec![f64::NAN; m * n];
            matmul(&mut out, &a, &b, m, k, n);
            let want = naive_matmul(&a, &b, m, k, n);
            for (got, want) in out.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn matmul_handles_empty() {
        // Zero rows, zero reduction depth, zero columns: all legal, all
        // produce (possibly empty) zeroed outputs.
        let mut out = vec![];
        matmul(&mut out, &[], &seq(12, 0.1), 0, 3, 4);
        let mut out2 = vec![];
        matmul(&mut out2, &[1.0, 2.0], &[], 2, 1, 0);
        let mut out3 = vec![f64::NAN; 6];
        matmul(&mut out3, &[], &[], 2, 0, 3);
        assert!(out3.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn backward_kernels_match_transpose_matmul() {
        let (m, k, n) = (4, 6, 3);
        let a = seq(m * k, 0.2);
        let b = seq(k * n, 0.4);
        let g = seq(m * n, 0.7);
        // ga = g × bᵀ
        let mut bt = vec![0.0; n * k];
        for r in 0..k {
            for c in 0..n {
                bt[c * k + r] = b[r * n + c];
            }
        }
        let want_ga = naive_matmul(&g, &bt, m, n, k);
        let mut ga = vec![0.0; m * k];
        matmul_a_bt_acc(&mut ga, &g, &b, m, n, k, &mut Vec::new());
        for (got, want) in ga.iter().zip(&want_ga) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // gb = aᵀ × g
        let mut at = vec![0.0; k * m];
        for r in 0..m {
            for c in 0..k {
                at[c * m + r] = a[r * k + c];
            }
        }
        let want_gb = naive_matmul(&at, &g, k, m, n);
        let mut gb = vec![0.0; k * n];
        matmul_at_b_acc(&mut gb, &a, &g, m, k, n, &mut Vec::new());
        for (got, want) in gb.iter().zip(&want_gb) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn fused_linear_matches_unfused() {
        let (m, k, n) = (5, 4, 3);
        let x = seq(m * k, 0.3);
        let w = seq(k * n, 0.5);
        let bias = seq(n, 0.9);
        let mut pre = vec![0.0; m * n];
        let mut out = vec![0.0; m * n];
        linear_forward(&mut out, &mut pre, &x, &w, &bias, Act::Silu, m, k, n);
        let mut want = naive_matmul(&x, &w, m, k, n);
        for r in 0..m {
            for c in 0..n {
                want[r * n + c] += bias[c];
            }
        }
        for (p, w2) in pre.iter().zip(&want) {
            assert_eq!(p.to_bits(), w2.to_bits());
        }
        for (o, &p) in out.iter().zip(&pre) {
            assert_eq!(o.to_bits(), (p * sigmoid(p)).to_bits());
        }
        let mut out_relu = vec![0.0; m * n];
        matmul_bias_relu(&mut out_relu, &mut pre, &x, &w, &bias, m, k, n);
        for (o, &p) in out_relu.iter().zip(&pre) {
            assert_eq!(*o, p.max(0.0));
        }
    }

    #[test]
    fn act_backward_formulas() {
        let pre0 = [-1.5, -0.1, 0.0, 0.3, 2.0];
        let g = [1.0, -2.0, 3.0, 0.5, 1.5];
        for act in [Act::Identity, Act::Relu, Act::Silu, Act::Tanh, Act::Sigmoid] {
            let mut post = [0.0; 5];
            act_forward(&mut post, &pre0, act);
            let mut pre = pre0;
            act_backward_inplace(&mut pre, &post, &g, act);
            for i in 0..5 {
                let v = pre0[i];
                let want = match act {
                    Act::Identity => g[i],
                    Act::Relu => {
                        if v > 0.0 {
                            g[i]
                        } else {
                            0.0
                        }
                    }
                    Act::Silu => {
                        let s = sigmoid(v);
                        g[i] * (s + v * s * (1.0 - s))
                    }
                    Act::Tanh => {
                        let y = v.tanh();
                        g[i] * (1.0 - y * y)
                    }
                    Act::Sigmoid => {
                        let y = sigmoid(v);
                        g[i] * y * (1.0 - y)
                    }
                };
                assert_eq!(pre[i].to_bits(), want.to_bits(), "{act:?}[{i}]");
            }
        }
    }

    #[test]
    fn aux_variants_match_recompute() {
        // The aux-captured forward/backward pair must agree bit-for-bit
        // with the recomputing pair for every activation — for SiLU that is
        // exactly the post·(1-s) == v·s·(1-s) association argument.
        let pre0 = [-1.5, -0.1, 0.0, 0.3, 2.0];
        let g = [1.0, -2.0, 3.0, 0.5, 1.5];
        for act in [Act::Identity, Act::Relu, Act::Silu, Act::Tanh, Act::Sigmoid] {
            let mut post = [0.0; 5];
            let mut aux = [0.0; 5];
            act_forward_aux(&mut post, &mut aux, &pre0, act);
            let mut post2 = [0.0; 5];
            act_forward(&mut post2, &pre0, act);
            let mut p1 = pre0;
            act_backward_aux_inplace(&mut p1, &aux, &post, &g, act);
            let mut p2 = pre0;
            act_backward_inplace(&mut p2, &post2, &g, act);
            for i in 0..5 {
                assert_eq!(post[i].to_bits(), post2[i].to_bits(), "{act:?} fwd [{i}]");
                assert_eq!(p1[i].to_bits(), p2[i].to_bits(), "{act:?} bwd [{i}]");
            }
        }
    }

    #[test]
    fn colsum_and_bias() {
        let g = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut gb = [10.0, 20.0];
        colsum_acc(&mut gb, &g, 3, 2);
        assert_eq!(gb, [10.0 + 1.0 + 3.0 + 5.0, 20.0 + 2.0 + 4.0 + 6.0]);
        let mut x = [0.0, 0.0, 1.0, 1.0];
        add_bias_inplace(&mut x, &[0.5, -0.5], 2, 2);
        assert_eq!(x, [0.5, -0.5, 1.5, 0.5]);
    }
}
