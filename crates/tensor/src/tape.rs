//! A record-once / replay-many reverse-mode tape.
//!
//! [`Tape`] differs from an eager autodiff graph in lifetime: the program is
//! recorded **once** (shapes validated, every value / gradient / scratch
//! buffer allocated up front), then [`forward`](Tape::forward) and
//! [`backward`](Tape::backward) replay it any number of times with **zero
//! allocations**. Callers mutate leaf values in place ([`Tape::set_value`],
//! [`Tape::value_mut`]) between replays — exactly the shape of a potential
//! relaxation (hundreds of L-BFGS evaluations over one fixed program) or a
//! training loop (thousands of samples over one fixed topology).
//!
//! [`seal`](Tape::seal) fixes the loss and the wanted leaves and computes a
//! static `needs_grad` mask: backward only visits nodes that both feed the
//! loss and depend on a wanted leaf, so e.g. relaxing guidance under frozen
//! weights skips every `dW` matmul for free.
//!
//! Forward replays are **incremental**: the tape tracks which leaves were
//! mutated since the last replay and recomputes only their downstream cone.
//! Because every kernel is deterministic, a node whose inputs are untouched
//! still holds the bit-identical value from the previous replay, so the skip
//! is a pure no-op numerically. A relaxation that mutates only the guidance
//! leaf therefore skips the node encoders and every other guidance-
//! independent subgraph on all replays after the first.
//!
//! Every op mirrors the scalar oracle (`af_nn::Graph`) formula-for-formula
//! and reduction-order-for-reduction-order; see the crate docs for the
//! bit-exactness contract.

use std::sync::Arc;

use crate::csr::CsrIndex;
use crate::kernels::{self, Act};

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(u32);

/// Handle to a registered [`CsrIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrRef(u32);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Matmul {
        a: Var,
        b: Var,
    },
    /// Fused `act(x·W + b)`; the pre-activation lives in the node's scratch.
    Linear {
        x: Var,
        w: Var,
        b: Var,
        act: Act,
    },
    Activation {
        x: Var,
        act: Act,
    },
    Add {
        a: Var,
        b: Var,
    },
    Sub {
        a: Var,
        b: Var,
    },
    Mul {
        a: Var,
        b: Var,
    },
    Scale {
        x: Var,
        k: f64,
    },
    Square {
        x: Var,
    },
    /// Elementwise square root, clamped at `1e-12` like the oracle.
    Sqrt {
        x: Var,
    },
    Sum {
        x: Var,
    },
    SumCols {
        x: Var,
    },
    /// Column-wise sum `m×n → 1×n` (the oracle's `ones(1,m) × x`).
    SumRows {
        x: Var,
    },
    Gather {
        x: Var,
        csr: CsrRef,
    },
    ScatterAdd {
        x: Var,
        csr: CsrRef,
    },
    Rbf {
        x: Var,
        gamma: f64,
        mus: Arc<Vec<f64>>,
    },
}

/// Reverse-mode tape; see the [module docs](self).
pub struct Tape {
    ops: Vec<Op>,
    shapes: Vec<(usize, usize)>,
    vals: Vec<Vec<f64>>,
    grads: Vec<Vec<f64>>,
    /// Per-node scratch: the pre-activation of `Linear` nodes (overwritten
    /// with the pre-activation gradient during backward), empty elsewhere.
    scratch: Vec<Vec<f64>>,
    /// Per-node forward-state capture: the sigmoid of SiLU nodes, written
    /// by `forward` and read by `backward` so no exp is recomputed there.
    /// Empty for every other op.
    auxs: Vec<Vec<f64>>,
    csrs: Vec<Arc<CsrIndex>>,
    /// Static gradient mask computed by `seal`.
    mask: Vec<bool>,
    loss: Option<Var>,
    sealed: bool,
    /// Shared scratch for the backward matmul kernels; grown on first
    /// backward, allocation-free afterwards.
    bwd_tmp: Vec<f64>,
    /// Per-node "recompute on this forward" flags (incremental replay).
    needs: Vec<bool>,
    /// Leaves mutated since the last forward.
    dirty_leaves: Vec<u32>,
    /// `Linear` nodes whose pre-activation scratch was overwritten by the
    /// last backward. They are recomputed on the next forward — but since
    /// the recomputation is bit-identical, their dependents stay asleep.
    clobbered: Vec<u32>,
    /// Node count covered by the previous forward; nodes recorded since
    /// (`needs` born `true`) always compute on their first replay.
    fwd_len: usize,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self {
            ops: Vec::new(),
            shapes: Vec::new(),
            vals: Vec::new(),
            grads: Vec::new(),
            scratch: Vec::new(),
            auxs: Vec::new(),
            csrs: Vec::new(),
            mask: Vec::new(),
            loss: None,
            sealed: false,
            bwd_tmp: Vec::new(),
            needs: Vec::new(),
            dirty_leaves: Vec::new(),
            clobbered: Vec::new(),
            fwd_len: 0,
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn push(&mut self, op: Op, rows: usize, cols: usize) -> Var {
        assert!(!self.sealed, "tape is sealed; record before seal()");
        self.ops.push(op);
        self.shapes.push((rows, cols));
        self.vals.push(vec![0.0; rows * cols]);
        self.grads.push(Vec::new());
        self.scratch.push(Vec::new());
        self.auxs.push(Vec::new());
        self.needs.push(true);
        Var(self.ops.len() as u32 - 1)
    }

    /// Declares a zero-initialized leaf whose value is set per replay.
    pub fn input(&mut self, rows: usize, cols: usize) -> Var {
        self.push(Op::Leaf, rows, cols)
    }

    /// Declares a leaf with an initial value (weights, graph constants).
    pub fn leaf(&mut self, data: &[f64], rows: usize, cols: usize) -> Var {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        let v = self.push(Op::Leaf, rows, cols);
        self.vals[v.0 as usize].copy_from_slice(data);
        v
    }

    /// Registers a relation index for `gather`/`scatter_add`.
    pub fn register_csr(&mut self, csr: Arc<CsrIndex>) -> CsrRef {
        self.csrs.push(csr);
        CsrRef(self.csrs.len() as u32 - 1)
    }

    /// `(rows, cols)` of a node.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.shapes[v.0 as usize]
    }

    /// Value buffer of a node.
    pub fn value(&self, v: Var) -> &[f64] {
        &self.vals[v.0 as usize]
    }

    /// Mutable value buffer of a **leaf** (for optimizer updates).
    ///
    /// # Panics
    ///
    /// Panics on non-leaf nodes — interior values are overwritten by
    /// `forward` and must not be aliased as state.
    pub fn value_mut(&mut self, v: Var) -> &mut [f64] {
        assert!(
            matches!(self.ops[v.0 as usize], Op::Leaf),
            "value_mut is for leaves"
        );
        self.dirty_leaves.push(v.0);
        &mut self.vals[v.0 as usize]
    }

    /// Copies `data` into a leaf's value buffer.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-leaf nodes.
    pub fn set_value(&mut self, v: Var, data: &[f64]) {
        let buf = self.value_mut(v);
        assert_eq!(buf.len(), data.len(), "set_value length mismatch");
        buf.copy_from_slice(data);
    }

    /// Gradient buffer of a node (zeros until `backward` runs).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the sealed gradient mask.
    pub fn grad(&self, v: Var) -> &[f64] {
        let g = &self.grads[v.0 as usize];
        assert!(
            !g.is_empty() || self.shapes[v.0 as usize].0 * self.shapes[v.0 as usize].1 == 0,
            "node {} has no gradient: not on a loss→wanted path",
            v.0
        );
        g
    }

    /// Gradient buffer of a node, or `None` if the node is outside the
    /// sealed gradient mask (optimizers skip such parameters).
    pub fn try_grad(&self, v: Var) -> Option<&[f64]> {
        let g = &self.grads[v.0 as usize];
        (!g.is_empty()).then_some(g.as_slice())
    }

    /// Mutable value and shared gradient of a **leaf**, for in-place
    /// optimizer updates; `None` if the leaf has no gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics on non-leaf nodes.
    pub fn value_and_grad_mut(&mut self, v: Var) -> Option<(&mut [f64], &[f64])> {
        let i = v.0 as usize;
        assert!(
            matches!(self.ops[i], Op::Leaf),
            "value_and_grad_mut is for leaves"
        );
        let g = &self.grads[i];
        if g.is_empty() {
            return None;
        }
        self.dirty_leaves.push(v.0);
        Some((self.vals[i].as_mut_slice(), g.as_slice()))
    }

    fn binary_shape(&self, a: Var, b: Var, what: &str) -> (usize, usize) {
        let sa = self.shape(a);
        assert_eq!(sa, self.shape(b), "{what} shape mismatch");
        sa
    }

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.shape(a);
        let (k2, n) = self.shape(b);
        assert_eq!(k, k2, "matmul {m}x{k} × {k2}x{n}");
        self.push(Op::Matmul { a, b }, m, n)
    }

    /// Fused dense layer `act(x·W + b)`.
    pub fn linear(&mut self, x: Var, w: Var, b: Var, act: Act) -> Var {
        let (m, k) = self.shape(x);
        let (k2, n) = self.shape(w);
        assert_eq!(k, k2, "linear {m}x{k} × {k2}x{n}");
        assert_eq!(self.shape(b), (1, n), "bias must be 1x{n}");
        let v = self.push(Op::Linear { x, w, b, act }, m, n);
        self.scratch[v.0 as usize] = vec![0.0; m * n];
        if act == Act::Silu {
            self.auxs[v.0 as usize] = vec![0.0; m * n];
        }
        v
    }

    /// Standalone activation.
    pub fn activation(&mut self, x: Var, act: Act) -> Var {
        let (m, n) = self.shape(x);
        let v = self.push(Op::Activation { x, act }, m, n);
        if act == Act::Silu {
            self.auxs[v.0 as usize] = vec![0.0; m * n];
        }
        v
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.binary_shape(a, b, "add");
        self.push(Op::Add { a, b }, m, n)
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.binary_shape(a, b, "sub");
        self.push(Op::Sub { a, b }, m, n)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.binary_shape(a, b, "mul");
        self.push(Op::Mul { a, b }, m, n)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, x: Var, k: f64) -> Var {
        let (m, n) = self.shape(x);
        self.push(Op::Scale { x, k }, m, n)
    }

    /// Elementwise square.
    pub fn square(&mut self, x: Var) -> Var {
        let (m, n) = self.shape(x);
        self.push(Op::Square { x }, m, n)
    }

    /// Elementwise square root, clamped at `1e-12`.
    pub fn sqrt(&mut self, x: Var) -> Var {
        let (m, n) = self.shape(x);
        self.push(Op::Sqrt { x }, m, n)
    }

    /// Sum of all elements → `1×1`.
    pub fn sum(&mut self, x: Var) -> Var {
        self.push(Op::Sum { x }, 1, 1)
    }

    /// Row-wise sum `m×n → m×1`.
    pub fn sum_cols(&mut self, x: Var) -> Var {
        let (m, _) = self.shape(x);
        self.push(Op::SumCols { x }, m, 1)
    }

    /// Column-wise sum `m×n → 1×n` (replaces the oracle's `ones × x`).
    pub fn sum_rows(&mut self, x: Var) -> Var {
        let (_, n) = self.shape(x);
        self.push(Op::SumRows { x }, 1, n)
    }

    /// Batched row gather through a registered relation.
    ///
    /// # Panics
    ///
    /// Panics if the relation's row count mismatches `x`.
    pub fn gather(&mut self, x: Var, csr: CsrRef) -> Var {
        let (m, n) = self.shape(x);
        let c = &self.csrs[csr.0 as usize];
        assert_eq!(c.n_rows(), m, "gather relation covers {} rows", c.n_rows());
        let e = c.len();
        self.push(Op::Gather { x, csr }, e, n)
    }

    /// Batched row scatter-add through a registered relation; the output has
    /// the relation's row count.
    ///
    /// # Panics
    ///
    /// Panics if the relation's edge count mismatches `x`'s rows.
    pub fn scatter_add(&mut self, x: Var, csr: CsrRef) -> Var {
        let (m, n) = self.shape(x);
        let c = &self.csrs[csr.0 as usize];
        assert_eq!(c.len(), m, "one index per input row");
        let rows = c.n_rows();
        self.push(Op::ScatterAdd { x, csr }, rows, n)
    }

    /// Radial-basis expansion `ψ_k(d) = exp(-γ (d - μ_k)²)`, `m×1 → m×K`.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is a column vector and `mus` is non-empty.
    pub fn rbf(&mut self, x: Var, gamma: f64, mus: &[f64]) -> Var {
        let (m, n) = self.shape(x);
        assert_eq!(n, 1, "rbf expects an m×1 input");
        assert!(!mus.is_empty(), "rbf needs at least one center");
        let k = mus.len();
        self.push(
            Op::Rbf {
                x,
                gamma,
                mus: Arc::new(mus.to_vec()),
            },
            m,
            k,
        )
    }

    /// Mean-squared error between `x` and `target` → `1×1`.
    pub fn mse(&mut self, x: Var, target: Var) -> Var {
        let d = self.sub(x, target);
        let sq = self.square(d);
        let s = self.sum(sq);
        let (m, n) = self.shape(x);
        self.scale(s, 1.0 / (m * n) as f64)
    }

    fn op_inputs(op: &Op) -> [Option<Var>; 3] {
        match *op {
            Op::Leaf => [None, None, None],
            Op::Matmul { a, b } | Op::Add { a, b } | Op::Sub { a, b } | Op::Mul { a, b } => {
                [Some(a), Some(b), None]
            }
            Op::Linear { x, w, b, .. } => [Some(x), Some(w), Some(b)],
            Op::Activation { x, .. }
            | Op::Scale { x, .. }
            | Op::Square { x }
            | Op::Sqrt { x }
            | Op::Sum { x }
            | Op::SumCols { x }
            | Op::SumRows { x }
            | Op::Gather { x, .. }
            | Op::ScatterAdd { x, .. }
            | Op::Rbf { x, .. } => [Some(x), None, None],
        }
    }

    /// Fixes the program: `loss` (scalar, optional for forward-only tapes)
    /// and the leaves whose gradients the caller will read. Gradient buffers
    /// are allocated only for nodes on some loss→wanted path; backward skips
    /// everything else.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or if `loss` is not scalar.
    pub fn seal(&mut self, loss: Option<Var>, wanted: &[Var]) {
        assert!(!self.sealed, "tape already sealed");
        self.sealed = true;
        self.loss = loss;
        let Some(loss) = loss else {
            self.mask = vec![false; self.ops.len()];
            return;
        };
        assert_eq!(self.shape(loss), (1, 1), "backward needs a scalar loss");
        // `depends[n]`: n's value depends on a wanted leaf.
        let mut depends = vec![false; self.ops.len()];
        for &w in wanted {
            depends[w.0 as usize] = true;
        }
        for i in 0..self.ops.len() {
            if depends[i] {
                continue;
            }
            depends[i] = Self::op_inputs(&self.ops[i])
                .into_iter()
                .flatten()
                .any(|v| depends[v.0 as usize]);
        }
        // `used[n]`: the loss depends on n's value.
        let mut used = vec![false; self.ops.len()];
        used[loss.0 as usize] = true;
        for i in (0..=loss.0 as usize).rev() {
            if !used[i] {
                continue;
            }
            for v in Self::op_inputs(&self.ops[i]).into_iter().flatten() {
                used[v.0 as usize] = true;
            }
        }
        self.mask = depends.iter().zip(&used).map(|(&d, &u)| d && u).collect();
        for (i, &m) in self.mask.iter().enumerate() {
            if m {
                let (r, c) = self.shapes[i];
                self.grads[i] = vec![0.0; r * c];
            }
        }
    }

    /// Seeds the per-node recompute flags for this replay: everything on the
    /// first forward; afterwards the downstream cone of the mutated leaves,
    /// plus (without waking dependents) any `Linear` node whose scratch the
    /// last backward clobbered.
    fn plan_forward(&mut self) {
        // Nodes past `fwd_len` were recorded after the last replay and keep
        // their born-`true` flags; everything older starts asleep.
        self.needs[..self.fwd_len]
            .iter_mut()
            .for_each(|b| *b = false);
        for &l in &self.dirty_leaves {
            self.needs[l as usize] = true;
        }
        for i in 0..self.ops.len() {
            if self.needs[i] {
                continue;
            }
            self.needs[i] = Self::op_inputs(&self.ops[i])
                .into_iter()
                .flatten()
                .any(|v| self.needs[v.0 as usize]);
        }
        // Clobbered nodes recompute bit-identically, so their dependents
        // stay asleep: OR in after the propagation pass.
        for &c in &self.clobbered {
            self.needs[c as usize] = true;
        }
        self.fwd_len = self.ops.len();
        self.dirty_leaves.clear();
        self.clobbered.clear();
    }

    /// Replays the forward pass over the current leaf values. Incremental:
    /// only nodes downstream of leaves mutated since the previous replay are
    /// recomputed (see the module docs) — skipped nodes keep their
    /// bit-identical prior values.
    pub fn forward(&mut self) {
        self.plan_forward();
        let ops = &self.ops;
        let shapes = &self.shapes;
        let csrs = &self.csrs;
        let needs = &self.needs;
        let vals = &mut self.vals;
        let scratch = &mut self.scratch;
        let auxs = &mut self.auxs;
        for i in 0..ops.len() {
            if !needs[i] {
                continue;
            }
            let (rows, cols) = shapes[i];
            let (prev, rest) = vals.split_at_mut(i);
            let out = &mut rest[0];
            match &ops[i] {
                Op::Leaf => {}
                Op::Matmul { a, b } => {
                    let (m, k) = shapes[a.0 as usize];
                    kernels::matmul(out, &prev[a.0 as usize], &prev[b.0 as usize], m, k, cols);
                }
                Op::Linear { x, w, b, act } => {
                    let (m, k) = shapes[x.0 as usize];
                    kernels::linear_forward_aux(
                        out,
                        &mut scratch[i],
                        &mut auxs[i],
                        &prev[x.0 as usize],
                        &prev[w.0 as usize],
                        &prev[b.0 as usize],
                        *act,
                        m,
                        k,
                        cols,
                    );
                }
                Op::Activation { x, act } => {
                    kernels::act_forward_aux(out, &mut auxs[i], &prev[x.0 as usize], *act);
                }
                Op::Add { a, b } => {
                    for ((o, &x), &y) in out
                        .iter_mut()
                        .zip(&prev[a.0 as usize])
                        .zip(&prev[b.0 as usize])
                    {
                        *o = x + y;
                    }
                }
                Op::Sub { a, b } => {
                    for ((o, &x), &y) in out
                        .iter_mut()
                        .zip(&prev[a.0 as usize])
                        .zip(&prev[b.0 as usize])
                    {
                        *o = x - y;
                    }
                }
                Op::Mul { a, b } => {
                    for ((o, &x), &y) in out
                        .iter_mut()
                        .zip(&prev[a.0 as usize])
                        .zip(&prev[b.0 as usize])
                    {
                        *o = x * y;
                    }
                }
                Op::Scale { x, k } => {
                    for (o, &v) in out.iter_mut().zip(&prev[x.0 as usize]) {
                        *o = v * k;
                    }
                }
                Op::Square { x } => {
                    for (o, &v) in out.iter_mut().zip(&prev[x.0 as usize]) {
                        *o = v * v;
                    }
                }
                Op::Sqrt { x } => {
                    for (o, &v) in out.iter_mut().zip(&prev[x.0 as usize]) {
                        *o = v.max(1e-12).sqrt();
                    }
                }
                Op::Sum { x } => {
                    out[0] = prev[x.0 as usize].iter().sum();
                }
                Op::SumCols { x } => {
                    let (_, n) = shapes[x.0 as usize];
                    let xv = &prev[x.0 as usize];
                    for (r, o) in out.iter_mut().enumerate() {
                        *o = xv[r * n..(r + 1) * n].iter().sum();
                    }
                }
                Op::SumRows { x } => {
                    let (m, n) = shapes[x.0 as usize];
                    let xv = &prev[x.0 as usize];
                    out.fill(0.0);
                    for r in 0..m {
                        for (o, &v) in out.iter_mut().zip(&xv[r * n..(r + 1) * n]) {
                            *o += v;
                        }
                    }
                }
                Op::Gather { x, csr } => {
                    csrs[csr.0 as usize].gather_rows(out, &prev[x.0 as usize], cols);
                }
                Op::ScatterAdd { x, csr } => {
                    csrs[csr.0 as usize].scatter_add_rows(out, &prev[x.0 as usize], cols);
                }
                Op::Rbf { x, gamma, mus } => {
                    // Fill the (always non-positive) arguments, then one
                    // batched exp sweep over the whole rows×centers block.
                    let xv = &prev[x.0 as usize];
                    let gamma = *gamma;
                    for r in 0..rows {
                        let d = xv[r];
                        for (o, &mu) in out[r * cols..(r + 1) * cols].iter_mut().zip(mus.iter()) {
                            *o = -gamma * (d - mu) * (d - mu);
                        }
                    }
                    crate::exp::vexp_inplace(out);
                }
            }
        }
    }

    /// Replays the backward pass from the sealed loss, accumulating
    /// gradients for all masked nodes. Must follow a `forward`.
    ///
    /// # Panics
    ///
    /// Panics if the tape was sealed without a loss.
    pub fn backward(&mut self) {
        assert!(self.sealed, "seal() the tape before backward()");
        let loss = self.loss.expect("tape sealed without a loss");
        for (i, &m) in self.mask.iter().enumerate() {
            if m {
                self.grads[i].fill(0.0);
            }
        }
        if !self.mask[loss.0 as usize] {
            // The loss does not depend on any wanted leaf: all gradients are
            // (correctly) zero.
            return;
        }
        self.grads[loss.0 as usize][0] = 1.0;

        let ops = &self.ops;
        let shapes = &self.shapes;
        let csrs = &self.csrs;
        let mask = &self.mask;
        let vals = &self.vals;
        let grads = &mut self.grads;
        let scratch = &mut self.scratch;
        let auxs = &self.auxs;
        let tmp = &mut self.bwd_tmp;
        let clobbered = &mut self.clobbered;
        for i in (0..=loss.0 as usize).rev() {
            if !mask[i] {
                continue;
            }
            let (rows, cols) = shapes[i];
            let (gprev, grest) = grads.split_at_mut(i);
            let gout: &[f64] = &grest[0];
            match &ops[i] {
                Op::Leaf => {}
                Op::Matmul { a, b } => {
                    let (m, k) = shapes[a.0 as usize];
                    let n = cols;
                    if mask[a.0 as usize] {
                        kernels::matmul_a_bt_acc(
                            &mut gprev[a.0 as usize],
                            gout,
                            &vals[b.0 as usize],
                            m,
                            n,
                            k,
                            tmp,
                        );
                    }
                    if mask[b.0 as usize] {
                        kernels::matmul_at_b_acc(
                            &mut gprev[b.0 as usize],
                            &vals[a.0 as usize],
                            gout,
                            m,
                            k,
                            n,
                            tmp,
                        );
                    }
                }
                Op::Linear { x, w, b, act } => {
                    let (m, k) = shapes[x.0 as usize];
                    let n = cols;
                    // dpre = gout ⊙ act'(pre), overwriting the scratch; the
                    // node is flagged so the next forward rewrites it. The
                    // forward's aux capture (SiLU sigmoid) keeps this
                    // exp-free.
                    let pre = &mut scratch[i];
                    kernels::act_backward_aux_inplace(pre, &auxs[i], &vals[i], gout, *act);
                    clobbered.push(i as u32);
                    let dpre: &[f64] = pre;
                    if mask[x.0 as usize] {
                        kernels::matmul_a_bt_acc(
                            &mut gprev[x.0 as usize],
                            dpre,
                            &vals[w.0 as usize],
                            m,
                            n,
                            k,
                            tmp,
                        );
                    }
                    if mask[w.0 as usize] {
                        kernels::matmul_at_b_acc(
                            &mut gprev[w.0 as usize],
                            &vals[x.0 as usize],
                            dpre,
                            m,
                            k,
                            n,
                            tmp,
                        );
                    }
                    if mask[b.0 as usize] {
                        kernels::colsum_acc(&mut gprev[b.0 as usize], dpre, m, n);
                    }
                }
                Op::Activation { x, act } => {
                    if mask[x.0 as usize] {
                        let gx = &mut gprev[x.0 as usize];
                        let xv = &vals[x.0 as usize];
                        let yv = &vals[i];
                        match act {
                            Act::Identity => {
                                for (o, &g) in gx.iter_mut().zip(gout) {
                                    *o += g;
                                }
                            }
                            Act::Relu => {
                                for ((o, &v), &g) in gx.iter_mut().zip(xv).zip(gout) {
                                    *o += if v > 0.0 { g } else { 0.0 };
                                }
                            }
                            Act::Silu => {
                                // s cached by forward; y = v·s, so
                                // y·(1-s) == v·s·(1-s) bit-for-bit.
                                let sv = &auxs[i];
                                for (((o, &s), &y), &g) in gx.iter_mut().zip(sv).zip(yv).zip(gout) {
                                    *o += g * (s + y * (1.0 - s));
                                }
                            }
                            Act::Tanh => {
                                for ((o, &y), &g) in gx.iter_mut().zip(yv).zip(gout) {
                                    *o += g * (1.0 - y * y);
                                }
                            }
                            Act::Sigmoid => {
                                for ((o, &y), &g) in gx.iter_mut().zip(yv).zip(gout) {
                                    *o += g * y * (1.0 - y);
                                }
                            }
                        }
                    }
                }
                Op::Add { a, b } => {
                    for v in [a, b] {
                        if mask[v.0 as usize] {
                            for (o, &g) in gprev[v.0 as usize].iter_mut().zip(gout) {
                                *o += g;
                            }
                        }
                    }
                }
                Op::Sub { a, b } => {
                    if mask[a.0 as usize] {
                        for (o, &g) in gprev[a.0 as usize].iter_mut().zip(gout) {
                            *o += g;
                        }
                    }
                    if mask[b.0 as usize] {
                        for (o, &g) in gprev[b.0 as usize].iter_mut().zip(gout) {
                            *o += -g;
                        }
                    }
                }
                Op::Mul { a, b } => {
                    if mask[a.0 as usize] {
                        let bv = &vals[b.0 as usize];
                        for ((o, &g), &y) in gprev[a.0 as usize].iter_mut().zip(gout).zip(bv) {
                            *o += g * y;
                        }
                    }
                    if mask[b.0 as usize] {
                        let av = &vals[a.0 as usize];
                        for ((o, &g), &x) in gprev[b.0 as usize].iter_mut().zip(gout).zip(av) {
                            *o += g * x;
                        }
                    }
                }
                Op::Scale { x, k } => {
                    if mask[x.0 as usize] {
                        for (o, &g) in gprev[x.0 as usize].iter_mut().zip(gout) {
                            *o += g * k;
                        }
                    }
                }
                Op::Square { x } => {
                    if mask[x.0 as usize] {
                        let xv = &vals[x.0 as usize];
                        for ((o, &g), &v) in gprev[x.0 as usize].iter_mut().zip(gout).zip(xv) {
                            *o += 2.0 * g * v;
                        }
                    }
                }
                Op::Sqrt { x } => {
                    if mask[x.0 as usize] {
                        let yv = &vals[i];
                        for ((o, &g), &y) in gprev[x.0 as usize].iter_mut().zip(gout).zip(yv) {
                            *o += g / (2.0 * y.max(1e-12));
                        }
                    }
                }
                Op::Sum { x } => {
                    if mask[x.0 as usize] {
                        let g0 = gout[0];
                        for o in gprev[x.0 as usize].iter_mut() {
                            *o += g0;
                        }
                    }
                }
                Op::SumCols { x } => {
                    if mask[x.0 as usize] {
                        let (_, n) = shapes[x.0 as usize];
                        let gx = &mut gprev[x.0 as usize];
                        for (r, &g) in gout.iter().enumerate() {
                            for o in gx[r * n..(r + 1) * n].iter_mut() {
                                *o += g;
                            }
                        }
                    }
                }
                Op::SumRows { x } => {
                    if mask[x.0 as usize] {
                        let (m, n) = shapes[x.0 as usize];
                        let gx = &mut gprev[x.0 as usize];
                        for r in 0..m {
                            for (o, &g) in gx[r * n..(r + 1) * n].iter_mut().zip(gout) {
                                *o += g;
                            }
                        }
                    }
                }
                Op::Gather { x, csr } => {
                    if mask[x.0 as usize] {
                        csrs[csr.0 as usize].gather_backward_acc(
                            &mut gprev[x.0 as usize],
                            gout,
                            cols,
                        );
                    }
                }
                Op::ScatterAdd { x, csr } => {
                    if mask[x.0 as usize] {
                        csrs[csr.0 as usize].scatter_backward_acc(
                            &mut gprev[x.0 as usize],
                            gout,
                            cols,
                        );
                    }
                }
                Op::Rbf { x, gamma, mus } => {
                    if mask[x.0 as usize] {
                        let xv = &vals[x.0 as usize];
                        let yv = &vals[i];
                        let gamma = *gamma;
                        let gx = &mut gprev[x.0 as usize];
                        for r in 0..rows {
                            let d = xv[r];
                            let mut acc = 0.0;
                            for (c, &mu) in mus.iter().enumerate() {
                                let y = yv[r * cols + c];
                                acc += gout[r * cols + c] * y * (-2.0 * gamma * (d - mu));
                            }
                            gx[r] += acc;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_quadratic() {
        // f(x) = sum((x·W)²), checked against hand math on a 1×2 case.
        let mut t = Tape::new();
        let x = t.input(1, 2);
        let w = t.leaf(&[1.0, 0.0, 0.0, 2.0], 2, 2);
        let y = t.matmul(x, w);
        let sq = t.square(y);
        let loss = t.sum(sq);
        t.seal(Some(loss), &[x]);
        t.set_value(x, &[3.0, 4.0]);
        t.forward();
        // y = [3, 8]; loss = 9 + 64
        assert_eq!(t.value(loss), &[73.0]);
        t.backward();
        // d/dx = 2*y·Wᵀ = [2*3*1, 2*8*2]
        assert_eq!(t.grad(x), &[6.0, 32.0]);
    }

    #[test]
    fn replay_reuses_buffers_bit_identically() {
        let mut t = Tape::new();
        let x = t.input(2, 1);
        let sq = t.square(x);
        let s = t.sum(sq);
        t.seal(Some(s), &[x]);
        let run = |t: &mut Tape, v: &[f64]| {
            t.set_value(x, v);
            t.forward();
            t.backward();
            (t.value(s)[0], t.grad(x).to_vec())
        };
        let a1 = run(&mut t, &[1.5, -2.0]);
        let _other = run(&mut t, &[9.0, 9.0]);
        let a2 = run(&mut t, &[1.5, -2.0]);
        assert_eq!(a1.0.to_bits(), a2.0.to_bits());
        assert_eq!(a1.1, a2.1);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // f(x) = x*x + x → f' = 2x + 1
        let mut t = Tape::new();
        let x = t.input(1, 1);
        let sq = t.mul(x, x);
        let y = t.add(sq, x);
        let l = t.sum(y);
        t.seal(Some(l), &[x]);
        t.set_value(x, &[3.0]);
        t.forward();
        t.backward();
        assert_eq!(t.grad(x), &[7.0]);
    }

    #[test]
    fn mask_prunes_unwanted_branches() {
        // loss = sum(x·W); wanted = [x] only → W gets no gradient buffer,
        // but x's gradient is complete.
        let mut t = Tape::new();
        let x = t.input(1, 2);
        let w = t.leaf(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let y = t.matmul(x, w);
        let l = t.sum(y);
        t.seal(Some(l), &[x]);
        t.set_value(x, &[1.0, 1.0]);
        t.forward();
        t.backward();
        assert_eq!(t.grad(x), &[3.0, 7.0]);
        assert!(t.grads[w.0 as usize].is_empty());
    }

    #[test]
    fn gather_scatter_through_tape() {
        let mut t = Tape::new();
        let x = t.input(3, 2);
        let g_csr = t.register_csr(Arc::new(CsrIndex::new(&[0, 2, 2, 1], 3)));
        let s_csr = t.register_csr(Arc::new(CsrIndex::new(&[1, 0, 1, 1], 2)));
        let gathered = t.gather(x, g_csr);
        let scattered = t.scatter_add(gathered, s_csr);
        let sq = t.square(scattered);
        let l = t.sum(sq);
        t.seal(Some(l), &[x]);
        t.set_value(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.forward();
        // gathered = rows 0,2,2,1 → scatter [1,0,1,1]:
        // out0 = row2 = [5,6]; out1 = row0+row2+row1 = [1+5+3, 2+6+4]
        assert_eq!(t.value(scattered), &[5.0, 6.0, 9.0, 12.0]);
        t.backward();
        // matches the oracle's grad_gather_scatter test topology
        let g = t.grad(x).to_vec();
        assert_eq!(g.len(), 6);
        // finite-difference spot check on x[0]
        let f = |v0: f64| {
            let rows = [[v0, 2.0], [3.0, 4.0], [5.0, 6.0]];
            let gath = [rows[0], rows[2], rows[2], rows[1]];
            let mut out = [[0.0; 2]; 2];
            for (r, &d) in [1usize, 0, 1, 1].iter().enumerate() {
                out[d][0] += gath[r][0];
                out[d][1] += gath[r][1];
            }
            out.iter().flatten().map(|v| v * v).sum::<f64>()
        };
        let eps = 1e-6;
        let num = (f(1.0 + eps) - f(1.0 - eps)) / (2.0 * eps);
        assert!((g[0] - num).abs() < 1e-5, "{} vs {num}", g[0]);
    }

    #[test]
    fn linear_matches_separate_ops() {
        let mut fused = Tape::new();
        let x1 = fused.input(3, 2);
        let w1 = fused.leaf(&[0.3, -0.7, 1.2, 0.1], 2, 2);
        let b1 = fused.leaf(&[0.05, -0.4], 1, 2);
        let y1 = fused.linear(x1, w1, b1, Act::Silu);
        let l1 = fused.sum(y1);
        fused.seal(Some(l1), &[x1, w1, b1]);

        let mut split = Tape::new();
        let x2 = split.input(3, 2);
        let w2 = split.leaf(&[0.3, -0.7, 1.2, 0.1], 2, 2);
        let _b2 = split.leaf(&[0.05, -0.4], 1, 2);
        let mm = split.matmul(x2, w2);
        // add_bias as broadcast add through explicit rows: emulate with
        // linear(identity) − no; use matmul+manual bias via sum path is not
        // available, so compare against a hand loop instead.
        let act = split.activation(mm, Act::Identity);
        let _ = act;

        let xv = [0.5, -1.0, 2.0, 0.25, -0.5, 1.5];
        fused.set_value(x1, &xv);
        fused.forward();
        fused.backward();

        // Hand-computed oracle: pre = x·W + b, y = silu(pre), l = Σy.
        let w = [0.3, -0.7, 1.2, 0.1];
        let b = [0.05, -0.4];
        let sig = |v: f64| 1.0 / (1.0 + (-v).exp());
        let mut want_l = 0.0;
        let mut want_gx = [0.0; 6];
        for r in 0..3 {
            for c in 0..2 {
                let pre = xv[r * 2] * w[c] + xv[r * 2 + 1] * w[2 + c] + b[c];
                let s = sig(pre);
                want_l += pre * s;
                let dpre = s + pre * s * (1.0 - s);
                want_gx[r * 2] += dpre * w[c];
                want_gx[r * 2 + 1] += dpre * w[2 + c];
            }
        }
        assert!((fused.value(l1)[0] - want_l).abs() < 1e-12);
        for (g, w2) in fused.grad(x1).iter().zip(&want_gx) {
            assert!((g - w2).abs() < 1e-12);
        }
    }

    #[test]
    fn rbf_and_sqrt_chain_matches_finite_difference() {
        let mut t = Tape::new();
        let x = t.input(2, 3);
        let sq = t.square(x);
        let ss = t.sum_cols(sq);
        let d = t.sqrt(ss);
        let r = t.rbf(d, 2.0, &[0.0, 0.5, 1.0]);
        let l = t.sum(r);
        t.seal(Some(l), &[x]);
        let eval = |t: &mut Tape, v: &[f64]| {
            t.set_value(x, v);
            t.forward();
            t.value(l)[0]
        };
        let x0 = [0.3, -0.6, 0.9, 1.2, 0.1, -0.4];
        t.set_value(x, &x0);
        t.forward();
        t.backward();
        let g = t.grad(x).to_vec();
        let eps = 1e-6;
        for i in 0..6 {
            let mut p = x0;
            p[i] += eps;
            let mut m = x0;
            m[i] -= eps;
            let num = (eval(&mut t, &p) - eval(&mut t, &m)) / (2.0 * eps);
            assert!(
                (g[i] - num).abs() < 1e-5 * (1.0 + num.abs()),
                "grad[{i}] {} vs {num}",
                g[i]
            );
        }
    }

    #[test]
    fn sum_rows_matches_ones_matmul() {
        let mut t = Tape::new();
        let x = t.input(3, 2);
        let s = t.sum_rows(x);
        let sq = t.square(s);
        let l = t.sum(sq);
        t.seal(Some(l), &[x]);
        t.set_value(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.forward();
        assert_eq!(t.value(s), &[9.0, 12.0]);
        t.backward();
        // dl/dx[r][c] = 2 * s[c]
        assert_eq!(t.grad(x), &[18.0, 24.0, 18.0, 24.0, 18.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn recording_after_seal_panics() {
        let mut t = Tape::new();
        let x = t.input(1, 1);
        t.seal(None, &[]);
        let _ = t.square(x);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_loss_panics() {
        let mut t = Tape::new();
        let x = t.input(2, 2);
        t.seal(Some(x), &[x]);
    }
}
