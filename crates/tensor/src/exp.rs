//! Deterministic vectorized exponentials.
//!
//! The forward/backward replay of a compiled GNN program is dominated by
//! `exp` calls — every SiLU activation and every RBF edge feature pays one.
//! libm's `exp` is correctly rounded but scalar and ~11 ns/call on the
//! machines we target; at ~10⁵ calls per evaluation that is the entire
//! throughput budget. This module supplies a polynomial `exp` that is
//!
//! * **accurate to ≲1e-13 relative error** over the full finite range —
//!   comfortably inside the crate's documented ≤1e-9 end-to-end parity
//!   envelope against the scalar oracle (which keeps using libm);
//! * **deterministic across machines and code paths**: the AVX2 lanes and
//!   the scalar fallback evaluate the *same* IEEE-754 expression DAG —
//!   separate multiplies and adds only (never FMA, even on FMA hardware),
//!   correctly-rounded divides, and compare+blend clamps — so a value
//!   computed on an AVX2 host is bit-identical to the same value computed
//!   by the scalar fallback elsewhere. Rust never contracts `a * b + c`
//!   into an FMA on its own, so this holds under any `target-feature` set.
//!
//! # Algorithm
//!
//! Standard range reduction: `x = n·ln2 + r` with `|r| ≤ ln2/2`, where `n`
//! is recovered branch-free via the Shift trick (add `1.5·2⁵²`, read the
//! mantissa bits), and `ln2` is split Cephes-style (`LN2_HI` exact in 32
//! bits) so `r` is computed without cancellation error. `e^r` is a
//! degree-13 Taylor polynomial evaluated in Estrin form (short dependency
//! chains — the scalar fallback pipelines well too), and `2ⁿ` lands by
//! direct exponent injection (the `-80` cut below keeps `n` inside the
//! normal range, so a single scaling step never overflows).
//!
//! # Contract deviations from libm
//!
//! Inputs above `709` saturate at `exp(709) ≈ 8.2e307` instead of
//! overflowing to `+∞`, and inputs below `-80` return **exactly `+0.0`**
//! (an absolute deviation of at most `exp(-80) ≈ 1.8e-35` — thirty orders
//! of magnitude under the parity envelope). The hard zero is deliberate:
//! RBF tails otherwise emit values that, multiplied by small gradients in
//! backward, litter the replay with subnormals whose hardware assist
//! penalty (~100 cycles each) costs more than the exp itself. Zeros keep
//! every downstream product on the fast path. NaN propagates.

/// Inputs below this return exactly `+0.0` (see the module docs).
const EXP_CUT: f64 = -80.0;
/// Upper input clamp: above this `exp` overflows.
const EXP_HI: f64 = 709.0;
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High part of ln2, exact in the upper mantissa bits (Cephes split).
const LN2_HI: f64 = 6.931_457_519_531_25e-1;
/// Low part: `ln2 - LN2_HI`.
const LN2_LO: f64 = 1.428_606_820_309_417_2e-6;
/// `1.5 · 2⁵²` — adding this forces rounding to an integer in the mantissa.
const SHIFT: f64 = 6_755_399_441_055_744.0;
const MANT_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;

// Taylor coefficients 1/i! for e^r, degree 13.
const C2: f64 = 0.5;
const C3: f64 = 1.0 / 6.0;
const C4: f64 = 1.0 / 24.0;
const C5: f64 = 1.0 / 120.0;
const C6: f64 = 1.0 / 720.0;
const C7: f64 = 1.0 / 5_040.0;
const C8: f64 = 1.0 / 40_320.0;
const C9: f64 = 1.0 / 362_880.0;
const C10: f64 = 1.0 / 3_628_800.0;
const C11: f64 = 1.0 / 39_916_800.0;
const C12: f64 = 1.0 / 479_001_600.0;
const C13: f64 = 1.0 / 6_227_020_800.0;

/// Scalar reference path. Every arithmetic step here has a 1:1 AVX2
/// counterpart in [`avx2`]; keep the two in lockstep (the
/// `avx2_matches_scalar_bitwise` test enforces it).
#[inline(always)]
pub fn fast_exp(x: f64) -> f64 {
    // Clamp via compares that are false for NaN, so NaN falls through
    // untouched — mirrors the SIMD cmp+blend exactly.
    let xc = if x < EXP_CUT { EXP_CUT } else { x };
    let xc = if xc > EXP_HI { EXP_HI } else { xc };
    let k = xc * LOG2_E + SHIFT;
    let n = (k.to_bits() & MANT_MASK) as i64 - (1i64 << 51);
    let kk = k - SHIFT;
    let r = (xc - kk * LN2_HI) - kk * LN2_LO;
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let q1 = C2 + r * C3;
    let q2 = C4 + r * C5;
    let q3 = C6 + r * C7;
    let q4 = C8 + r * C9;
    let q5 = C10 + r * C11;
    let q6 = C12 + r * C13;
    let e0 = (1.0 + r) + r2 * q1;
    let e1 = q2 + r2 * q3;
    let e2 = (q4 + r2 * q5) + r4 * q6;
    let p = (e0 + r4 * e1) + r8 * e2;
    // Single-step 2ⁿ injection: with the −80 cut, n ∈ [−116, 1023] and both
    // the scale and `p·s` stay comfortably inside the normal range
    // (`p ≤ √2`, so `p·2¹⁰²³ < f64::MAX`).
    let s = f64::from_bits(((n + 1023) as u64) << 52);
    let y = p * s;
    // The underflow-to-zero described in the module docs; false for NaN,
    // which therefore rides through in `y`.
    if x < EXP_CUT {
        0.0
    } else {
        y
    }
}

/// Scalar logistic sigmoid on the deterministic [`fast_exp`].
#[inline(always)]
pub fn fast_sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + fast_exp(-x))
}

#[cfg(target_arch = "x86_64")]
fn have_avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Runtime AVX2+FMA availability, cached; gates the fused matmul dispatch
/// in [`crate::kernels`].
#[cfg(target_arch = "x86_64")]
pub(crate) fn have_avx2_fma() -> bool {
    use std::sync::OnceLock;
    static AVX2FMA: OnceLock<bool> = OnceLock::new();
    *AVX2FMA.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// Four-lane mirror of [`fast_exp`]. Only separate `mul`/`add` — no FMA
    /// intrinsics ever, so lanes round exactly like the scalar expression.
    #[inline(always)]
    unsafe fn exp4(x: __m256d) -> __m256d {
        let vcut = _mm256_set1_pd(EXP_CUT);
        let vhi = _mm256_set1_pd(EXP_HI);
        // cmp+blend keeps NaN lanes untouched, like the scalar branches.
        let m_cut = _mm256_cmp_pd(x, vcut, _CMP_LT_OQ);
        let xc = _mm256_blendv_pd(x, vcut, m_cut);
        let m_hi = _mm256_cmp_pd(xc, vhi, _CMP_GT_OQ);
        let xc = _mm256_blendv_pd(xc, vhi, m_hi);

        let shift = _mm256_set1_pd(SHIFT);
        let k = _mm256_add_pd(_mm256_mul_pd(xc, _mm256_set1_pd(LOG2_E)), shift);
        let kbits = _mm256_castpd_si256(k);
        let mant = _mm256_and_si256(kbits, _mm256_set1_epi64x(MANT_MASK as i64));
        let n = _mm256_sub_epi64(mant, _mm256_set1_epi64x(1i64 << 51));
        let kk = _mm256_sub_pd(k, shift);
        let r = _mm256_sub_pd(
            _mm256_sub_pd(xc, _mm256_mul_pd(kk, _mm256_set1_pd(LN2_HI))),
            _mm256_mul_pd(kk, _mm256_set1_pd(LN2_LO)),
        );

        let r2 = _mm256_mul_pd(r, r);
        let r4 = _mm256_mul_pd(r2, r2);
        let r8 = _mm256_mul_pd(r4, r4);
        let c = |v: f64| _mm256_set1_pd(v);
        let q1 = _mm256_add_pd(c(C2), _mm256_mul_pd(r, c(C3)));
        let q2 = _mm256_add_pd(c(C4), _mm256_mul_pd(r, c(C5)));
        let q3 = _mm256_add_pd(c(C6), _mm256_mul_pd(r, c(C7)));
        let q4 = _mm256_add_pd(c(C8), _mm256_mul_pd(r, c(C9)));
        let q5 = _mm256_add_pd(c(C10), _mm256_mul_pd(r, c(C11)));
        let q6 = _mm256_add_pd(c(C12), _mm256_mul_pd(r, c(C13)));
        let e0 = _mm256_add_pd(_mm256_add_pd(c(1.0), r), _mm256_mul_pd(r2, q1));
        let e1 = _mm256_add_pd(q2, _mm256_mul_pd(r2, q3));
        let e2 = _mm256_add_pd(
            _mm256_add_pd(q4, _mm256_mul_pd(r2, q5)),
            _mm256_mul_pd(r4, q6),
        );
        let p = _mm256_add_pd(
            _mm256_add_pd(e0, _mm256_mul_pd(r4, e1)),
            _mm256_mul_pd(r8, e2),
        );

        // Single-step 2ⁿ injection (see the scalar path). NaN lanes produce
        // garbage n, but the NaN in `p` propagates through the multiply
        // regardless, matching scalar.
        let bias = _mm256_set1_epi64x(1023);
        let s = _mm256_castsi256_pd(_mm256_slli_epi64(_mm256_add_epi64(n, bias), 52));
        let y = _mm256_mul_pd(p, s);
        // Underflow-to-zero below the cut; the mask is false for NaN lanes.
        _mm256_andnot_pd(m_cut, y)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vexp_inplace(buf: &mut [f64]) {
        let len = buf.len();
        let ptr = buf.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= len {
            let x = _mm256_loadu_pd(ptr.add(i));
            _mm256_storeu_pd(ptr.add(i), exp4(x));
            i += 4;
        }
        for v in &mut buf[i..] {
            *v = fast_exp(*v);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vsigmoid(out: &mut [f64], x: &[f64]) {
        let len = x.len();
        let one = _mm256_set1_pd(1.0);
        let neg0 = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i + 4 <= len {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            // XOR with -0.0 is the sign flip scalar `-x` compiles to.
            let e = exp4(_mm256_xor_pd(xv, neg0));
            let s = _mm256_div_pd(one, _mm256_add_pd(one, e));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), s);
            i += 4;
        }
        while i < len {
            out[i] = fast_sigmoid(x[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vsilu(out: &mut [f64], sig: &mut [f64], pre: &[f64]) {
        let len = pre.len();
        let one = _mm256_set1_pd(1.0);
        let neg0 = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i + 4 <= len {
            let xv = _mm256_loadu_pd(pre.as_ptr().add(i));
            let e = exp4(_mm256_xor_pd(xv, neg0));
            let s = _mm256_div_pd(one, _mm256_add_pd(one, e));
            _mm256_storeu_pd(sig.as_mut_ptr().add(i), s);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(xv, s));
            i += 4;
        }
        while i < len {
            let s = fast_sigmoid(pre[i]);
            sig[i] = s;
            out[i] = pre[i] * s;
            i += 1;
        }
    }
}

/// `buf[i] = fast_exp(buf[i])` for every element, vectorized where the host
/// supports AVX2, with a bit-identical scalar fallback elsewhere.
pub fn vexp_inplace(buf: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: have_avx2 gates on runtime AVX2 detection.
        unsafe { avx2::vexp_inplace(buf) };
        return;
    }
    for v in buf.iter_mut() {
        *v = fast_exp(*v);
    }
}

/// `out[i] = sigmoid(x[i])` on the deterministic exp.
///
/// # Panics
///
/// Debug-asserts matching lengths.
pub fn vsigmoid(out: &mut [f64], x: &[f64]) {
    debug_assert_eq!(out.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: have_avx2 gates on runtime AVX2 detection.
        unsafe { avx2::vsigmoid(out, x) };
        return;
    }
    for (o, &v) in out.iter_mut().zip(x) {
        *o = fast_sigmoid(v);
    }
}

/// Fused SiLU forward: `sig[i] = sigmoid(pre[i])`, `out[i] = pre[i]·sig[i]`.
///
/// The sigmoid lands in a caller-owned buffer so backward can reuse it
/// instead of recomputing an exp per element (see
/// [`act_backward_aux_inplace`](crate::kernels::act_backward_aux_inplace)).
///
/// # Panics
///
/// Debug-asserts matching lengths.
pub fn vsilu(out: &mut [f64], sig: &mut [f64], pre: &[f64]) {
    debug_assert_eq!(out.len(), pre.len());
    debug_assert_eq!(sig.len(), pre.len());
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: have_avx2 gates on runtime AVX2 detection.
        unsafe { avx2::vsilu(out, sig, pre) };
        return;
    }
    for ((o, s), &v) in out.iter_mut().zip(sig.iter_mut()).zip(pre) {
        let sv = fast_sigmoid(v);
        *s = sv;
        *o = v * sv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random doubles in [-scale, scale).
    fn lcg_doubles(n: usize, seed: u64, scale: f64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * scale
            })
            .collect()
    }

    #[test]
    fn accuracy_vs_libm() {
        let mut worst = 0.0f64;
        for &scale in &[1.0f64, 8.0, 40.0, 200.0, 700.0] {
            for x in lcg_doubles(20_000, 0x9e3779b97f4a7c15 ^ scale.to_bits(), scale) {
                if !(EXP_CUT..=EXP_HI).contains(&x) {
                    continue;
                }
                let got = fast_exp(x);
                let want = x.exp();
                if want.is_normal() {
                    worst = worst.max(((got - want) / want).abs());
                }
            }
        }
        assert!(worst < 5e-13, "max rel err {worst:.3e}");
    }

    #[test]
    fn avx2_matches_scalar_bitwise() {
        // Covers every remainder length and a value range spanning
        // subnormal results through near-overflow, plus the clamp edges.
        for len in 1..=13usize {
            let mut xs = lcg_doubles(len, 0xfeed ^ len as u64, 750.0);
            if len > 4 {
                xs[0] = EXP_CUT;
                xs[1] = EXP_HI;
                xs[2] = 0.0;
                xs[3] = -0.0;
                xs[4] = f64::NAN;
            }
            let mut buf = xs.clone();
            vexp_inplace(&mut buf);
            for (i, (&got, &x)) in buf.iter().zip(&xs).enumerate() {
                let want = fast_exp(x);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "exp lane {i} of {len}: x={x}"
                );
            }
            let mut sig = vec![f64::NAN; len];
            vsigmoid(&mut sig, &xs);
            let mut out = vec![f64::NAN; len];
            let mut sig2 = vec![f64::NAN; len];
            vsilu(&mut out, &mut sig2, &xs);
            for i in 0..len {
                let want = fast_sigmoid(xs[i]);
                assert_eq!(
                    sig[i].to_bits(),
                    want.to_bits(),
                    "sigmoid lane {i} of {len}"
                );
                assert_eq!(
                    sig2[i].to_bits(),
                    want.to_bits(),
                    "silu sig lane {i} of {len}"
                );
                let wo = xs[i] * want;
                assert_eq!(out[i].to_bits(), wo.to_bits(), "silu out lane {i} of {len}");
            }
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(fast_exp(0.0).to_bits(), 1.0f64.to_bits());
        assert!(fast_exp(f64::NAN).is_nan());
        // Saturation above, exact zero below — never ±inf and never a
        // subnormal that would poison downstream products.
        let hi = fast_exp(1.0e308);
        assert!(hi.is_finite() && hi > 1.0e307);
        assert_eq!(fast_exp(f64::INFINITY).to_bits(), hi.to_bits());
        assert_eq!(fast_exp(-1.0e308).to_bits(), 0.0f64.to_bits());
        assert_eq!(fast_exp(f64::NEG_INFINITY).to_bits(), 0.0f64.to_bits());
        // The cut boundary itself still evaluates; just past it is zero.
        assert!(fast_exp(EXP_CUT) > 0.0);
        assert_eq!(fast_exp(EXP_CUT - 1.0e-9), 0.0);
        // Sigmoid saturates cleanly at both rails.
        assert!((fast_sigmoid(40.0) - 1.0).abs() < 1e-12);
        assert!(fast_sigmoid(-40.0) < 1e-12);
        assert!((fast_sigmoid(0.0) - 0.5).abs() < 1e-15);
    }
}
