#![warn(missing_docs)]
//! Pure-Rust neural-network substrate for the AnalogFold reproduction.
//!
//! The paper trains its 3DGNN with torch; this workspace implements the
//! required subset from scratch:
//!
//! * [`Tensor`] — dense row-major 2-D tensors,
//! * [`Graph`] — an eager, tape-based reverse-mode autodiff graph with the op
//!   set a SchNet-style GNN needs (matmul, elementwise ops, gather /
//!   scatter-add for message passing, RBF expansion, log terms for the
//!   interior-point barrier),
//! * [`Linear`] / [`Mlp`] — parameterized layers with seeded Xavier init,
//! * [`Adam`], [`Sgd`] and [`lbfgs_minimize`] — training and relaxation
//!   optimizers (the paper relaxes routing guidance with L-BFGS),
//! * [`Vae`] — the small VAE used to reproduce the GeniusRoute baseline.
//!
//! Gradients flow to *any* leaf declared with [`Graph::param`], which is what
//! lets AnalogFold run gradient descent on its guidance inputs rather than on
//! weights only.
//!
//! # Examples
//!
//! Minimize `(x - 3)²` by gradient descent on a leaf:
//!
//! ```
//! use af_nn::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.param(Tensor::from_vec(vec![0.0], 1, 1));
//! for _ in 0..200 {
//!     g.reset();
//!     let t = g.input(Tensor::from_vec(vec![3.0], 1, 1));
//!     let d = g.sub(x, t);
//!     let sq = g.square(d);
//!     let loss = g.sum(sq);
//!     g.backward(loss);
//!     let step = 0.1 * g.grad(x).data()[0];
//!     g.param_data_mut(x).data_mut()[0] -= step;
//! }
//! assert!((g.value(x).data()[0] - 3.0).abs() < 1e-3);
//! ```

mod graph;
mod layers;
mod optim;
mod tensor;
mod vae;
mod vae_conv;

pub use graph::{Graph, NodeId};
pub use layers::{Activation, BoundLinear, BoundMlp, Linear, Mlp, TapeLinear, TapeMlp};
pub use optim::{lbfgs_minimize, Adam, AdamConfig, LbfgsResult, Sgd, TapeAdam};
pub use tensor::Tensor;
pub use vae::{Vae, VaeConfig};
pub use vae_conv::{ConvVae, ConvVaeConfig};
