//! Eager tape-based reverse-mode automatic differentiation.
//!
//! Values are computed as ops are recorded; [`Graph::backward`] walks the
//! tape in reverse accumulating gradients. Leaves created with
//! [`Graph::param`] persist across [`Graph::reset`] so optimizers can update
//! them in place between iterations.

use crate::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Operations recorded on the tape.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf (parameter or transient input).
    Leaf,
    /// Matrix product `a × b`.
    MatMul(NodeId, NodeId),
    /// Elementwise sum.
    Add(NodeId, NodeId),
    /// Elementwise difference.
    Sub(NodeId, NodeId),
    /// Elementwise product.
    Mul(NodeId, NodeId),
    /// Adds a `1 × n` bias row to every row of an `m × n` input.
    AddBias(NodeId, NodeId),
    /// Scalar multiple.
    Scale(NodeId, f64),
    /// `max(x, 0)`.
    Relu(NodeId),
    /// `x · sigmoid(x)`.
    Silu(NodeId),
    /// Hyperbolic tangent.
    Tanh(NodeId),
    /// Logistic sigmoid.
    Sigmoid(NodeId),
    /// Natural exponent.
    Exp(NodeId),
    /// Natural log (inputs must stay positive).
    Log(NodeId),
    /// Elementwise square.
    Square(NodeId),
    /// Elementwise square root (clamped at `eps` for stability).
    Sqrt(NodeId),
    /// Sum of all elements → `1 × 1`.
    Sum(NodeId),
    /// Row-wise sum: `m × n` → `m × 1`.
    SumCols(NodeId),
    /// Row gather: output row `i` = input row `idx[i]`.
    Gather(NodeId, Vec<usize>),
    /// Row scatter-add into `out_rows` rows: out[idx[i]] += in[i]. The row
    /// count is kept for debugging/Display even though backward re-derives
    /// shapes from the input node.
    ScatterAdd(NodeId, Vec<usize>, #[allow(dead_code)] usize),
    /// Column concatenation.
    ConcatCols(NodeId, NodeId),
    /// Radial-basis expansion of an `m × 1` input into `m × K`:
    /// `ψ_k(d) = exp(-γ (d - μ_k)²)`.
    Rbf(NodeId, f64, Vec<f64>),
    /// 3×3 same-padding convolution over `h × w` feature maps stored as
    /// `[channels, h*w]` rows: `(input, kernel, h, w)`. The kernel tensor is
    /// `[out_channels, in_channels*9]`.
    Conv3x3(NodeId, NodeId, usize, usize),
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// Autodiff graph. See the [crate docs](crate) for an end-to-end example.
pub struct Graph {
    nodes: Vec<Node>,
    n_persistent: usize,
    frozen_prefix: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            n_persistent: 0,
            frozen_prefix: false,
        }
    }

    /// Declares a persistent leaf (parameter). Must be called before any
    /// non-param node is created.
    ///
    /// # Panics
    ///
    /// Panics if ops or inputs were already recorded.
    pub fn param(&mut self, t: Tensor) -> NodeId {
        assert!(
            !self.frozen_prefix,
            "params must be declared before inputs/ops"
        );
        let id = self.push(Op::Leaf, t);
        self.n_persistent = self.nodes.len();
        id
    }

    /// Declares a transient leaf, cleared by [`Graph::reset`].
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.frozen_prefix = true;
        self.push(Op::Leaf, t)
    }

    /// Drops all transient nodes, keeping parameters (and their values).
    pub fn reset(&mut self) {
        self.nodes.truncate(self.n_persistent);
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.frozen_prefix = false;
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of the last [`Graph::backward`] loss w.r.t. this node.
    ///
    /// # Panics
    ///
    /// Panics if backward has not been run or the node is unreachable from
    /// the loss.
    pub fn grad(&self, id: NodeId) -> &Tensor {
        self.nodes[id.0]
            .grad
            .as_ref()
            .expect("no gradient: run backward() over a graph reaching this node")
    }

    /// Gradient if one was computed.
    pub fn try_grad(&self, id: NodeId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Mutable access to a parameter's value (for optimizer updates).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a persistent parameter.
    pub fn param_data_mut(&mut self, id: NodeId) -> &mut Tensor {
        assert!(id.0 < self.n_persistent, "node {} is not a parameter", id.0);
        &mut self.nodes[id.0].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    fn op(&mut self, op: Op, value: Tensor) -> NodeId {
        self.frozen_prefix = true;
        self.push(op, value)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.op(Op::MatMul(a, b), v)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.op(Op::Add(a, b), v)
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.op(Op::Sub(a, b), v)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.op(Op::Mul(a, b), v)
    }

    /// Adds a `1 × n` bias row to each row of `x` (`m × n`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let (m, n) = self.value(x).shape();
        let (br, bc) = self.value(bias).shape();
        assert_eq!((br, bc), (1, n), "bias must be 1x{n}, got {br}x{bc}");
        let mut out = self.value(x).clone();
        for r in 0..m {
            for c in 0..n {
                let v = out.get(r, c) + self.value(bias).get(0, c);
                out.set(r, c, v);
            }
        }
        self.op(Op::AddBias(x, bias), out)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, x: NodeId, k: f64) -> NodeId {
        let v = self.value(x).map(|a| a * k);
        self.op(Op::Scale(x, k), v)
    }

    /// ReLU activation.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|a| a.max(0.0));
        self.op(Op::Relu(x), v)
    }

    /// SiLU (swish) activation.
    pub fn silu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|a| a * sigmoid(a));
        self.op(Op::Silu(x), v)
    }

    /// Tanh activation.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f64::tanh);
        self.op(Op::Tanh(x), v)
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(sigmoid);
        self.op(Op::Sigmoid(x), v)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f64::exp);
        self.op(Op::Exp(x), v)
    }

    /// Elementwise natural log. Inputs are clamped at `1e-12`.
    pub fn log(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|a| a.max(1e-12).ln());
        self.op(Op::Log(x), v)
    }

    /// Elementwise square.
    pub fn square(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|a| a * a);
        self.op(Op::Square(x), v)
    }

    /// Elementwise square root, clamped at `1e-12`.
    pub fn sqrt(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|a| a.max(1e-12).sqrt());
        self.op(Op::Sqrt(x), v)
    }

    /// Sum of all elements (`1 × 1` output).
    pub fn sum(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::from_vec(vec![self.value(x).sum()], 1, 1);
        self.op(Op::Sum(x), v)
    }

    /// Row-wise sum: `m × n` → `m × 1`.
    pub fn sum_cols(&mut self, x: NodeId) -> NodeId {
        let t = self.value(x);
        let (m, _) = t.shape();
        let data: Vec<f64> = (0..m).map(|r| t.row(r).iter().sum()).collect();
        self.op(Op::SumCols(x), Tensor::from_vec(data, m, 1))
    }

    /// Gathers rows: output row `i` equals input row `idx[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&mut self, x: NodeId, idx: &[usize]) -> NodeId {
        let t = self.value(x);
        let (m, n) = t.shape();
        let mut data = Vec::with_capacity(idx.len() * n);
        for &i in idx {
            assert!(i < m, "gather index {i} out of {m} rows");
            data.extend_from_slice(t.row(i));
        }
        let v = Tensor::from_vec(data, idx.len(), n);
        self.op(Op::Gather(x, idx.to_vec()), v)
    }

    /// Scatter-add: sums input row `i` into output row `idx[i]` of an
    /// `out_rows × n` zero tensor.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len()` differs from the input row count or an index is
    /// out of range.
    pub fn scatter_add(&mut self, x: NodeId, idx: &[usize], out_rows: usize) -> NodeId {
        let t = self.value(x);
        let (m, n) = t.shape();
        assert_eq!(idx.len(), m, "one index per input row");
        let mut out = Tensor::zeros(out_rows, n);
        for (r, &i) in idx.iter().enumerate() {
            assert!(i < out_rows, "scatter index {i} out of {out_rows} rows");
            for c in 0..n {
                let v = out.get(i, c) + t.get(r, c);
                out.set(i, c, v);
            }
        }
        self.op(Op::ScatterAdd(x, idx.to_vec(), out_rows), out)
    }

    /// Concatenates columns of two tensors with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ta, tb) = (self.value(a), self.value(b));
        let (m, n1) = ta.shape();
        let (m2, n2) = tb.shape();
        assert_eq!(m, m2, "concat_cols row mismatch");
        let mut data = Vec::with_capacity(m * (n1 + n2));
        for r in 0..m {
            data.extend_from_slice(ta.row(r));
            data.extend_from_slice(tb.row(r));
        }
        let v = Tensor::from_vec(data, m, n1 + n2);
        self.op(Op::ConcatCols(a, b), v)
    }

    /// Radial-basis expansion `ψ_k(d) = exp(-γ (d - μ_k)²)` of an `m × 1`
    /// input into `m × K` (SchNet-style distance featurization).
    ///
    /// # Panics
    ///
    /// Panics if the input is not a column vector or `mus` is empty.
    pub fn rbf(&mut self, x: NodeId, gamma: f64, mus: &[f64]) -> NodeId {
        let t = self.value(x);
        let (m, n) = t.shape();
        assert_eq!(n, 1, "rbf expects an m×1 input");
        assert!(!mus.is_empty(), "rbf needs at least one center");
        let mut data = Vec::with_capacity(m * mus.len());
        for r in 0..m {
            let d = t.get(r, 0);
            for &mu in mus {
                data.push((-gamma * (d - mu) * (d - mu)).exp());
            }
        }
        let v = Tensor::from_vec(data, m, mus.len());
        self.op(Op::Rbf(x, gamma, mus.to_vec()), v)
    }

    /// 3×3 same-padding (zero-pad) convolution.
    ///
    /// `x` holds `in_channels` rows of flattened `h × w` maps; `kernel` is
    /// `[out_channels, in_channels*9]` (row = output channel, columns grouped
    /// per input channel in row-major 3×3 order). Returns
    /// `[out_channels, h*w]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn conv3x3(&mut self, x: NodeId, kernel: NodeId, h: usize, w: usize) -> NodeId {
        let (in_ch, hw) = self.value(x).shape();
        assert_eq!(hw, h * w, "input rows must be flattened h*w maps");
        let (out_ch, kw) = self.value(kernel).shape();
        assert_eq!(kw, in_ch * 9, "kernel must be [out_ch, in_ch*9]");
        let mut out = Tensor::zeros(out_ch, hw);
        let xin = self.value(x).clone();
        let k = self.value(kernel).clone();
        for o in 0..out_ch {
            for y in 0..h {
                for xx in 0..w {
                    let mut acc = 0.0;
                    for i in 0..in_ch {
                        for ky in 0..3usize {
                            for kx in 0..3usize {
                                let sy = y as i64 + ky as i64 - 1;
                                let sx = xx as i64 + kx as i64 - 1;
                                if sy < 0 || sx < 0 || sy >= h as i64 || sx >= w as i64 {
                                    continue;
                                }
                                acc += xin.get(i, sy as usize * w + sx as usize)
                                    * k.get(o, i * 9 + ky * 3 + kx);
                            }
                        }
                    }
                    out.set(o, y * w + xx, acc);
                }
            }
        }
        self.op(Op::Conv3x3(x, kernel, h, w), out)
    }

    /// Mean-squared-error loss between `x` and `target` (`1 × 1` output).
    pub fn mse(&mut self, x: NodeId, target: NodeId) -> NodeId {
        let d = self.sub(x, target);
        let sq = self.square(d);
        let s = self.sum(sq);
        let n = self.value(x).len() as f64;
        self.scale(s, 1.0 / n)
    }

    /// Runs reverse-mode accumulation from `loss` (must be `1 × 1`).
    ///
    /// # Panics
    ///
    /// Panics if the loss is not scalar.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        // Observability: wall time per reverse sweep, recorded only while a
        // sink is installed; the clock never influences the gradients.
        let obs_t0 = af_obs::enabled().then(std::time::Instant::now);
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[loss.0].grad = Some(Tensor::ones(1, 1));
        for i in (0..=loss.0).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let ga = grad.matmul(&self.nodes[b.0].value.transpose());
                    let gb = self.nodes[a.0].value.transpose().matmul(&grad);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    let ga = grad.zip(&self.nodes[b.0].value, |g, y| g * y);
                    let gb = grad.zip(&self.nodes[a.0].value, |g, x| g * x);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::AddBias(x, bias) => {
                    let (m, n) = grad.shape();
                    let mut gb = Tensor::zeros(1, n);
                    for r in 0..m {
                        for c in 0..n {
                            let v = gb.get(0, c) + grad.get(r, c);
                            gb.set(0, c, v);
                        }
                    }
                    self.accumulate(x, grad);
                    self.accumulate(bias, gb);
                }
                Op::Scale(x, k) => self.accumulate(x, grad.map(|g| g * k)),
                Op::Relu(x) => {
                    let g = grad.zip(&self.nodes[x.0].value, |g, v| if v > 0.0 { g } else { 0.0 });
                    self.accumulate(x, g);
                }
                Op::Silu(x) => {
                    let g = grad.zip(&self.nodes[x.0].value, |g, v| {
                        let s = sigmoid(v);
                        g * (s + v * s * (1.0 - s))
                    });
                    self.accumulate(x, g);
                }
                Op::Tanh(x) => {
                    let g = grad.zip(&self.nodes[i].value, |g, y| g * (1.0 - y * y));
                    self.accumulate(x, g);
                }
                Op::Sigmoid(x) => {
                    let g = grad.zip(&self.nodes[i].value, |g, y| g * y * (1.0 - y));
                    self.accumulate(x, g);
                }
                Op::Exp(x) => {
                    let g = grad.zip(&self.nodes[i].value, |g, y| g * y);
                    self.accumulate(x, g);
                }
                Op::Log(x) => {
                    let g = grad.zip(&self.nodes[x.0].value, |g, v| g / v.max(1e-12));
                    self.accumulate(x, g);
                }
                Op::Square(x) => {
                    let g = grad.zip(&self.nodes[x.0].value, |g, v| 2.0 * g * v);
                    self.accumulate(x, g);
                }
                Op::Sqrt(x) => {
                    let g = grad.zip(&self.nodes[i].value, |g, y| g / (2.0 * y.max(1e-12)));
                    self.accumulate(x, g);
                }
                Op::Sum(x) => {
                    let g0 = grad.get(0, 0);
                    let (m, n) = self.nodes[x.0].value.shape();
                    self.accumulate(x, Tensor::full(m, n, g0));
                }
                Op::SumCols(x) => {
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut g = Tensor::zeros(m, n);
                    for r in 0..m {
                        for c in 0..n {
                            g.set(r, c, grad.get(r, 0));
                        }
                    }
                    self.accumulate(x, g);
                }
                Op::Gather(x, idx) => {
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut g = Tensor::zeros(m, n);
                    for (r, &i2) in idx.iter().enumerate() {
                        for c in 0..n {
                            let v = g.get(i2, c) + grad.get(r, c);
                            g.set(i2, c, v);
                        }
                    }
                    self.accumulate(x, g);
                }
                Op::ScatterAdd(x, idx, _) => {
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut g = Tensor::zeros(m, n);
                    for (r, &i2) in idx.iter().enumerate() {
                        for c in 0..n {
                            g.set(r, c, grad.get(i2, c));
                        }
                    }
                    self.accumulate(x, g);
                }
                Op::ConcatCols(a, b) => {
                    let (m, n1) = self.nodes[a.0].value.shape();
                    let (_, n2) = self.nodes[b.0].value.shape();
                    let mut ga = Tensor::zeros(m, n1);
                    let mut gb = Tensor::zeros(m, n2);
                    for r in 0..m {
                        for c in 0..n1 {
                            ga.set(r, c, grad.get(r, c));
                        }
                        for c in 0..n2 {
                            gb.set(r, c, grad.get(r, n1 + c));
                        }
                    }
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Conv3x3(x, kernel, h, w) => {
                    let (in_ch, hw) = self.nodes[x.0].value.shape();
                    let (out_ch, _) = self.nodes[kernel.0].value.shape();
                    let xin = self.nodes[x.0].value.clone();
                    let k = self.nodes[kernel.0].value.clone();
                    let mut gx = Tensor::zeros(in_ch, hw);
                    let mut gk = Tensor::zeros(out_ch, in_ch * 9);
                    for o in 0..out_ch {
                        for y in 0..h {
                            for xx in 0..w {
                                let go = grad.get(o, y * w + xx);
                                if go == 0.0 {
                                    continue;
                                }
                                for i2 in 0..in_ch {
                                    for ky in 0..3usize {
                                        for kx in 0..3usize {
                                            let sy = y as i64 + ky as i64 - 1;
                                            let sx = xx as i64 + kx as i64 - 1;
                                            if sy < 0 || sx < 0 || sy >= h as i64 || sx >= w as i64
                                            {
                                                continue;
                                            }
                                            let si = sy as usize * w + sx as usize;
                                            let kc = i2 * 9 + ky * 3 + kx;
                                            let v = gx.get(i2, si) + go * k.get(o, kc);
                                            gx.set(i2, si, v);
                                            let v = gk.get(o, kc) + go * xin.get(i2, si);
                                            gk.set(o, kc, v);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    self.accumulate(x, gx);
                    self.accumulate(kernel, gk);
                }
                Op::Rbf(x, gamma, mus) => {
                    let (m, _) = self.nodes[x.0].value.shape();
                    let mut g = Tensor::zeros(m, 1);
                    for r in 0..m {
                        let d = self.nodes[x.0].value.get(r, 0);
                        let mut acc = 0.0;
                        for (k, &mu) in mus.iter().enumerate() {
                            let y = self.nodes[i].value.get(r, k);
                            acc += grad.get(r, k) * y * (-2.0 * gamma * (d - mu));
                        }
                        g.set(r, 0, acc);
                    }
                    self.accumulate(x, g);
                }
            }
        }
        if let Some(t0) = obs_t0 {
            af_obs::hist("nn.backward_us", t0.elapsed().as_secs_f64() * 1e6);
        }
    }

    fn accumulate(&mut self, id: NodeId, g: Tensor) {
        match &mut self.nodes[id.0].grad {
            Some(existing) => {
                *existing = existing.zip(&g, |a, b| a + b);
            }
            slot => *slot = Some(g),
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient check helper: builds `f` twice per perturbed input.
    fn check_grad(
        build: impl Fn(&mut Graph, NodeId) -> NodeId,
        x0: Vec<f64>,
        rows: usize,
        cols: usize,
    ) {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(x0.clone(), rows, cols));
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).clone();
        let eps = 1e-6;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus[i] += eps;
            let mut minus = x0.clone();
            minus[i] -= eps;
            let f = |v: Vec<f64>| {
                let mut g2 = Graph::new();
                let x2 = g2.param(Tensor::from_vec(v, rows, cols));
                let l = build(&mut g2, x2);
                g2.value(l).get(0, 0)
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_square_sum() {
        check_grad(
            |g, x| {
                let s = g.square(x);
                g.sum(s)
            },
            vec![1.0, -2.0, 0.5],
            1,
            3,
        );
    }

    #[test]
    fn grad_matmul() {
        check_grad(
            |g, x| {
                let w = g.input(Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.4], 3, 2));
                let y = g.matmul(x, w);
                let s = g.square(y);
                g.sum(s)
            },
            vec![0.5, -1.0, 2.0],
            1,
            3,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["relu", "silu", "tanh", "sigmoid", "exp"] {
            let a = act.to_string();
            check_grad(
                move |g, x| {
                    let y = match a.as_str() {
                        "relu" => g.relu(x),
                        "silu" => g.silu(x),
                        "tanh" => g.tanh(x),
                        "sigmoid" => g.sigmoid(x),
                        _ => g.exp(x),
                    };
                    g.sum(y)
                },
                vec![0.7, -0.3, 1.5, 0.01],
                2,
                2,
            );
        }
    }

    #[test]
    fn grad_log_sqrt() {
        check_grad(
            |g, x| {
                let l = g.log(x);
                let s = g.sqrt(x);
                let both = g.add(l, s);
                g.sum(both)
            },
            vec![0.5, 1.5, 3.0],
            1,
            3,
        );
    }

    #[test]
    fn grad_mul_sub_bias() {
        check_grad(
            |g, x| {
                let b = g.input(Tensor::from_vec(vec![0.1, -0.2], 1, 2));
                let y = g.add_bias(x, b);
                let z = g.mul(y, y);
                let w = g.sub(z, y);
                g.sum(w)
            },
            vec![1.0, 2.0, 3.0, 4.0],
            2,
            2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        check_grad(
            |g, x| {
                let gathered = g.gather(x, &[0, 2, 2, 1]);
                let scattered = g.scatter_add(gathered, &[1, 0, 1, 1], 2);
                let s = g.square(scattered);
                g.sum(s)
            },
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            3,
            2,
        );
    }

    #[test]
    fn grad_rbf() {
        check_grad(
            |g, x| {
                let r = g.rbf(x, 2.0, &[0.0, 1.0, 2.0]);
                let s = g.sum(r);
                g.square(s)
            },
            vec![0.3, 1.7],
            2,
            1,
        );
    }

    #[test]
    fn grad_concat_sumcols() {
        check_grad(
            |g, x| {
                let y = g.scale(x, 2.0);
                let cat = g.concat_cols(x, y);
                let sc = g.sum_cols(cat);
                let sq = g.square(sc);
                g.sum(sq)
            },
            vec![1.0, -1.0, 2.0, 0.5],
            2,
            2,
        );
    }

    #[test]
    fn mse_matches_manual() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0], 1, 2));
        let t = g.input(Tensor::from_vec(vec![0.0, 4.0], 1, 2));
        let l = g.mse(x, t);
        assert!((g.value(l).get(0, 0) - (1.0 + 4.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_params() {
        let mut g = Graph::new();
        let p = g.param(Tensor::from_vec(vec![5.0], 1, 1));
        let x = g.input(Tensor::from_vec(vec![1.0], 1, 1));
        let _ = g.add(p, x);
        assert_eq!(g.len(), 3);
        g.reset();
        assert_eq!(g.len(), 1);
        assert_eq!(g.value(p).get(0, 0), 5.0);
        g.param_data_mut(p).data_mut()[0] = 7.0;
        assert_eq!(g.value(p).get(0, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "params must be declared before")]
    fn late_param_panics() {
        let mut g = Graph::new();
        let _ = g.input(Tensor::zeros(1, 1));
        let _ = g.param(Tensor::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn vector_loss_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    #[should_panic(expected = "gather index")]
    fn gather_out_of_range_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        let _ = g.gather(x, &[0, 5]);
    }

    #[test]
    #[should_panic(expected = "scatter index")]
    fn scatter_out_of_range_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        let _ = g.scatter_add(x, &[0, 9], 3);
    }

    #[test]
    #[should_panic(expected = "one index per input row")]
    fn scatter_wrong_index_count_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(3, 2));
        let _ = g.scatter_add(x, &[0], 3);
    }

    #[test]
    #[should_panic(expected = "rbf expects")]
    fn rbf_rejects_matrix_input() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        let _ = g.rbf(x, 1.0, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "concat_cols row mismatch")]
    fn concat_rejects_row_mismatch() {
        let mut g = Graph::new();
        let a = g.input(Tensor::zeros(2, 2));
        let b = g.input(Tensor::zeros(3, 2));
        let _ = g.concat_cols(a, b);
    }

    #[test]
    fn log_clamps_non_positive_inputs() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-1.0, 0.0, 1.0], 1, 3));
        let y = g.log(x);
        let v = g.value(y);
        assert!(v.get(0, 0).is_finite());
        assert!(v.get(0, 1).is_finite());
        assert_eq!(v.get(0, 2), 0.0);
    }

    #[test]
    fn conv3x3_identity_kernel() {
        // a kernel with 1 at the center reproduces the input
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec((0..12).map(f64::from).collect(), 1, 12));
        let mut k = vec![0.0; 9];
        k[4] = 1.0;
        let kernel = g.input(Tensor::from_vec(k, 1, 9));
        let y = g.conv3x3(x, kernel, 3, 4);
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn conv3x3_shift_kernel_pads_with_zero() {
        // kernel selecting the left neighbor: output col 0 becomes 0
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 1, 4));
        let mut k = vec![0.0; 9];
        k[3] = 1.0; // (ky=1, kx=0) -> left neighbor
        let kernel = g.input(Tensor::from_vec(k, 1, 9));
        let y = g.conv3x3(x, kernel, 1, 4);
        assert_eq!(g.value(y).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn grad_conv3x3() {
        check_grad(
            |g, x| {
                let kernel = g.input(Tensor::from_vec(
                    vec![0.2, -0.1, 0.3, 0.5, 1.0, -0.4, 0.1, 0.0, -0.2],
                    1,
                    9,
                ));
                let y = g.conv3x3(x, kernel, 2, 3);
                let sq = g.square(y);
                g.sum(sq)
            },
            vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1],
            1,
            6,
        );
    }

    #[test]
    fn grad_conv3x3_kernel_and_multichannel() {
        // gradient wrt the kernel with 2 input channels and 2 output channels
        let mut g = Graph::new();
        let kernel = g.param(Tensor::from_vec(
            (0..36).map(|i| (i as f64 - 18.0) / 20.0).collect(),
            2,
            18,
        ));
        let x = g.input(Tensor::from_vec(
            (0..8).map(|i| i as f64 / 4.0).collect(),
            2,
            4,
        ));
        let y = g.conv3x3(x, kernel, 2, 2);
        assert_eq!(g.value(y).shape(), (2, 4));
        let sq = g.square(y);
        let loss = g.sum(sq);
        g.backward(loss);
        let analytic = g.grad(kernel).clone();
        // numeric check on a few kernel entries
        let base: Vec<f64> = g.value(kernel).data().to_vec();
        let eval = |kv: Vec<f64>| {
            let mut g2 = Graph::new();
            let k2 = g2.param(Tensor::from_vec(kv, 2, 18));
            let x2 = g2.input(Tensor::from_vec(
                (0..8).map(|i| i as f64 / 4.0).collect(),
                2,
                4,
            ));
            let y2 = g2.conv3x3(x2, k2, 2, 2);
            let sq2 = g2.square(y2);
            let l2 = g2.sum(sq2);
            g2.value(l2).get(0, 0)
        };
        let eps = 1e-6;
        for idx in [0usize, 7, 18, 35] {
            let mut plus = base.clone();
            plus[idx] += eps;
            let mut minus = base.clone();
            minus[idx] -= eps;
            let numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "kernel grad[{idx}]: {a} vs {numeric}"
            );
        }
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // f(x) = x*x + x  ->  f' = 2x + 1
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![3.0], 1, 1));
        let sq = g.mul(x, x);
        let y = g.add(sq, x);
        let l = g.sum(y);
        g.backward(l);
        assert!((g.grad(x).get(0, 0) - 7.0).abs() < 1e-12);
    }
}
