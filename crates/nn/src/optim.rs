//! Optimizers: [`Adam`], [`Sgd`], and a standalone [`lbfgs_minimize`] used by
//! the potential-relaxation stage.

use crate::{Graph, NodeId, Tensor};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Adam optimizer over a fixed set of graph parameters.
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    params: Vec<NodeId>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `params` (node ids from `bind`).
    pub fn new(params: Vec<NodeId>, cfg: AdamConfig, graph: &Graph) -> Self {
        let m = params
            .iter()
            .map(|&p| {
                let (r, c) = graph.value(p).shape();
                Tensor::zeros(r, c)
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Self {
            cfg,
            params,
            m,
            v,
            t: 0,
        }
    }

    /// Applies one update using the gradients currently stored in the graph.
    ///
    /// Parameters with no gradient (unreached by the loss) are skipped.
    pub fn step(&mut self, graph: &mut Graph) {
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for (i, &p) in self.params.iter().enumerate() {
            let Some(grad) = graph.try_grad(p).cloned() else {
                continue;
            };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), gi) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(grad.data())
            {
                *mi = self.cfg.beta1 * *mi + (1.0 - self.cfg.beta1) * gi;
                *vi = self.cfg.beta2 * *vi + (1.0 - self.cfg.beta2) * gi * gi;
            }
            let data = graph.param_data_mut(p);
            for ((x, mi), vi) in data.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                *x -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }
}

/// Adam over `af_tensor` tape leaves — same update math as [`Adam`], so a
/// tape-trained model matches the graph-trained oracle bit for bit.
#[derive(Debug)]
pub struct TapeAdam {
    cfg: AdamConfig,
    params: Vec<af_tensor::Var>,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
    t: u64,
}

impl TapeAdam {
    /// Creates an optimizer for `params` (leaf vars from `bind_tape`).
    pub fn new(params: Vec<af_tensor::Var>, cfg: AdamConfig, tape: &af_tensor::Tape) -> Self {
        let m = params
            .iter()
            .map(|&p| {
                let (r, c) = tape.shape(p);
                vec![0.0; r * c]
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Self {
            cfg,
            params,
            m,
            v,
            t: 0,
        }
    }

    /// Applies one update using the gradients currently stored in the tape.
    ///
    /// Parameters with no gradient buffer (outside the sealed mask) are
    /// skipped, mirroring [`Adam::step`]'s unreached-parameter skip.
    pub fn step(&mut self, tape: &mut af_tensor::Tape) {
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for (i, &p) in self.params.iter().enumerate() {
            let Some((data, grad)) = tape.value_and_grad_mut(p) else {
                continue;
            };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), gi) in m.iter_mut().zip(v.iter_mut()).zip(grad) {
                *mi = self.cfg.beta1 * *mi + (1.0 - self.cfg.beta1) * gi;
                *vi = self.cfg.beta2 * *vi + (1.0 - self.cfg.beta2) * gi * gi;
            }
            for ((x, mi), vi) in data.iter_mut().zip(m.iter()).zip(v.iter()) {
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                *x -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug)]
pub struct Sgd {
    lr: f64,
    params: Vec<NodeId>,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn new(params: Vec<NodeId>, lr: f64) -> Self {
        Self { lr, params }
    }

    /// Applies one descent step using stored gradients.
    pub fn step(&mut self, graph: &mut Graph) {
        for &p in &self.params {
            let Some(grad) = graph.try_grad(p).cloned() else {
                continue;
            };
            let data = graph.param_data_mut(p);
            for (x, g) in data.data_mut().iter_mut().zip(grad.data()) {
                *x -= self.lr * g;
            }
        }
    }
}

/// Result of [`lbfgs_minimize`].
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Final point.
    pub x: Vec<f64>,
    /// Final objective value.
    pub f: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the gradient-norm tolerance was reached.
    pub converged: bool,
}

/// Minimizes `f` by L-BFGS with two-loop recursion and Armijo backtracking.
///
/// `eval` must return `(f(x), ∇f(x))`. This is the relaxation optimizer of
/// the paper ("we can minimize V(C) using a gradient descent algorithm, such
/// as L-BFGS").
///
/// # Panics
///
/// Panics if the gradient length differs from `x0`.
pub fn lbfgs_minimize(
    mut eval: impl FnMut(&[f64]) -> (f64, Vec<f64>),
    x0: &[f64],
    max_iters: usize,
    memory: usize,
    grad_tol: f64,
) -> LbfgsResult {
    let n = x0.len();
    let mut x = x0.to_vec();
    let (mut fx, mut g) = eval(&x);
    assert_eq!(g.len(), n, "gradient length mismatch");

    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho: Vec<f64> = Vec::new();

    let mut iterations = 0;
    let mut converged = norm(&g) <= grad_tol;

    while iterations < max_iters && !converged {
        iterations += 1;
        // Two-loop recursion for direction d = -H·g.
        let mut q = g.clone();
        let k = s_hist.len();
        let mut alpha = vec![0.0; k];
        for i in (0..k).rev() {
            alpha[i] = rho[i] * dot(&s_hist[i], &q);
            axpy(&mut q, -alpha[i], &y_hist[i]);
        }
        let gamma = if k > 0 {
            dot(&s_hist[k - 1], &y_hist[k - 1]) / dot(&y_hist[k - 1], &y_hist[k - 1]).max(1e-300)
        } else {
            1.0
        };
        for qi in q.iter_mut() {
            *qi *= gamma;
        }
        for i in 0..k {
            let beta = rho[i] * dot(&y_hist[i], &q);
            axpy(&mut q, alpha[i] - beta, &s_hist[i]);
        }
        let mut d: Vec<f64> = q.iter().map(|v| -v).collect();
        // Ensure descent; fall back to steepest descent otherwise.
        if dot(&d, &g) >= 0.0 {
            d = g.iter().map(|v| -v).collect();
        }

        // Weak-Wolfe line search (bracketing): Armijo on sufficient decrease
        // plus a curvature condition so s·y > 0 and the memory stays useful.
        let gd = dot(&g, &d);
        let (c1, c2) = (1e-4, 0.9);
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        let mut step = 1.0;
        let mut accepted = None;
        for _ in 0..50 {
            let xn: Vec<f64> = x.iter().zip(&d).map(|(xi, di)| xi + step * di).collect();
            let (fn_, gn) = eval(&xn);
            if !fn_.is_finite() || fn_ > fx + c1 * step * gd {
                hi = step; // too long
            } else if dot(&gn, &d) < c2 * gd {
                lo = step; // too short (curvature unmet)
                accepted.get_or_insert((xn.clone(), fn_, gn.clone()));
            } else {
                accepted = Some((xn, fn_, gn));
                break;
            }
            step = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                2.0 * step
            };
            if step < 1e-16 {
                break;
            }
        }
        let Some((xn, fn_, gn)) = accepted else {
            break; // no acceptable step — stationary enough
        };
        let s: Vec<f64> = xn.iter().zip(&x).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = gn.iter().zip(&g).map(|(a, b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-12 {
            s_hist.push(s);
            y_hist.push(y);
            rho.push(1.0 / sy);
            if s_hist.len() > memory {
                s_hist.remove(0);
                y_hist.remove(0);
                rho.remove(0);
            }
        }
        x = xn;
        fx = fn_;
        g = gn;
        converged = norm(&g) <= grad_tol;
    }

    LbfgsResult {
        x,
        f: fx,
        iterations,
        converged,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn adam_minimizes_quadratic() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![5.0, -3.0], 1, 2));
        let mut opt = Adam::new(
            vec![x],
            AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            },
            &g,
        );
        for _ in 0..300 {
            g.reset();
            let sq = g.square(x);
            let loss = g.sum(sq);
            g.backward(loss);
            opt.step(&mut g);
        }
        assert!(g.value(x).norm() < 1e-2);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![2.0], 1, 1));
        let mut opt = Sgd::new(vec![x], 0.1);
        for _ in 0..100 {
            g.reset();
            let sq = g.square(x);
            let loss = g.sum(sq);
            g.backward(loss);
            opt.step(&mut g);
        }
        assert!(g.value(x).get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn lbfgs_rosenbrock() {
        let eval = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            let f = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
            let g = vec![
                -2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
                200.0 * (b - a * a),
            ];
            (f, g)
        };
        let res = lbfgs_minimize(eval, &[-1.2, 1.0], 200, 10, 1e-8);
        assert!(res.f < 1e-8, "f = {}", res.f);
        assert!((res.x[0] - 1.0).abs() < 1e-3);
        assert!((res.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lbfgs_quadratic_converges_fast() {
        let eval = |x: &[f64]| {
            let f: f64 = x
                .iter()
                .enumerate()
                .map(|(i, v)| (i + 1) as f64 * v * v)
                .sum();
            let g: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(i, v)| 2.0 * (i + 1) as f64 * v)
                .collect();
            (f, g)
        };
        let res = lbfgs_minimize(eval, &[1.0; 8], 100, 10, 1e-10);
        assert!(res.converged);
        assert!(res.iterations < 50);
        assert!(res.f < 1e-12);
    }

    #[test]
    fn lbfgs_through_graph() {
        // minimize a tiny MLP's output w.r.t. its *input* — the relaxation
        // pattern AnalogFold uses.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, &mut rng);
        let eval = |x: &[f64]| {
            let mut g = Graph::new();
            let input = g.param(Tensor::from_vec(x.to_vec(), 1, 2));
            let bound = mlp.bind_frozen(&mut g);
            let y = bound.forward(&mut g, input);
            let sq = g.square(y);
            let loss = g.sum(sq);
            g.backward(loss);
            (g.value(loss).get(0, 0), g.grad(input).data().to_vec())
        };
        let (f0, _) = eval(&[0.9, -0.7]);
        let res = lbfgs_minimize(eval, &[0.9, -0.7], 60, 8, 1e-10);
        assert!(res.f <= f0, "relaxation must not increase the objective");
    }
}
