//! Convolutional VAE — closer to the original GeniusRoute generative model,
//! which used convolutional encoders/decoders over layout rasters.
//!
//! Architecture (for an `h × w` raster):
//!
//! ```text
//! enc: conv3x3(1→C) → SiLU → flatten → Linear → {mu, logvar}
//! dec: Linear(latent → C·h·w) → SiLU → conv3x3(C→1) → sigmoid
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Activation, Adam, AdamConfig, Graph, Mlp, NodeId, Tensor};

/// Convolutional VAE hyper-parameters.
#[derive(Debug, Clone)]
pub struct ConvVaeConfig {
    /// Raster height.
    pub h: usize,
    /// Raster width.
    pub w: usize,
    /// Convolution channels.
    pub channels: usize,
    /// Latent dimension.
    pub latent: usize,
    /// KL weight.
    pub beta: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ConvVaeConfig {
    fn default() -> Self {
        Self {
            h: 10,
            w: 10,
            channels: 4,
            latent: 8,
            beta: 1e-3,
            lr: 3e-3,
            seed: 23,
        }
    }
}

/// A convolutional VAE over flattened `1 × (h·w)` rasters.
///
/// # Examples
///
/// ```
/// use af_nn::{ConvVae, ConvVaeConfig, Tensor};
///
/// let cfg = ConvVaeConfig { h: 4, w: 4, channels: 2, latent: 3, ..ConvVaeConfig::default() };
/// let mut vae = ConvVae::new(cfg);
/// let data = vec![Tensor::from_vec(vec![0.7; 16], 1, 16); 3];
/// let losses = vae.train(&data, 30);
/// assert!(losses.last().unwrap() <= &losses[0]);
/// assert_eq!(vae.reconstruct(&data[0]).shape(), (1, 16));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvVae {
    h: usize,
    w: usize,
    channels: usize,
    latent: usize,
    beta: f64,
    lr: f64,
    seed: u64,
    enc_kernel: Tensor,
    mu_head: Mlp,
    logvar_head: Mlp,
    dec_head: Mlp,
    dec_kernel: Tensor,
}

impl ConvVae {
    /// Creates a convolutional VAE with seeded initialization.
    pub fn new(cfg: ConvVaeConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let hw = cfg.h * cfg.w;
        let scale = (2.0 / 9.0f64).sqrt();
        Self {
            h: cfg.h,
            w: cfg.w,
            channels: cfg.channels,
            latent: cfg.latent,
            beta: cfg.beta,
            lr: cfg.lr,
            seed: cfg.seed,
            enc_kernel: Tensor::uniform(cfg.channels, 9, scale, &mut rng),
            mu_head: Mlp::new(
                &[cfg.channels * hw, cfg.latent],
                Activation::Identity,
                &mut rng,
            ),
            logvar_head: Mlp::new(
                &[cfg.channels * hw, cfg.latent],
                Activation::Identity,
                &mut rng,
            ),
            dec_head: Mlp::new(
                &[cfg.latent, cfg.channels * hw],
                Activation::Identity,
                &mut rng,
            ),
            dec_kernel: Tensor::uniform(1, cfg.channels * 9, scale, &mut rng),
        }
    }

    /// Raster size `(h, w)`.
    pub fn raster(&self) -> (usize, usize) {
        (self.h, self.w)
    }

    /// Reshapes a `[1, C·h·w]` row into `[C, h·w]` channel-major maps.
    fn to_channels(g: &mut Graph, row: NodeId, channels: usize, hw: usize) -> NodeId {
        // gather rows is row-level; we need a reshape. Implement via gather on
        // a transposed layout: build [C, hw] by C gathers of 1 row each is
        // wrong — instead use matmul with selection matrices. Cheaper: since
        // the data is [1, C*hw], multiply by precomputed 0/1 matrices.
        // Simplest correct approach: C matmuls with selector matrices would
        // bloat the tape; instead use a single matmul with a permutation-like
        // block matrix [C*hw, hw] per channel is still C ops. We accept C
        // selector matmuls (C is small).
        let mut rows = Vec::with_capacity(channels);
        for c in 0..channels {
            let mut sel = Tensor::zeros(channels * hw, hw);
            for i in 0..hw {
                sel.set(c * hw + i, i, 1.0);
            }
            let selector = g.input(sel);
            rows.push(g.matmul(row, selector)); // [1, hw]
        }
        // stack rows: concat along rows isn't available; emulate with
        // scatter_add of gathered rows.
        let mut stacked = None;
        for (c, r) in rows.into_iter().enumerate() {
            let placed = g.scatter_add(r, &[c], channels);
            stacked = Some(match stacked {
                None => placed,
                Some(acc) => g.add(acc, placed),
            });
        }
        stacked.expect("at least one channel")
    }

    /// Flattens `[C, hw]` maps back into a `[1, C·hw]` row.
    fn to_row(g: &mut Graph, maps: NodeId, channels: usize, hw: usize) -> NodeId {
        let mut row = None;
        for c in 0..channels {
            let one = g.gather(maps, &[c]); // [1, hw]
            let mut sel = Tensor::zeros(hw, channels * hw);
            for i in 0..hw {
                sel.set(i, c * hw + i, 1.0);
            }
            let selector = g.input(sel);
            let placed = g.matmul(one, selector); // [1, C*hw]
            row = Some(match row {
                None => placed,
                Some(acc) => g.add(acc, placed),
            });
        }
        row.expect("at least one channel")
    }

    /// Trains on `1 × (h·w)` samples; returns per-epoch mean loss.
    ///
    /// # Panics
    ///
    /// Panics on wrong sample shapes or empty data.
    pub fn train(&mut self, data: &[Tensor], epochs: usize) -> Vec<f64> {
        assert!(!data.is_empty(), "no training data");
        let hw = self.h * self.w;
        for d in data {
            assert_eq!(d.shape(), (1, hw), "bad sample shape");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xc0de);
        let mut g = Graph::new();
        let enc_k = g.param(self.enc_kernel.clone());
        let mu_h = self.mu_head.bind(&mut g);
        let lv_h = self.logvar_head.bind(&mut g);
        let dec_h = self.dec_head.bind(&mut g);
        let dec_k = g.param(self.dec_kernel.clone());
        let params: Vec<NodeId> = [enc_k, dec_k]
            .into_iter()
            .chain(mu_h.params())
            .chain(lv_h.params())
            .chain(dec_h.params())
            .collect();
        let mut opt = Adam::new(
            params,
            AdamConfig {
                lr: self.lr,
                ..AdamConfig::default()
            },
            &g,
        );
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0;
            for sample in data {
                g.reset();
                let x = g.input(sample.clone());
                let fm = g.conv3x3(x, enc_k, self.h, self.w); // [C, hw]
                let fm = g.silu(fm);
                let flat = Self::to_row(&mut g, fm, self.channels, hw);
                let mu = mu_h.forward(&mut g, flat);
                let logvar = lv_h.forward(&mut g, flat);
                let eps = g.input(Tensor::randn(1, self.latent, &mut rng));
                let half = g.scale(logvar, 0.5);
                let std = g.exp(half);
                let noise = g.mul(eps, std);
                let z = g.add(mu, noise);
                let drow = dec_h.forward(&mut g, z);
                let drow = g.silu(drow);
                let dmaps = Self::to_channels(&mut g, drow, self.channels, hw);
                let logits = g.conv3x3(dmaps, dec_k, self.h, self.w); // [1, hw]
                let recon = g.sigmoid(logits);
                let rec = g.mse(recon, x);
                let mu2 = g.square(mu);
                let elv = g.exp(logvar);
                let inner = g.sub(logvar, mu2);
                let inner = g.sub(inner, elv);
                let s = g.sum(inner);
                let klc = g.scale(s, -0.5);
                let kl = g.scale(klc, self.beta);
                let loss = g.add(rec, kl);
                g.backward(loss);
                opt.step(&mut g);
                total += g.value(loss).get(0, 0);
            }
            losses.push(total / data.len() as f64);
        }
        self.enc_kernel = g.value(enc_k).clone();
        self.dec_kernel = g.value(dec_k).clone();
        self.mu_head.sync_from(&g, &mu_h);
        self.logvar_head.sync_from(&g, &lv_h);
        self.dec_head.sync_from(&g, &dec_h);
        losses
    }

    /// Deterministic reconstruction via the posterior mean.
    ///
    /// # Panics
    ///
    /// Panics on a wrong input shape.
    pub fn reconstruct(&self, x: &Tensor) -> Tensor {
        let hw = self.h * self.w;
        assert_eq!(x.shape(), (1, hw), "bad input shape");
        let mut g = Graph::new();
        let enc_k = g.input(self.enc_kernel.clone());
        let mu_h = self.mu_head.bind_frozen(&mut g);
        let dec_h = self.dec_head.bind_frozen(&mut g);
        let dec_k = g.input(self.dec_kernel.clone());
        let xin = g.input(x.clone());
        let fm = g.conv3x3(xin, enc_k, self.h, self.w);
        let fm = g.silu(fm);
        let flat = Self::to_row(&mut g, fm, self.channels, hw);
        let mu = mu_h.forward(&mut g, flat);
        let drow = dec_h.forward(&mut g, mu);
        let drow = g.silu(drow);
        let dmaps = Self::to_channels(&mut g, drow, self.channels, hw);
        let logits = g.conv3x3(dmaps, dec_k, self.h, self.w);
        let out = g.sigmoid(logits);
        g.value(out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, hw: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                Tensor::from_vec(
                    (0..hw)
                        .map(|j| if (i + j) % 3 == 0 { 0.9 } else { 0.1 })
                        .collect(),
                    1,
                    hw,
                )
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = ConvVaeConfig {
            h: 4,
            w: 4,
            channels: 2,
            latent: 3,
            ..ConvVaeConfig::default()
        };
        let mut vae = ConvVae::new(cfg);
        let d = data(5, 16);
        let losses = vae.train(&d, 40);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.9),
            "{} -> {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn reconstruction_shape_and_range() {
        let cfg = ConvVaeConfig {
            h: 3,
            w: 5,
            channels: 2,
            latent: 2,
            ..ConvVaeConfig::default()
        };
        let mut vae = ConvVae::new(cfg);
        let d = data(3, 15);
        vae.train(&d, 10);
        let out = vae.reconstruct(&d[0]);
        assert_eq!(out.shape(), (1, 15));
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(vae.raster(), (3, 5));
    }

    #[test]
    #[should_panic(expected = "bad sample shape")]
    fn rejects_wrong_shape() {
        let mut vae = ConvVae::new(ConvVaeConfig {
            h: 3,
            w: 3,
            ..ConvVaeConfig::default()
        });
        vae.train(&[Tensor::zeros(1, 8)], 1);
    }
}
