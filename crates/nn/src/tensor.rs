use std::fmt;

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major 2-D tensor of `f64`.
///
/// Everything in `af-nn` is 2-D: vectors are `1 × n` or `n × 1`, scalars are
/// `1 × 1`. This keeps shapes explicit and broadcasting rules trivial.
///
/// # Examples
///
/// ```
/// use af_nn::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
/// assert_eq!(t.get(1, 0), 3.0);
/// assert_eq!(t.shape(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { data, rows, cols }
    }

    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_vec(vec![0.0; rows * cols], rows, cols)
    }

    /// All-one tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::from_vec(vec![1.0; rows * cols], rows, cols)
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self::from_vec(vec![value; rows * cols], rows, cols)
    }

    /// Uniform random tensor in `[-scale, scale]` from a seeded RNG.
    pub fn uniform(rows: usize, cols: usize, scale: f64, rng: &mut ChaCha8Rng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self::from_vec(data, rows, cols)
    }

    /// Standard-normal random tensor (Box–Muller) from a seeded RNG.
    pub fn randn(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Self::from_vec(data, rows, cols)
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor::from_vec(
            self.data.iter().map(|&x| f(x)).collect(),
            self.rows,
            self.cols,
        )
    }

    /// Elementwise binary combination.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Tensor::from_vec(
            self.data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.rows,
            self.cols,
        )
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0; 5], 2, 3);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], 2, 2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn map_zip_sum() {
        let a = Tensor::from_vec(vec![1.0, -2.0], 1, 2);
        let b = a.map(f64::abs);
        assert_eq!(b.data(), &[1.0, 2.0]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2.0, 0.0]);
        assert_eq!(c.sum(), 2.0);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = Tensor::randn(100, 100, &mut rng);
        let mean = t.sum() / t.len() as f64;
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t = Tensor::uniform(10, 10, 0.5, &mut rng);
        assert!(t.data().iter().all(|x| x.abs() <= 0.5));
    }

    #[test]
    fn norm() {
        let t = Tensor::from_vec(vec![3.0, 4.0], 1, 2);
        assert!((t.norm() - 5.0).abs() < 1e-12);
    }
}
