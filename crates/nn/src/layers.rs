//! Parameterized layers: [`Linear`] and [`Mlp`].
//!
//! Layers own their weight tensors; before use they must be *bound* to a
//! [`Graph`] with [`Linear::bind`] / [`Mlp::bind`], which registers the
//! weights as persistent parameters and returns a bound handle usable inside
//! forward passes. After training, [`Linear::sync_from`] copies the updated
//! values back into the layer for serialization.

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Graph, NodeId, Tensor};

/// Activation functions supported by [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Sigmoid-weighted linear unit (swish) — the SchNet-family default.
    Silu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation inside a graph.
    pub fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Silu => g.silu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// A dense layer `y = x·W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
}

/// Graph-bound handle of a [`Linear`] layer.
#[derive(Debug, Clone, Copy)]
pub struct BoundLinear {
    /// Parameter node of the weights.
    pub w: NodeId,
    /// Parameter node of the bias.
    pub b: NodeId,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(inputs: usize, outputs: usize, rng: &mut ChaCha8Rng) -> Self {
        assert!(inputs > 0 && outputs > 0, "degenerate layer");
        let scale = (6.0 / (inputs + outputs) as f64).sqrt();
        Self {
            w: Tensor::uniform(inputs, outputs, scale, rng),
            b: Tensor::zeros(1, outputs),
        }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    /// Registers the weights as graph parameters.
    pub fn bind(&self, g: &mut Graph) -> BoundLinear {
        BoundLinear {
            w: g.param(self.w.clone()),
            b: g.param(self.b.clone()),
        }
    }

    /// Registers the weights as *transient inputs* (frozen): gradients may
    /// flow through them but they are cleared by `Graph::reset` and never
    /// updated. Used when optimizing a graph input with fixed weights.
    pub fn bind_frozen(&self, g: &mut Graph) -> BoundLinear {
        BoundLinear {
            w: g.input(self.w.clone()),
            b: g.input(self.b.clone()),
        }
    }

    /// Copies current parameter values out of the graph back into the layer.
    pub fn sync_from(&mut self, g: &Graph, bound: BoundLinear) {
        self.w = g.value(bound.w).clone();
        self.b = g.value(bound.b).clone();
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

impl BoundLinear {
    /// Forward pass `x·W + b`.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let xw = g.matmul(x, self.w);
        g.add_bias(xw, self.b)
    }

    /// Parameter node ids, for optimizers.
    pub fn params(&self) -> Vec<NodeId> {
        vec![self.w, self.b]
    }
}

/// A multi-layer perceptron with a uniform hidden activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Graph-bound handle of an [`Mlp`].
#[derive(Debug, Clone)]
pub struct BoundMlp {
    layers: Vec<BoundLinear>,
    activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `[8, 32, 32, 5]`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn new(widths: &[usize], activation: Activation, rng: &mut ChaCha8Rng) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Registers all weights as graph parameters.
    pub fn bind(&self, g: &mut Graph) -> BoundMlp {
        BoundMlp {
            layers: self.layers.iter().map(|l| l.bind(g)).collect(),
            activation: self.activation,
        }
    }

    /// Registers all weights as frozen transient inputs (see
    /// [`Linear::bind_frozen`]).
    pub fn bind_frozen(&self, g: &mut Graph) -> BoundMlp {
        BoundMlp {
            layers: self.layers.iter().map(|l| l.bind_frozen(g)).collect(),
            activation: self.activation,
        }
    }

    /// Copies parameter values from the graph back into the MLP.
    pub fn sync_from(&mut self, g: &Graph, bound: &BoundMlp) {
        for (layer, b) in self.layers.iter_mut().zip(&bound.layers) {
            layer.sync_from(g, *b);
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.layers.first().map(Linear::inputs).unwrap_or(0)
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.layers.last().map(Linear::outputs).unwrap_or(0)
    }
}

impl BoundMlp {
    /// Forward pass: activation after every layer except the last.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let obs_t0 = af_obs::enabled().then(std::time::Instant::now);
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h);
            if i != last {
                h = self.activation.apply(g, h);
            }
        }
        if let Some(t0) = obs_t0 {
            af_obs::hist("nn.forward_us", t0.elapsed().as_secs_f64() * 1e6);
        }
        h
    }

    /// All parameter node ids.
    pub fn params(&self) -> Vec<NodeId> {
        self.layers.iter().flat_map(BoundLinear::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let mut r = rng();
        let l = Linear::new(4, 3, &mut r);
        assert_eq!(l.inputs(), 4);
        assert_eq!(l.outputs(), 3);
        assert_eq!(l.param_count(), 15);
        let mut g = Graph::new();
        let b = l.bind(&mut g);
        let x = g.input(Tensor::ones(2, 4));
        let y = b.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (2, 3));
    }

    #[test]
    fn mlp_forward_and_training_reduces_loss() {
        let mut r = rng();
        let mlp = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut r);
        let mut g = Graph::new();
        let bound = mlp.bind(&mut g);
        let params = bound.params();

        // learn XOR-ish continuous target y = x0*x1
        let xs: Vec<(f64, f64)> = vec![(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (0.5, 0.5)];
        let loss_of = |g: &mut Graph, bound: &BoundMlp| {
            let x = g.input(Tensor::from_vec(
                xs.iter().flat_map(|&(a, b)| [a, b]).collect(),
                xs.len(),
                2,
            ));
            let t = g.input(Tensor::from_vec(
                xs.iter().map(|&(a, b)| a * b).collect(),
                xs.len(),
                1,
            ));
            let y = bound.forward(g, x);
            g.mse(y, t)
        };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            g.reset();
            let l = loss_of(&mut g, &bound);
            g.backward(l);
            last = g.value(l).get(0, 0);
            first.get_or_insert(last);
            let grads: Vec<Tensor> = params.iter().map(|&p| g.grad(p).clone()).collect();
            for (&p, gr) in params.iter().zip(&grads) {
                let v = g.param_data_mut(p);
                for (a, b) in v.data_mut().iter_mut().zip(gr.data()) {
                    *a -= 0.2 * b;
                }
            }
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.1,
            "loss {first} -> {last} did not drop 10x"
        );
    }

    #[test]
    fn sync_roundtrip() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::Silu, &mut r);
        let mut g = Graph::new();
        let bound = mlp.bind(&mut g);
        // tweak a parameter inside the graph
        g.param_data_mut(bound.layers[0].w).data_mut()[0] = 99.0;
        mlp.sync_from(&g, &bound);
        let mut g2 = Graph::new();
        let bound2 = mlp.bind(&mut g2);
        assert_eq!(g2.value(bound2.layers[0].w).data()[0], 99.0);
    }

    #[test]
    fn activation_apply() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-1.0, 1.0], 1, 2));
        let y = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(y).data(), &[0.0, 1.0]);
        let id = Activation::Identity.apply(&mut g, x);
        assert_eq!(id, x);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_widths() {
        let _ = Mlp::new(&[3], Activation::Relu, &mut rng());
    }

    #[test]
    fn deterministic_init() {
        let a = Mlp::new(&[2, 3], Activation::Relu, &mut rng());
        let b = Mlp::new(&[2, 3], Activation::Relu, &mut rng());
        assert_eq!(a, b);
    }
}
