//! Parameterized layers: [`Linear`] and [`Mlp`].
//!
//! Layers own their weight tensors; before use they must be *bound* to a
//! [`Graph`] with [`Linear::bind`] / [`Mlp::bind`], which registers the
//! weights as persistent parameters and returns a bound handle usable inside
//! forward passes. After training, [`Linear::sync_from`] copies the updated
//! values back into the layer for serialization.

use af_tensor::{Act, Tape, Var};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Graph, NodeId, Tensor};

/// Activation functions supported by [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Sigmoid-weighted linear unit (swish) — the SchNet-family default.
    Silu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation inside a graph.
    pub fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Silu => g.silu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// The equivalent `af_tensor` kernel activation.
    pub fn as_act(self) -> Act {
        match self {
            Activation::Relu => Act::Relu,
            Activation::Silu => Act::Silu,
            Activation::Tanh => Act::Tanh,
            Activation::Sigmoid => Act::Sigmoid,
            Activation::Identity => Act::Identity,
        }
    }
}

/// A dense layer `y = x·W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
}

/// Graph-bound handle of a [`Linear`] layer.
#[derive(Debug, Clone, Copy)]
pub struct BoundLinear {
    /// Parameter node of the weights.
    pub w: NodeId,
    /// Parameter node of the bias.
    pub b: NodeId,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(inputs: usize, outputs: usize, rng: &mut ChaCha8Rng) -> Self {
        assert!(inputs > 0 && outputs > 0, "degenerate layer");
        let scale = (6.0 / (inputs + outputs) as f64).sqrt();
        Self {
            w: Tensor::uniform(inputs, outputs, scale, rng),
            b: Tensor::zeros(1, outputs),
        }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    /// Registers the weights as graph parameters.
    pub fn bind(&self, g: &mut Graph) -> BoundLinear {
        BoundLinear {
            w: g.param(self.w.clone()),
            b: g.param(self.b.clone()),
        }
    }

    /// Registers the weights as *transient inputs* (frozen): gradients may
    /// flow through them but they are cleared by `Graph::reset` and never
    /// updated. Used when optimizing a graph input with fixed weights.
    pub fn bind_frozen(&self, g: &mut Graph) -> BoundLinear {
        BoundLinear {
            w: g.input(self.w.clone()),
            b: g.input(self.b.clone()),
        }
    }

    /// Copies current parameter values out of the graph back into the layer.
    pub fn sync_from(&mut self, g: &Graph, bound: BoundLinear) {
        self.w = g.value(bound.w).clone();
        self.b = g.value(bound.b).clone();
    }

    /// Declares the weights as tape leaves. Whether they are trainable is
    /// decided later by listing them in `Tape::seal`'s wanted set — the tape
    /// analogue of the `bind` / `bind_frozen` split.
    pub fn bind_tape(&self, t: &mut Tape) -> TapeLinear {
        TapeLinear {
            w: t.leaf(self.w.data(), self.w.rows(), self.w.cols()),
            b: t.leaf(self.b.data(), 1, self.b.cols()),
        }
    }

    /// Copies current leaf values out of the tape back into the layer.
    pub fn sync_from_tape(&mut self, t: &Tape, bound: TapeLinear) {
        self.w = Tensor::from_vec(t.value(bound.w).to_vec(), self.w.rows(), self.w.cols());
        self.b = Tensor::from_vec(t.value(bound.b).to_vec(), 1, self.b.cols());
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

impl BoundLinear {
    /// Forward pass `x·W + b`.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let xw = g.matmul(x, self.w);
        g.add_bias(xw, self.b)
    }

    /// Parameter node ids, for optimizers.
    pub fn params(&self) -> Vec<NodeId> {
        vec![self.w, self.b]
    }
}

/// Tape-bound handle of a [`Linear`] layer (the `af_tensor` fast path).
#[derive(Debug, Clone, Copy)]
pub struct TapeLinear {
    /// Weight leaf (`inputs × outputs`).
    pub w: Var,
    /// Bias leaf (`1 × outputs`).
    pub b: Var,
}

impl TapeLinear {
    /// Records the fused layer `act(x·W + b)` on the tape.
    pub fn forward(&self, t: &mut Tape, x: Var, act: Act) -> Var {
        t.linear(x, self.w, self.b, act)
    }

    /// Parameter vars in oracle order (`[w, b]`), for optimizers.
    pub fn params(&self) -> Vec<Var> {
        vec![self.w, self.b]
    }
}

/// A multi-layer perceptron with a uniform hidden activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Graph-bound handle of an [`Mlp`].
#[derive(Debug, Clone)]
pub struct BoundMlp {
    layers: Vec<BoundLinear>,
    activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `[8, 32, 32, 5]`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn new(widths: &[usize], activation: Activation, rng: &mut ChaCha8Rng) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Registers all weights as graph parameters.
    pub fn bind(&self, g: &mut Graph) -> BoundMlp {
        BoundMlp {
            layers: self.layers.iter().map(|l| l.bind(g)).collect(),
            activation: self.activation,
        }
    }

    /// Registers all weights as frozen transient inputs (see
    /// [`Linear::bind_frozen`]).
    pub fn bind_frozen(&self, g: &mut Graph) -> BoundMlp {
        BoundMlp {
            layers: self.layers.iter().map(|l| l.bind_frozen(g)).collect(),
            activation: self.activation,
        }
    }

    /// Copies parameter values from the graph back into the MLP.
    pub fn sync_from(&mut self, g: &Graph, bound: &BoundMlp) {
        for (layer, b) in self.layers.iter_mut().zip(&bound.layers) {
            layer.sync_from(g, *b);
        }
    }

    /// Declares all weights as tape leaves (see [`Linear::bind_tape`]).
    pub fn bind_tape(&self, t: &mut Tape) -> TapeMlp {
        TapeMlp {
            layers: self.layers.iter().map(|l| l.bind_tape(t)).collect(),
            activation: self.activation.as_act(),
        }
    }

    /// Copies leaf values from the tape back into the MLP.
    pub fn sync_from_tape(&mut self, t: &Tape, bound: &TapeMlp) {
        for (layer, b) in self.layers.iter_mut().zip(&bound.layers) {
            layer.sync_from_tape(t, *b);
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.layers.first().map(Linear::inputs).unwrap_or(0)
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.layers.last().map(Linear::outputs).unwrap_or(0)
    }
}

impl BoundMlp {
    /// Forward pass: activation after every layer except the last.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let obs_t0 = af_obs::enabled().then(std::time::Instant::now);
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h);
            if i != last {
                h = self.activation.apply(g, h);
            }
        }
        if let Some(t0) = obs_t0 {
            af_obs::hist("nn.forward_us", t0.elapsed().as_secs_f64() * 1e6);
        }
        h
    }

    /// All parameter node ids.
    pub fn params(&self) -> Vec<NodeId> {
        self.layers.iter().flat_map(BoundLinear::params).collect()
    }
}

/// Tape-bound handle of an [`Mlp`] (the `af_tensor` fast path).
#[derive(Debug, Clone)]
pub struct TapeMlp {
    layers: Vec<TapeLinear>,
    activation: Act,
}

impl TapeMlp {
    /// Records the forward pass: each layer as one fused linear kernel, with
    /// the hidden activation folded in everywhere except the last layer.
    pub fn forward(&self, t: &mut Tape, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i != last {
                self.activation
            } else {
                Act::Identity
            };
            h = layer.forward(t, h, act);
        }
        h
    }

    /// All parameter vars, in the oracle's `[w, b]`-per-layer order.
    pub fn params(&self) -> Vec<Var> {
        self.layers.iter().flat_map(TapeLinear::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let mut r = rng();
        let l = Linear::new(4, 3, &mut r);
        assert_eq!(l.inputs(), 4);
        assert_eq!(l.outputs(), 3);
        assert_eq!(l.param_count(), 15);
        let mut g = Graph::new();
        let b = l.bind(&mut g);
        let x = g.input(Tensor::ones(2, 4));
        let y = b.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (2, 3));
    }

    #[test]
    fn mlp_forward_and_training_reduces_loss() {
        let mut r = rng();
        let mlp = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut r);
        let mut g = Graph::new();
        let bound = mlp.bind(&mut g);
        let params = bound.params();

        // learn XOR-ish continuous target y = x0*x1
        let xs: Vec<(f64, f64)> = vec![(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (0.5, 0.5)];
        let loss_of = |g: &mut Graph, bound: &BoundMlp| {
            let x = g.input(Tensor::from_vec(
                xs.iter().flat_map(|&(a, b)| [a, b]).collect(),
                xs.len(),
                2,
            ));
            let t = g.input(Tensor::from_vec(
                xs.iter().map(|&(a, b)| a * b).collect(),
                xs.len(),
                1,
            ));
            let y = bound.forward(g, x);
            g.mse(y, t)
        };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            g.reset();
            let l = loss_of(&mut g, &bound);
            g.backward(l);
            last = g.value(l).get(0, 0);
            first.get_or_insert(last);
            let grads: Vec<Tensor> = params.iter().map(|&p| g.grad(p).clone()).collect();
            for (&p, gr) in params.iter().zip(&grads) {
                let v = g.param_data_mut(p);
                for (a, b) in v.data_mut().iter_mut().zip(gr.data()) {
                    *a -= 0.2 * b;
                }
            }
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.1,
            "loss {first} -> {last} did not drop 10x"
        );
    }

    #[test]
    fn sync_roundtrip() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::Silu, &mut r);
        let mut g = Graph::new();
        let bound = mlp.bind(&mut g);
        // tweak a parameter inside the graph
        g.param_data_mut(bound.layers[0].w).data_mut()[0] = 99.0;
        mlp.sync_from(&g, &bound);
        let mut g2 = Graph::new();
        let bound2 = mlp.bind(&mut g2);
        assert_eq!(g2.value(bound2.layers[0].w).data()[0], 99.0);
    }

    #[test]
    fn activation_apply() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-1.0, 1.0], 1, 2));
        let y = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(y).data(), &[0.0, 1.0]);
        let id = Activation::Identity.apply(&mut g, x);
        assert_eq!(id, x);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_widths() {
        let _ = Mlp::new(&[3], Activation::Relu, &mut rng());
    }

    #[test]
    fn deterministic_init() {
        let a = Mlp::new(&[2, 3], Activation::Relu, &mut rng());
        let b = Mlp::new(&[2, 3], Activation::Relu, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn tape_mlp_matches_graph_mlp_bitwise() {
        let mut r = rng();
        let mut mlp_g = Mlp::new(&[3, 8, 2], Activation::Silu, &mut r);
        let mut mlp_t = mlp_g.clone();
        let xv = [0.4, -1.1, 0.9, 2.0, 0.0, -0.3];
        let tv = [0.5, -0.5, 1.5, 0.25];

        // Scalar oracle: graph forward + mse backward + one Adam step.
        let mut g = Graph::new();
        let bound = mlp_g.bind(&mut g);
        let mut adam = crate::Adam::new(bound.params(), crate::AdamConfig::default(), &g);
        let x = g.input(Tensor::from_vec(xv.to_vec(), 2, 3));
        let t_node = g.input(Tensor::from_vec(tv.to_vec(), 2, 2));
        let y = bound.forward(&mut g, x);
        let loss = g.mse(y, t_node);
        g.backward(loss);
        adam.step(&mut g);
        mlp_g.sync_from(&g, &bound);

        // Tape fast path: same topology, same data.
        let mut t = Tape::new();
        let xt = t.input(2, 3);
        let tt = t.input(2, 2);
        let bt = mlp_t.bind_tape(&mut t);
        let yt = bt.forward(&mut t, xt);
        let lt = t.mse(yt, tt);
        t.seal(Some(lt), &bt.params());
        let mut tadam = crate::TapeAdam::new(bt.params(), crate::AdamConfig::default(), &t);
        t.set_value(xt, &xv);
        t.set_value(tt, &tv);
        t.forward();
        t.backward();
        tadam.step(&mut t);
        mlp_t.sync_from_tape(&t, &bt);

        // Each engine is bit-deterministic on its own, but tape and graph
        // are *different code paths*: the compiler may vectorize one and
        // not the other, shifting the last bits of a dot product. Pin the
        // cross-engine agreement to a few ULP instead of exact bits.
        let ulp = |a: f64, b: f64| {
            (a.to_bits() as i64)
                .wrapping_sub(b.to_bits() as i64)
                .unsigned_abs()
        };
        for (a, b) in t.value(yt).iter().zip(g.value(y).data()) {
            assert!(ulp(*a, *b) <= 64, "forward diverged: {a:?} vs {b:?}");
        }
        assert!(
            ulp(t.value(lt)[0], g.value(loss).get(0, 0)) <= 64,
            "loss diverged"
        );
        for (lg, lt_) in mlp_g.layers.iter().zip(&mlp_t.layers) {
            for (a, b) in lg.w.data().iter().zip(lt_.w.data()) {
                assert!(
                    ulp(*a, *b) <= 1024,
                    "post-Adam weights diverged: {a:?} vs {b:?}"
                );
            }
            for (a, b) in lg.b.data().iter().zip(lt_.b.data()) {
                assert!(
                    ulp(*a, *b) <= 1024,
                    "post-Adam biases diverged: {a:?} vs {b:?}"
                );
            }
        }
    }
}
