//! Variational autoencoder — the generative model behind the GeniusRoute
//! baseline (Zhu et al., ICCAD'19), which guides routing with 2-D probability
//! maps decoded from a latent space trained on existing routed patterns.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Activation, Adam, AdamConfig, Graph, Mlp, Tensor};

/// VAE hyper-parameters.
#[derive(Debug, Clone)]
pub struct VaeConfig {
    /// Flattened input dimension (raster width × height).
    pub input_dim: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Latent dimension.
    pub latent: usize,
    /// Weight of the KL term.
    pub beta: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed for init and reparameterization noise.
    pub seed: u64,
}

impl Default for VaeConfig {
    fn default() -> Self {
        Self {
            input_dim: 64,
            hidden: 64,
            latent: 8,
            beta: 1e-3,
            lr: 3e-3,
            seed: 17,
        }
    }
}

/// A small MLP VAE over flattened rasters.
///
/// # Examples
///
/// ```
/// use af_nn::{Tensor, Vae, VaeConfig};
///
/// let cfg = VaeConfig { input_dim: 16, hidden: 32, latent: 4, ..VaeConfig::default() };
/// let mut vae = Vae::new(cfg);
/// let data = vec![Tensor::from_vec(vec![0.8; 16], 1, 16); 4];
/// let losses = vae.train(&data, 50);
/// assert!(losses.last().unwrap() < &losses[0]);
/// let out = vae.reconstruct(&data[0]);
/// assert_eq!(out.shape(), (1, 16));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vae {
    cfg_input_dim: usize,
    cfg_latent: usize,
    beta: f64,
    lr: f64,
    seed: u64,
    encoder: Mlp,
    mu_head: Mlp,
    logvar_head: Mlp,
    decoder: Mlp,
}

impl Vae {
    /// Creates a VAE with seeded initialization.
    pub fn new(cfg: VaeConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let encoder = Mlp::new(&[cfg.input_dim, cfg.hidden], Activation::Silu, &mut rng);
        let mu_head = Mlp::new(&[cfg.hidden, cfg.latent], Activation::Identity, &mut rng);
        let logvar_head = Mlp::new(&[cfg.hidden, cfg.latent], Activation::Identity, &mut rng);
        let decoder = Mlp::new(
            &[cfg.latent, cfg.hidden, cfg.input_dim],
            Activation::Silu,
            &mut rng,
        );
        Self {
            cfg_input_dim: cfg.input_dim,
            cfg_latent: cfg.latent,
            beta: cfg.beta,
            lr: cfg.lr,
            seed: cfg.seed,
            encoder,
            mu_head,
            logvar_head,
            decoder,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.cfg_input_dim
    }

    /// Trains on `1 × input_dim` samples for `epochs` full passes; returns
    /// the per-epoch mean loss.
    ///
    /// # Panics
    ///
    /// Panics if a sample has the wrong shape or `data` is empty.
    pub fn train(&mut self, data: &[Tensor], epochs: usize) -> Vec<f64> {
        assert!(!data.is_empty(), "no training data");
        for d in data {
            assert_eq!(d.shape(), (1, self.cfg_input_dim), "bad sample shape");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5eed);
        let mut g = Graph::new();
        let enc = self.encoder.bind(&mut g);
        let mu_h = self.mu_head.bind(&mut g);
        let lv_h = self.logvar_head.bind(&mut g);
        let dec = self.decoder.bind(&mut g);
        let params: Vec<_> = enc
            .params()
            .into_iter()
            .chain(mu_h.params())
            .chain(lv_h.params())
            .chain(dec.params())
            .collect();
        let mut opt = Adam::new(
            params,
            AdamConfig {
                lr: self.lr,
                ..AdamConfig::default()
            },
            &g,
        );
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            for sample in data {
                g.reset();
                let x = g.input(sample.clone());
                let h = enc.forward(&mut g, x);
                let h = Activation::Silu.apply(&mut g, h);
                let mu = mu_h.forward(&mut g, h);
                let logvar = lv_h.forward(&mut g, h);
                // z = mu + eps * exp(0.5 logvar)
                let eps = g.input(Tensor::randn(1, self.cfg_latent, &mut rng));
                let half_lv = g.scale(logvar, 0.5);
                let std = g.exp(half_lv);
                let noise = g.mul(eps, std);
                let z = g.add(mu, noise);
                let logits = dec.forward(&mut g, z);
                let recon = g.sigmoid(logits);
                let rec_loss = g.mse(recon, x);
                // KL(q || N(0,1)) = -0.5 Σ (1 + logvar - mu² - exp(logvar))
                let mu2 = g.square(mu);
                let elv = g.exp(logvar);
                let inner = g.sub(logvar, mu2);
                let inner = g.sub(inner, elv);
                let ssum = g.sum(inner);
                let kl_core = g.scale(ssum, -0.5);
                let latent_bias = -0.5 * self.cfg_latent as f64;
                let kl = g.scale(kl_core, self.beta);
                let loss = g.add(rec_loss, kl);
                g.backward(loss);
                opt.step(&mut g);
                epoch_loss += g.value(loss).get(0, 0) + self.beta * latent_bias;
            }
            losses.push(epoch_loss / data.len() as f64);
        }
        self.encoder.sync_from(&g, &enc);
        self.mu_head.sync_from(&g, &mu_h);
        self.logvar_head.sync_from(&g, &lv_h);
        self.decoder.sync_from(&g, &dec);
        losses
    }

    /// Deterministic reconstruction (decodes the posterior mean).
    ///
    /// # Panics
    ///
    /// Panics on a wrong input shape.
    pub fn reconstruct(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape(), (1, self.cfg_input_dim), "bad input shape");
        let mut g = Graph::new();
        let enc = self.encoder.bind_frozen(&mut g);
        let mu_h = self.mu_head.bind_frozen(&mut g);
        let dec = self.decoder.bind_frozen(&mut g);
        let xin = g.input(x.clone());
        let h = enc.forward(&mut g, xin);
        let h = Activation::Silu.apply(&mut g, h);
        let mu = mu_h.forward(&mut g, h);
        let logits = dec.forward(&mut g, mu);
        let out = g.sigmoid(logits);
        g.value(out).clone()
    }

    /// Decodes a latent vector into an output raster.
    ///
    /// # Panics
    ///
    /// Panics on a wrong latent shape.
    pub fn decode(&self, z: &Tensor) -> Tensor {
        assert_eq!(z.shape(), (1, self.cfg_latent), "bad latent shape");
        let mut g = Graph::new();
        let dec = self.decoder.bind_frozen(&mut g);
        let zin = g.input(z.clone());
        let logits = dec.forward(&mut g, zin);
        let out = g.sigmoid(logits);
        g.value(out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned_data(n: usize, dim: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                let data: Vec<f64> = (0..dim)
                    .map(|j| if (i + j) % 2 == 0 { 0.9 } else { 0.1 })
                    .collect();
                Tensor::from_vec(data, 1, dim)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = VaeConfig {
            input_dim: 16,
            hidden: 32,
            latent: 4,
            ..VaeConfig::default()
        };
        let mut vae = Vae::new(cfg);
        let data = patterned_data(6, 16);
        let losses = vae.train(&data, 80);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "{} -> {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn reconstruction_in_unit_range() {
        let cfg = VaeConfig {
            input_dim: 8,
            hidden: 16,
            latent: 2,
            ..VaeConfig::default()
        };
        let mut vae = Vae::new(cfg);
        let data = patterned_data(4, 8);
        vae.train(&data, 30);
        let out = vae.reconstruct(&data[0]);
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn decode_shape() {
        let vae = Vae::new(VaeConfig {
            input_dim: 8,
            hidden: 16,
            latent: 3,
            ..VaeConfig::default()
        });
        let z = Tensor::zeros(1, 3);
        assert_eq!(vae.decode(&z).shape(), (1, 8));
    }

    #[test]
    #[should_panic(expected = "bad sample shape")]
    fn rejects_wrong_shape() {
        let mut vae = Vae::new(VaeConfig {
            input_dim: 8,
            hidden: 16,
            latent: 2,
            ..VaeConfig::default()
        });
        vae.train(&[Tensor::zeros(1, 9)], 1);
    }
}
