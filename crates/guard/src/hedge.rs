//! Hedged requests with a token-bucket budget.
//!
//! Hedging bounds tail latency by racing a duplicate of an idempotent
//! request against the primary once the primary has been in flight longer
//! than the typical response takes. The [`Hedger`] owns the two policy
//! questions:
//!
//! * **When to hedge** — [`Hedger::delay`] returns the time to wait before
//!   issuing the duplicate: an explicit configured delay, or the p95 of a
//!   rolling window of observed latencies clamped to
//!   `[min_delay_ms, max_delay_ms]`, times a deterministic ±10% jitter
//!   (SplitMix64 over a call counter, so a given seed always produces the
//!   same jitter sequence).
//! * **Whether hedging is affordable** — every observed response earns
//!   `budget_ratio` tokens (capped at `budget_burst`) and each hedge spends
//!   one, so steady-state hedges can never exceed `budget_ratio` of
//!   traffic. A persistently slow backend therefore cannot be papered over
//!   by hedging alone — that is the circuit breaker's job; the budget keeps
//!   hedging a tail patch, not a load doubler.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Rolling latency window length for the p95-derived delay.
const WINDOW: usize = 256;

/// Tuning for a [`Hedger`].
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Master switch; a disabled hedger never grants a hedge.
    pub enabled: bool,
    /// Explicit hedge delay in ms; `0` derives it from the observed p95.
    pub delay_ms: u64,
    /// Lower clamp for the derived delay.
    pub min_delay_ms: u64,
    /// Upper clamp for the derived delay (also used while the latency
    /// window is still empty).
    pub max_delay_ms: u64,
    /// Tokens earned per observed response; the steady-state cap on the
    /// fraction of requests that may hedge (~0.05 = 5% extra load).
    pub budget_ratio: f64,
    /// Token cap, allowing a short burst of hedges after an idle period.
    pub budget_burst: f64,
    /// Seed for the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            delay_ms: 0,
            min_delay_ms: 2,
            max_delay_ms: 50,
            budget_ratio: 0.05,
            budget_burst: 4.0,
            seed: 0,
        }
    }
}

/// Hedge accounting for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HedgeStats {
    /// Hedges actually issued (budget granted).
    pub issued: u64,
    /// Hedges whose duplicate produced the winning response.
    pub wins: u64,
    /// Hedge opportunities suppressed by an empty token bucket.
    pub suppressed: u64,
}

struct HedgeInner {
    window: VecDeque<f64>,
    tokens: f64,
    jitter_calls: u64,
    stats: HedgeStats,
}

/// Decides when a request may be hedged and how long to wait first.
pub struct Hedger {
    cfg: HedgeConfig,
    inner: Mutex<HedgeInner>,
}

impl Hedger {
    /// A hedger with the given tuning. The bucket starts at its burst cap
    /// so cold starts can hedge immediately.
    pub fn new(cfg: HedgeConfig) -> Self {
        let tokens = cfg.budget_burst.max(0.0);
        Hedger {
            cfg,
            inner: Mutex::new(HedgeInner {
                window: VecDeque::new(),
                tokens,
                jitter_calls: 0,
                stats: HedgeStats::default(),
            }),
        }
    }

    /// A hedger that never fires, for the unhedged comparison pass.
    pub fn off() -> Self {
        Hedger::new(HedgeConfig {
            enabled: false,
            ..HedgeConfig::default()
        })
    }

    /// Whether hedging is switched on at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configured tuning.
    pub fn config(&self) -> &HedgeConfig {
        &self.cfg
    }

    /// Feeds one observed end-to-end latency into the p95 window and earns
    /// `budget_ratio` tokens.
    pub fn observe(&self, latency_ms: f64) {
        let mut inner = self.inner.lock().expect("hedge lock");
        if inner.window.len() >= WINDOW {
            inner.window.pop_front();
        }
        inner.window.push_back(latency_ms.max(0.0));
        inner.tokens = (inner.tokens + self.cfg.budget_ratio).min(self.cfg.budget_burst);
    }

    /// How long the primary may be in flight before a hedge fires. Each
    /// call advances the deterministic jitter sequence.
    pub fn delay(&self) -> Duration {
        let mut inner = self.inner.lock().expect("hedge lock");
        let base = if self.cfg.delay_ms > 0 {
            self.cfg.delay_ms as f64
        } else if inner.window.is_empty() {
            self.cfg.max_delay_ms as f64
        } else {
            let mut sorted: Vec<f64> = inner.window.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            let rank = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1].clamp(self.cfg.min_delay_ms as f64, self.cfg.max_delay_ms as f64)
        };
        let draw = afrt::split_seed(self.cfg.seed, inner.jitter_calls);
        inner.jitter_calls += 1;
        let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        Duration::from_secs_f64(base * (0.9 + 0.2 * unit) / 1e3)
    }

    /// Tries to spend one hedge token. `true` means the caller may issue
    /// the duplicate request now.
    pub fn try_hedge(&self) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let mut inner = self.inner.lock().expect("hedge lock");
        if inner.tokens >= 1.0 {
            inner.tokens -= 1.0;
            inner.stats.issued += 1;
            af_obs::counter("guard.hedge.issued", 1);
            true
        } else {
            inner.stats.suppressed += 1;
            af_obs::counter("guard.hedge.suppressed", 1);
            false
        }
    }

    /// Records that an issued hedge's duplicate won the race.
    pub fn record_win(&self) {
        let mut inner = self.inner.lock().expect("hedge lock");
        inner.stats.wins += 1;
        af_obs::counter("guard.hedge.wins", 1);
    }

    /// Current hedge accounting.
    pub fn stats(&self) -> HedgeStats {
        self.inner.lock().expect("hedge lock").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_caps_hedge_fraction() {
        let hedger = Hedger::new(HedgeConfig {
            budget_ratio: 0.05,
            budget_burst: 4.0,
            ..HedgeConfig::default()
        });
        // Drain the initial burst.
        let mut granted = 0u64;
        while hedger.try_hedge() {
            granted += 1;
        }
        assert_eq!(granted, 4);
        // Steady state: 1000 observations earn at most 50 hedges.
        let mut hedges = 0u64;
        for _ in 0..1000 {
            hedger.observe(1.0);
            if hedger.try_hedge() {
                hedges += 1;
            }
        }
        assert!(hedges <= 50, "{hedges} hedges from 1000 observations");
        assert!(hedges >= 40, "{hedges} hedges from 1000 observations");
        let stats = hedger.stats();
        assert_eq!(stats.issued, granted + hedges);
        assert!(stats.suppressed > 0);
    }

    #[test]
    fn disabled_hedger_never_grants() {
        let hedger = Hedger::off();
        hedger.observe(1.0);
        assert!(!hedger.try_hedge());
        assert_eq!(hedger.stats().issued, 0);
        // Disabled grants are not counted as suppression either.
        assert_eq!(hedger.stats().suppressed, 0);
    }

    #[test]
    fn delay_tracks_p95_with_clamps() {
        let hedger = Hedger::new(HedgeConfig {
            min_delay_ms: 2,
            max_delay_ms: 50,
            ..HedgeConfig::default()
        });
        // Empty window: max clamp (±10% jitter).
        let d = hedger.delay().as_secs_f64() * 1e3;
        assert!((45.0..=55.0).contains(&d), "{d}");
        for _ in 0..100 {
            hedger.observe(10.0);
        }
        let d = hedger.delay().as_secs_f64() * 1e3;
        assert!((9.0..=11.0).contains(&d), "{d}");
        // Tiny latencies clamp up to min_delay_ms.
        for _ in 0..WINDOW {
            hedger.observe(0.01);
        }
        let d = hedger.delay().as_secs_f64() * 1e3;
        assert!((1.8..=2.2).contains(&d), "{d}");
    }

    #[test]
    fn explicit_delay_and_deterministic_jitter() {
        let seq = |seed: u64| -> Vec<u64> {
            let hedger = Hedger::new(HedgeConfig {
                delay_ms: 20,
                seed,
                ..HedgeConfig::default()
            });
            (0..8).map(|_| hedger.delay().as_micros() as u64).collect()
        };
        let a = seq(7);
        assert_eq!(a, seq(7), "same seed must replay the jitter sequence");
        assert_ne!(a, seq(8), "different seeds should jitter differently");
        for &us in &a {
            assert!((18_000..=22_000).contains(&us), "{us}us outside ±10%");
        }
    }
}
