//! Per-worker circuit breakers.
//!
//! A [`BreakerSet`] tracks one breaker per backend worker. Each breaker is a
//! rolling window of recent call outcomes; when enough of the window has
//! failed (transport error, 5xx, or latency above `slow_ms`), the breaker
//! *opens* and the front stops sending the worker traffic — it is excluded
//! from candidate selection exactly like a worker whose lease expired. After
//! `open_ms` the breaker moves to *half-open*: probation probes are let
//! through one at a time (rate-limited by `probe_interval_ms` rather than an
//! in-flight count, because a hedged loser's outcome may never be reported
//! back), and `close_after` consecutive probe successes close the breaker
//! again.
//!
//! All transitions take an explicit `now` so tests can drive the state
//! machine with fabricated clocks; the `_at`-less wrappers use
//! [`Instant::now`].

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for every breaker in a [`BreakerSet`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Rolling outcome window length.
    pub window: usize,
    /// Minimum outcomes in the window before the trip condition is checked.
    pub min_samples: usize,
    /// Fraction of the window that must have failed to trip. Values above
    /// 1.0 make the breaker untrippable (see [`BreakerSet::disabled`]).
    pub failure_ratio: f64,
    /// How long an open breaker blocks all traffic before probation.
    pub open_ms: u64,
    /// Minimum spacing between half-open probes.
    pub probe_interval_ms: u64,
    /// Consecutive probe successes required to close again.
    pub close_after: u32,
    /// Latency above this many milliseconds counts as a failure even when
    /// the call itself succeeded. `0` disables latency classification.
    pub slow_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_samples: 8,
            failure_ratio: 0.5,
            open_ms: 2_000,
            probe_interval_ms: 200,
            close_after: 2,
            slow_ms: 0,
        }
    }
}

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes fill the rolling window.
    Closed,
    /// All traffic blocked until `open_ms` elapses.
    Open,
    /// Probation: spaced probes, successes close / a failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for health endpoints and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Point-in-time view of one worker's breaker, for `/healthz`.
#[derive(Debug, Clone)]
pub struct BreakerStatus {
    /// Worker id the breaker guards.
    pub worker: String,
    /// Current state name (`closed` / `open` / `half-open`).
    pub state: String,
    /// How many times this breaker has tripped since the front started.
    pub opened: u64,
}

struct BreakerInner {
    state: BreakerState,
    window: VecDeque<bool>, // true = failure
    opened_at: Instant,
    last_probe: Instant,
    probe_successes: u32,
    opened_total: u64,
}

impl BreakerInner {
    fn new(now: Instant) -> Self {
        BreakerInner {
            state: BreakerState::Closed,
            window: VecDeque::new(),
            opened_at: now,
            last_probe: now,
            probe_successes: 0,
            opened_total: 0,
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.probe_successes = 0;
        self.window.clear();
        self.opened_total += 1;
        af_obs::counter("guard.breaker.opened", 1);
    }
}

/// One circuit breaker per backend worker id.
pub struct BreakerSet {
    cfg: BreakerConfig,
    inner: Mutex<HashMap<String, BreakerInner>>,
}

impl BreakerSet {
    /// A breaker set with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerSet {
            cfg,
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// A breaker set that never trips (failure ratio above 1.0). Used by
    /// benchmark passes that want hedging machinery without exclusion.
    pub fn disabled() -> Self {
        BreakerSet::new(BreakerConfig {
            failure_ratio: 2.0,
            ..BreakerConfig::default()
        })
    }

    /// The configured tuning.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// Whether a call to `worker` may proceed right now. An open breaker
    /// past its `open_ms` transitions to half-open here, and the permitted
    /// call *is* the probe — only call this immediately before dialing.
    pub fn allow(&self, worker: &str) -> bool {
        self.allow_at(worker, Instant::now())
    }

    /// [`BreakerSet::allow`] with an explicit clock.
    pub fn allow_at(&self, worker: &str, now: Instant) -> bool {
        let mut map = self.inner.lock().expect("breaker lock");
        let b = map
            .entry(worker.to_string())
            .or_insert_with(|| BreakerInner::new(now));
        match b.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_duration_since(b.opened_at)
                    >= Duration::from_millis(self.cfg.open_ms)
                {
                    b.state = BreakerState::HalfOpen;
                    b.probe_successes = 0;
                    b.last_probe = now;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if now.saturating_duration_since(b.last_probe)
                    >= Duration::from_millis(self.cfg.probe_interval_ms)
                {
                    b.last_probe = now;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a call outcome for `worker`. `ok` covers transport and HTTP
    /// status; latency above `slow_ms` demotes an `ok` call to a failure.
    pub fn record(&self, worker: &str, ok: bool, latency_ms: f64) {
        self.record_at(worker, ok, latency_ms, Instant::now());
    }

    /// [`BreakerSet::record`] with an explicit clock.
    pub fn record_at(&self, worker: &str, ok: bool, latency_ms: f64, now: Instant) {
        let fail = !ok || (self.cfg.slow_ms > 0 && latency_ms > self.cfg.slow_ms as f64);
        let mut map = self.inner.lock().expect("breaker lock");
        let b = map
            .entry(worker.to_string())
            .or_insert_with(|| BreakerInner::new(now));
        match b.state {
            // Late outcomes from calls issued before the trip carry no new
            // information; probation starts fresh.
            BreakerState::Open => {}
            BreakerState::HalfOpen => {
                if fail {
                    b.trip(now);
                } else {
                    b.probe_successes += 1;
                    if b.probe_successes >= self.cfg.close_after.max(1) {
                        b.state = BreakerState::Closed;
                        b.window.clear();
                        af_obs::counter("guard.breaker.closed", 1);
                    }
                }
            }
            BreakerState::Closed => {
                if b.window.len() >= self.cfg.window.max(1) {
                    b.window.pop_front();
                }
                b.window.push_back(fail);
                let fails = b.window.iter().filter(|&&f| f).count();
                if b.window.len() >= self.cfg.min_samples.max(1)
                    && fails as f64 >= self.cfg.failure_ratio * b.window.len() as f64
                {
                    b.trip(now);
                }
            }
        }
    }

    /// Current state of `worker`'s breaker (closed for unknown workers).
    pub fn state(&self, worker: &str) -> BreakerState {
        self.inner
            .lock()
            .expect("breaker lock")
            .get(worker)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Point-in-time view of every tracked breaker, sorted by worker id.
    pub fn snapshot(&self) -> Vec<BreakerStatus> {
        let map = self.inner.lock().expect("breaker lock");
        let mut out: Vec<BreakerStatus> = map
            .iter()
            .map(|(worker, b)| BreakerStatus {
                worker: worker.clone(),
                state: b.state.name().to_string(),
                opened: b.opened_total,
            })
            .collect();
        out.sort_by(|a, b| a.worker.cmp(&b.worker));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_ratio: 0.5,
            open_ms: 100,
            probe_interval_ms: 20,
            close_after: 2,
            slow_ms: 50,
        }
    }

    #[test]
    fn trips_after_failure_ratio_and_blocks() {
        let set = BreakerSet::new(cfg());
        let t0 = Instant::now();
        for _ in 0..4 {
            assert!(set.allow_at("w", t0));
            set.record_at("w", false, 1.0, t0);
        }
        assert_eq!(set.state("w"), BreakerState::Open);
        assert!(!set.allow_at("w", t0));
        assert_eq!(set.snapshot()[0].opened, 1);
    }

    #[test]
    fn slow_calls_count_as_failures() {
        let set = BreakerSet::new(cfg());
        let t0 = Instant::now();
        for _ in 0..4 {
            set.record_at("w", true, 500.0, t0); // 200 OK but way past slow_ms
        }
        assert_eq!(set.state("w"), BreakerState::Open);
    }

    #[test]
    fn half_open_probes_are_spaced_and_heal() {
        let set = BreakerSet::new(cfg());
        let t0 = Instant::now();
        for _ in 0..4 {
            set.record_at("w", false, 1.0, t0);
        }
        // Still open before open_ms.
        assert!(!set.allow_at("w", t0 + Duration::from_millis(50)));
        // First allow after open_ms is the probe; immediate retry is gated.
        let t1 = t0 + Duration::from_millis(150);
        assert!(set.allow_at("w", t1));
        assert_eq!(set.state("w"), BreakerState::HalfOpen);
        assert!(!set.allow_at("w", t1 + Duration::from_millis(5)));
        assert!(set.allow_at("w", t1 + Duration::from_millis(25)));
        // Two successes close it.
        set.record_at("w", true, 1.0, t1);
        assert_eq!(set.state("w"), BreakerState::HalfOpen);
        set.record_at("w", true, 1.0, t1);
        assert_eq!(set.state("w"), BreakerState::Closed);
        assert!(set.allow_at("w", t1));
    }

    #[test]
    fn half_open_failure_reopens() {
        let set = BreakerSet::new(cfg());
        let t0 = Instant::now();
        for _ in 0..4 {
            set.record_at("w", false, 1.0, t0);
        }
        let t1 = t0 + Duration::from_millis(150);
        assert!(set.allow_at("w", t1));
        set.record_at("w", false, 1.0, t1);
        assert_eq!(set.state("w"), BreakerState::Open);
        assert!(!set.allow_at("w", t1 + Duration::from_millis(50)));
        assert_eq!(set.snapshot()[0].opened, 2);
    }

    #[test]
    fn disabled_never_trips() {
        let set = BreakerSet::disabled();
        let t0 = Instant::now();
        for _ in 0..64 {
            set.record_at("w", false, 10_000.0, t0);
        }
        assert_eq!(set.state("w"), BreakerState::Closed);
        assert!(set.allow_at("w", t0));
    }

    #[test]
    fn healthy_mixed_traffic_stays_closed() {
        let set = BreakerSet::new(cfg());
        let t0 = Instant::now();
        for i in 0..100 {
            set.record_at("w", i % 4 != 0, 1.0, t0); // 25% failures < 50%
        }
        assert_eq!(set.state("w"), BreakerState::Closed);
    }
}
