//! CoDel-style adaptive admission control.
//!
//! Bounded queues already shed when *full*, but a queue can be far from full
//! and still be the reason every request is late: sustained sojourn time
//! above the latency target means the server has slipped from "absorbing a
//! burst" into "standing queue", and the kind thing to do is fail fast with
//! `429` so clients retry elsewhere (or later) instead of queueing into
//! collapse.
//!
//! [`Admission`] implements the CoDel control law's first half: the batch
//! collector feeds it each job's measured queue sojourn; once sojourn has
//! stayed above `target_ms` continuously for `interval_ms`, the admission
//! gate flips to shedding and the server converts new predict work into
//! early `429`s. The first sojourn back under target closes the gate. The
//! gate never touches work already queued — it only stops the queue from
//! growing — so it cannot reorder or drop accepted requests.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for an [`Admission`] gate.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queue-sojourn target in milliseconds; `0` disables the gate.
    pub target_ms: u64,
    /// How long sojourn must stay above target before shedding starts.
    pub interval_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            target_ms: 0,
            interval_ms: 100,
        }
    }
}

struct AdmissionInner {
    first_above: Option<Instant>,
    shedding: bool,
    shed_total: u64,
}

/// Queue-delay-target admission gate.
pub struct Admission {
    cfg: AdmissionConfig,
    inner: Mutex<AdmissionInner>,
}

impl Admission {
    /// A gate with the given tuning (`target_ms == 0` never sheds).
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            inner: Mutex::new(AdmissionInner {
                first_above: None,
                shedding: false,
                shed_total: 0,
            }),
        }
    }

    /// Whether the gate is active at all.
    pub fn enabled(&self) -> bool {
        self.cfg.target_ms > 0
    }

    /// Feeds one measured queue sojourn (dequeue time minus enqueue time).
    pub fn observe(&self, sojourn_ms: f64) {
        self.observe_at(sojourn_ms, Instant::now());
    }

    /// [`Admission::observe`] with an explicit clock.
    pub fn observe_at(&self, sojourn_ms: f64, now: Instant) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("admission lock");
        if sojourn_ms > self.cfg.target_ms as f64 {
            let first = *inner.first_above.get_or_insert(now);
            if now.saturating_duration_since(first) >= Duration::from_millis(self.cfg.interval_ms) {
                inner.shedding = true;
            }
        } else {
            inner.first_above = None;
            inner.shedding = false;
        }
    }

    /// Whether new work should be shed with an early `429` right now. A
    /// `true` answer is counted as a shed (`guard.admission.shed`).
    pub fn should_shed(&self) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut inner = self.inner.lock().expect("admission lock");
        if inner.shedding {
            inner.shed_total += 1;
            af_obs::counter("guard.admission.shed", 1);
        }
        inner.shedding
    }

    /// Total requests shed by this gate since creation.
    pub fn shed_total(&self) -> u64 {
        self.inner.lock().expect("admission lock").shed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_gate_never_sheds() {
        let gate = Admission::new(AdmissionConfig::default());
        let t0 = Instant::now();
        for i in 0..100 {
            gate.observe_at(1e6, t0 + Duration::from_millis(i));
        }
        assert!(!gate.should_shed());
        assert_eq!(gate.shed_total(), 0);
    }

    #[test]
    fn sheds_only_after_sustained_excess_and_recovers() {
        let gate = Admission::new(AdmissionConfig {
            target_ms: 10,
            interval_ms: 100,
        });
        let t0 = Instant::now();
        // A momentary spike within the interval does not shed.
        gate.observe_at(50.0, t0);
        gate.observe_at(50.0, t0 + Duration::from_millis(50));
        assert!(!gate.should_shed());
        // Still above target past the interval: shedding starts.
        gate.observe_at(50.0, t0 + Duration::from_millis(120));
        assert!(gate.should_shed());
        assert_eq!(gate.shed_total(), 1);
        // One sojourn back under target closes the gate immediately.
        gate.observe_at(5.0, t0 + Duration::from_millis(130));
        assert!(!gate.should_shed());
        // And the clock restarts: a fresh excursion needs its own interval.
        gate.observe_at(50.0, t0 + Duration::from_millis(140));
        assert!(!gate.should_shed());
    }
}
