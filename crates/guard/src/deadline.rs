//! End-to-end request deadlines.
//!
//! A [`Deadline`] is an absolute [`Instant`] by which the *client* needs its
//! answer. It enters the system as the `x-deadline-ms` header, in one of two
//! forms:
//!
//! * **relative** — `x-deadline-ms: 250` means "250 ms from when you read
//!   this". This is what the front forwards to workers: it re-encodes the
//!   *remaining* budget at forwarding time, so the budget shrinks
//!   monotonically across hops and clock skew between hosts never matters.
//! * **absolute** — `x-deadline-ms: @1754700000000` pins the deadline to a
//!   Unix epoch millisecond. Clients with synchronized clocks can use this
//!   to make retries share one budget. Skew handling is conservative: a
//!   timestamp at or before the receiver's current wall clock is treated as
//!   already expired, and one further in the future than `max_ms` is clamped
//!   down to `max_ms` (a skewed or hostile client must not pin work in a
//!   queue for an hour).
//!
//! Parsing never panics on arbitrary header bytes — anything that is not a
//! plain decimal (optionally `@`-prefixed) is a [`DeadlineError`], which the
//! servers map to `400`.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Request header carrying the deadline budget (relative ms, or `@unix_ms`).
pub const DEADLINE_HEADER: &str = "x-deadline-ms";

/// Response header the front stamps on a response that was won by a hedge.
pub const HEDGED_HEADER: &str = "x-hedged";

/// A malformed `x-deadline-ms` header value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineError(pub String);

impl std::fmt::Display for DeadlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad {DEADLINE_HEADER} value: {}", self.0)
    }
}

impl std::error::Error for DeadlineError {}

/// Parses an `x-deadline-ms` header value into a *remaining budget* in
/// milliseconds, given the receiver's current wall clock and a clamp.
///
/// Returns `Ok(0)` for a deadline that has already passed (the caller sheds
/// with `408`), and `Err` for anything that does not parse (the caller
/// rejects with `400`). `max_ms == 0` disables the clamp. This is the pure
/// core of [`Deadline::parse`], split out so property tests can drive it
/// with arbitrary bytes and fabricated clocks.
pub fn parse_header_ms(raw: &str, now_unix_ms: u64, max_ms: u64) -> Result<u64, DeadlineError> {
    let trimmed = raw.trim();
    let (absolute, digits) = match trimmed.strip_prefix('@') {
        Some(rest) => (true, rest),
        None => (false, trimmed),
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(DeadlineError(trimmed.to_string()));
    }
    // Longer than u64::MAX's 20 digits can only mean a garbage or hostile
    // value; saturating keeps the clamp path (not an error) responsible.
    let value: u64 = digits.parse().unwrap_or(u64::MAX);
    let remaining = if absolute {
        value.saturating_sub(now_unix_ms)
    } else {
        value
    };
    Ok(if max_ms > 0 {
        remaining.min(max_ms)
    } else {
        remaining
    })
}

/// An absolute point in time by which the client needs its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after(ms: u64) -> Self {
        Deadline {
            at: Instant::now() + Duration::from_millis(ms),
        }
    }

    /// Parses an `x-deadline-ms` header value against the current clocks,
    /// clamping the budget to `max_ms` (0 disables the clamp).
    pub fn parse(raw: &str, max_ms: u64) -> Result<Self, DeadlineError> {
        let now_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Ok(Deadline::after(parse_header_ms(raw, now_unix_ms, max_ms)?))
    }

    /// The absolute instant of the deadline.
    pub fn at(&self) -> Instant {
        self.at
    }

    /// Budget left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Budget left in whole milliseconds (zero once expired).
    pub fn remaining_ms(&self) -> u64 {
        self.remaining().as_millis() as u64
    }

    /// Whether the deadline has already passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// The header value to forward downstream: the *remaining* budget in
    /// relative form, so the hop-to-hop budget shrinks monotonically and
    /// never depends on clock agreement between hosts.
    pub fn header_value(&self) -> String {
        self.remaining_ms().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_parse_clamps_and_passes_through() {
        assert_eq!(parse_header_ms("250", 0, 600_000), Ok(250));
        assert_eq!(parse_header_ms("  42  ", 0, 600_000), Ok(42));
        assert_eq!(parse_header_ms("999999999", 0, 600_000), Ok(600_000));
        assert_eq!(parse_header_ms("999999999", 0, 0), Ok(999_999_999));
        assert_eq!(parse_header_ms("0", 0, 600_000), Ok(0));
    }

    #[test]
    fn absolute_parse_handles_past_future_and_skew() {
        let now = 1_754_700_000_000u64;
        // 500 ms in the future.
        assert_eq!(parse_header_ms("@1754700000500", now, 600_000), Ok(500));
        // In the past or exactly now: already expired, not an error.
        assert_eq!(parse_header_ms("@1754699999000", now, 600_000), Ok(0));
        assert_eq!(parse_header_ms("@1754700000000", now, 600_000), Ok(0));
        // Absurdly far future clamps to max.
        assert_eq!(
            parse_header_ms("@9999999999999999", now, 10_000),
            Ok(10_000)
        );
    }

    #[test]
    fn malformed_values_error_instead_of_panicking() {
        for bad in ["", "@", "-5", "12.5", "abc", "@12x", "1e3", "@ 12", "+7"] {
            assert!(parse_header_ms(bad, 0, 600_000).is_err(), "{bad:?}");
        }
        // Overflow-length digit strings clamp rather than error.
        assert_eq!(
            parse_header_ms("99999999999999999999999999", 0, 1_000),
            Ok(1_000)
        );
    }

    #[test]
    fn deadline_budget_shrinks_monotonically() {
        let d = Deadline::after(5_000);
        let first = d.remaining_ms();
        assert!(first <= 5_000);
        std::thread::sleep(Duration::from_millis(5));
        let second = d.remaining_ms();
        assert!(second <= first, "{second} > {first}");
        assert!(!d.expired());
        let gone = Deadline::after(0);
        assert!(gone.expired());
        assert_eq!(gone.remaining_ms(), 0);
        assert_eq!(gone.header_value(), "0");
    }
}
