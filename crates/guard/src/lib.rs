#![warn(missing_docs)]
//! Tail tolerance and overload protection for the serve/fleet tier.
//!
//! The serving stack (af-serve behind an af-fleet front) already defends
//! against *dead* workers — heartbeat leases expire and the rendezvous ring
//! drops them — but a merely *slow* worker drags front p99 unboundedly, and
//! a request that has already blown its client deadline still burns backend
//! compute all the way through the batch collector or a route job. This
//! crate packages the four classic tail-tolerance policies as small,
//! std-only building blocks that both tiers thread through their hot paths:
//!
//! * [`Deadline`] — end-to-end budgets. Clients set [`DEADLINE_HEADER`]
//!   (`x-deadline-ms`), the front converts it to an absolute instant and
//!   forwards the *remaining* budget to the worker it picks, and every queue
//!   sheds expired work with `408` *before* doing any compute. [`shed`]
//!   records where expiry was caught (`guard.deadline_expired.<stage>`).
//! * [`BreakerSet`] — per-worker circuit breakers. A rolling window of call
//!   outcomes trips a breaker (closed → open → half-open with probation
//!   probes); the front excludes tripped workers from candidate selection
//!   exactly like dead ones, and heals them through half-open successes.
//! * [`Hedger`] — hedged requests. After a p95-derived delay the front
//!   issues a duplicate of an idempotent request to the next ring worker and
//!   takes the first response; a token-bucket budget caps the extra load at
//!   roughly `budget_ratio` of observed traffic. Winners are stamped with
//!   [`HEDGED_HEADER`].
//! * [`Admission`] — CoDel-style adaptive admission. Sustained queue
//!   sojourn above a target converts into early `429`s instead of letting
//!   latency collapse for everyone.
//!
//! Every policy is deterministic given its configuration and seed (hedge
//! jitter reuses the afrt SplitMix64 mixer) and observable through af-obs
//! counters; none of them allocate on the per-request fast path beyond a
//! mutex-guarded ring buffer update.

pub mod admission;
pub mod breaker;
pub mod deadline;
pub mod hedge;

pub use admission::{Admission, AdmissionConfig};
pub use breaker::{BreakerConfig, BreakerSet, BreakerState, BreakerStatus};
pub use deadline::{parse_header_ms, Deadline, DeadlineError, DEADLINE_HEADER, HEDGED_HEADER};
pub use hedge::{HedgeConfig, HedgeStats, Hedger};

/// Records that a request was shed because its deadline had already expired
/// when it reached `stage` (`front`, `conn`, `predict`, `batch`, `job`).
///
/// The counter name is `guard.deadline_expired.<stage>`; the smoke script
/// and chaos tests assert on these to prove expired requests never reach the
/// compute stages behind them.
pub fn shed(stage: &str) {
    af_obs::counter(&format!("guard.deadline_expired.{stage}"), 1);
}
