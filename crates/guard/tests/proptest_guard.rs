//! Property-based tests of the guard building blocks: deadline header
//! parsing over arbitrary bytes, remaining-budget monotonicity across hops,
//! breaker state-machine sanity, and the hedge budget cap.

use std::time::{Duration, Instant};

use af_guard::{
    parse_header_ms, BreakerConfig, BreakerSet, BreakerState, Deadline, HedgeConfig, Hedger,
};
use proptest::prelude::*;

/// Arbitrary (often non-UTF-8) header bytes, decoded lossily the way a
/// server would before reaching the parser.
fn arb_header() -> impl Strategy<Value = String> {
    collection::vec(0u8..=255, 0..24).prop_map(|v| String::from_utf8_lossy(&v).into_owned())
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

proptest! {
    /// Arbitrary header bytes never panic: they parse to a budget or an
    /// error, and a parsed budget always respects the clamp.
    #[test]
    fn header_parse_total_and_clamped(
        raw in arb_header(),
        now in 0u64..=u64::MAX / 2,
        max in 0u64..10_000_000,
    ) {
        if let Ok(ms) = parse_header_ms(&raw, now, max) {
            if max > 0 {
                prop_assert!(ms <= max, "{ms} > clamp {max}");
            }
        }
    }

    /// Well-formed relative values round-trip (modulo the clamp), and the
    /// `@absolute` form agrees with relative once the receiver clock is
    /// subtracted — including skewed clients whose timestamp is in the past.
    #[test]
    fn relative_and_absolute_forms_agree(
        budget in 0u64..100_000_000,
        now in 1u64..=u64::MAX / 4,
        max in 1u64..10_000_000,
    ) {
        let rel = parse_header_ms(&budget.to_string(), now, max).unwrap();
        prop_assert_eq!(rel, budget.min(max));
        let abs = parse_header_ms(&format!("@{}", now + budget), now, max).unwrap();
        prop_assert_eq!(abs, budget.min(max));
        // Clock skew: an absolute deadline before `now` is expired, never
        // negative, never an error.
        let skewed = parse_header_ms(&format!("@{}", now.saturating_sub(budget + 1)), now, max);
        prop_assert_eq!(skewed, Ok(0));
    }

    /// Re-encoding a deadline as the forwarded header (remaining budget in
    /// relative form) can only shrink it, hop after hop — the property the
    /// front relies on when it forwards budgets to workers.
    #[test]
    fn forwarded_budget_is_monotone(budget in 0u64..60_000, hops in 1usize..6) {
        let mut deadline = Deadline::after(budget);
        let mut last = u64::MAX;
        for _ in 0..hops {
            let forwarded = deadline.header_value();
            let reparsed = parse_header_ms(&forwarded, 0, 0).unwrap();
            prop_assert!(reparsed <= last, "{reparsed} > {last} across a hop");
            prop_assert!(reparsed <= budget);
            last = reparsed;
            deadline = Deadline::after(reparsed);
        }
    }

    /// Whatever outcome sequence a breaker sees, its window never exceeds
    /// the configured length, `allow` is always true while closed, always
    /// false while freshly open, and a trip requires at least `min_samples`
    /// recorded outcomes.
    #[test]
    fn breaker_state_machine_sane(
        outcomes in collection::vec(arb_bool(), 1..200),
        window in 2usize..32,
        min_samples in 1usize..16,
    ) {
        let set = BreakerSet::new(BreakerConfig {
            window,
            min_samples,
            failure_ratio: 0.5,
            open_ms: 60_000, // never reaches half-open inside this test
            ..BreakerConfig::default()
        });
        let t0 = Instant::now();
        let mut recorded = 0usize;
        for &ok in &outcomes {
            match set.state("w") {
                BreakerState::Closed => {
                    prop_assert!(set.allow_at("w", t0));
                    set.record_at("w", ok, 1.0, t0);
                    recorded += 1;
                    if set.state("w") == BreakerState::Open {
                        prop_assert!(recorded >= min_samples.max(1));
                    }
                }
                BreakerState::Open => {
                    prop_assert!(!set.allow_at("w", t0 + Duration::from_millis(1)));
                }
                BreakerState::HalfOpen => prop_assert!(false, "open_ms never elapsed"),
            }
        }
    }

    /// Over any observation/hedge interleaving, issued hedges never exceed
    /// the burst cap plus the earned budget.
    #[test]
    fn hedge_budget_never_exceeded(
        tries in collection::vec(arb_bool(), 1..400),
        ratio in 0.01f64..0.5,
        burst in 1.0f64..8.0,
    ) {
        let hedger = Hedger::new(HedgeConfig {
            budget_ratio: ratio,
            budget_burst: burst,
            ..HedgeConfig::default()
        });
        let mut observed = 0u64;
        for &observe_first in &tries {
            if observe_first {
                hedger.observe(1.0);
                observed += 1;
            }
            hedger.try_hedge();
        }
        let cap = burst + ratio * observed as f64;
        prop_assert!(
            hedger.stats().issued as f64 <= cap + 1e-9,
            "{} issued > cap {cap}",
            hedger.stats().issued
        );
    }
}
