#![warn(missing_docs)]
//! Geometric parasitic extraction — the Calibre PEX substitute.
//!
//! The paper extracts "parasitic resistance, parasitic capacitor, and
//! coupling capacitance (R+C+CC)" from routed layouts before simulation.
//! This crate reproduces that step geometrically from the routed segments:
//!
//! * **R** — series resistance per net: Σ sheet-resistance · length / width
//!   over planar segments plus via-stack resistance,
//! * **C** — ground (area + fringe) capacitance per net: Σ per-µm constant ·
//!   length,
//! * **CC** — coupling capacitance between net pairs: Σ over same-layer
//!   parallel runs, scaled by the technology's separation falloff.
//!
//! It also reports the **symmetric-pair asymmetry** (ΔR, ΔC, ΔCC between the
//! nets of each symmetric pair), which is what drives offset-voltage and
//! CMRR degradation in the performance simulator — exactly the mechanism by
//! which routing quality reaches the paper's Table 2 metrics.
//!
//! # Examples
//!
//! ```
//! use af_extract::extract;
//! use af_netlist::benchmarks;
//! use af_place::{place, PlacementVariant};
//! use af_route::{Router, RouterConfig, RoutingGuidance};
//! use af_tech::Technology;
//!
//! let c = benchmarks::ota1();
//! let p = place(&c, PlacementVariant::A);
//! let t = Technology::nm40();
//! let l = Router::new(RouterConfig::default()).unwrap().route(&c, &p, &t, &RoutingGuidance::None).unwrap();
//! let parasitics = extract(&c, &t, &l);
//! let vout = c.net_by_name("vout").unwrap();
//! assert!(parasitics.net(vout).resistance > 0.0);
//! ```

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use af_geom::parallel_run_length;
use af_netlist::{Circuit, NetId};
use af_route::RoutedLayout;
use af_tech::Technology;

/// Lumped parasitics of one net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetParasitics {
    /// The net.
    pub net: NetId,
    /// Total series wire resistance in ohms (planar segments + vias).
    pub resistance: f64,
    /// Total capacitance to ground in farads.
    pub cap_ground: f64,
    /// Total routed wirelength in dbu.
    pub wirelength: i64,
    /// Via count.
    pub vias: u32,
}

impl NetParasitics {
    fn zero(net: NetId) -> Self {
        Self {
            net,
            resistance: 0.0,
            cap_ground: 0.0,
            wirelength: 0,
            vias: 0,
        }
    }
}

/// Coupling capacitance between an (unordered) pair of nets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CouplingCap {
    /// Lower-id net.
    pub a: NetId,
    /// Higher-id net.
    pub b: NetId,
    /// Coupling capacitance in farads.
    pub cap: f64,
}

/// Asymmetry between the two nets of a symmetric pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairAsymmetry {
    /// The pair.
    pub nets: (NetId, NetId),
    /// |R_a − R_b| in ohms.
    pub delta_r: f64,
    /// |C_a − C_b| in farads (ground + total coupling).
    pub delta_c: f64,
}

/// Full parasitic annotation of a routed layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parasitics {
    nets: Vec<NetParasitics>,
    couplings: Vec<CouplingCap>,
    asymmetries: Vec<PairAsymmetry>,
}

impl Parasitics {
    /// Parasitics of one net (zero if the net was unrouted).
    pub fn net(&self, id: NetId) -> NetParasitics {
        self.nets
            .get(id.index())
            .copied()
            .unwrap_or_else(|| NetParasitics::zero(id))
    }

    /// Per-net records in id order.
    pub fn nets(&self) -> &[NetParasitics] {
        &self.nets
    }

    /// All non-zero coupling capacitances.
    pub fn couplings(&self) -> &[CouplingCap] {
        &self.couplings
    }

    /// Coupling between two specific nets (0 when none).
    pub fn coupling_between(&self, a: NetId, b: NetId) -> f64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.couplings
            .iter()
            .find(|c| c.a == lo && c.b == hi)
            .map(|c| c.cap)
            .unwrap_or(0.0)
    }

    /// Sum of coupling capacitance incident on a net.
    pub fn total_coupling(&self, id: NetId) -> f64 {
        self.couplings
            .iter()
            .filter(|c| c.a == id || c.b == id)
            .map(|c| c.cap)
            .sum()
    }

    /// Symmetric-pair asymmetry records.
    pub fn asymmetries(&self) -> &[PairAsymmetry] {
        &self.asymmetries
    }

    /// Worst relative resistance asymmetry over all pairs (0 when perfectly
    /// matched).
    pub fn worst_mismatch(&self) -> f64 {
        self.asymmetries
            .iter()
            .map(|a| {
                let ra = self.net(a.nets.0).resistance;
                let rb = self.net(a.nets.1).resistance;
                a.delta_r / ra.max(rb).max(1e-12)
            })
            .fold(0.0, f64::max)
    }

    /// Effective load capacitance a net presents: ground + coupling.
    pub fn effective_cap(&self, id: NetId) -> f64 {
        self.net(id).cap_ground + self.total_coupling(id)
    }
}

/// Extracts R + C + CC from a routed layout.
pub fn extract(circuit: &Circuit, tech: &Technology, layout: &RoutedLayout) -> Parasitics {
    let mut nets: Vec<NetParasitics> = (0..circuit.nets().len())
        .map(|i| NetParasitics::zero(NetId::new(i as u32)))
        .collect();

    for rn in &layout.nets {
        let rec = &mut nets[rn.net.index()];
        rec.wirelength = rn.wirelength;
        rec.vias = rn.vias;
        rec.resistance = tech.via_stack_resistance(rn.vias);
        rec.cap_ground = 0.0;
        for seg in &rn.segments {
            if seg.is_via() {
                continue;
            }
            rec.resistance += tech.wire_resistance(seg.layer(), seg.length());
            rec.cap_ground += tech.wire_ground_cap(seg.layer(), seg.length());
        }
    }

    // Coupling: same-layer parallel runs between different nets.
    let mut cc: HashMap<(u32, u32), f64> = HashMap::new();
    for (i, a) in layout.nets.iter().enumerate() {
        for b in layout.nets.iter().skip(i + 1) {
            let mut total = 0.0;
            for sa in a.segments.iter().filter(|s| !s.is_via()) {
                for sb in b.segments.iter().filter(|s| !s.is_via()) {
                    if let Some((run, sep)) = parallel_run_length(sa, sb) {
                        total += tech.coupling_cap(sa.layer(), run, sep);
                    }
                }
            }
            if total > 0.0 {
                let key = (
                    a.net.index().min(b.net.index()) as u32,
                    a.net.index().max(b.net.index()) as u32,
                );
                *cc.entry(key).or_insert(0.0) += total;
            }
        }
    }
    let mut couplings: Vec<CouplingCap> = cc
        .into_iter()
        .map(|((a, b), cap)| CouplingCap {
            a: NetId::new(a),
            b: NetId::new(b),
            cap,
        })
        .collect();
    couplings.sort_by_key(|c| (c.a, c.b));

    // Pair asymmetries.
    let interim = Parasitics {
        nets: nets.clone(),
        couplings: couplings.clone(),
        asymmetries: Vec::new(),
    };
    let asymmetries = circuit
        .matched_net_pairs()
        .iter()
        .map(|&(a, b)| {
            let (pa, pb) = (interim.net(a), interim.net(b));
            let ca = pa.cap_ground + interim.total_coupling(a);
            let cb = pb.cap_ground + interim.total_coupling(b);
            PairAsymmetry {
                nets: (a, b),
                delta_r: (pa.resistance - pb.resistance).abs(),
                delta_c: (ca - cb).abs(),
            }
        })
        .collect();

    Parasitics {
        nets,
        couplings,
        asymmetries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_geom::{Point3, Segment};
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_route::{RoutedNet, Router, RouterConfig, RoutingGuidance};

    fn routed_ota1() -> (af_netlist::Circuit, Parasitics) {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let l = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        let x = extract(&c, &t, &l);
        (c, x)
    }

    #[test]
    fn every_routed_net_has_parasitics() {
        let (c, x) = routed_ota1();
        for (i, net) in c.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            let p = x.net(id);
            if net.is_routable() {
                assert!(p.resistance > 0.0, "net `{}` has zero R", net.name);
                assert!(p.cap_ground > 0.0, "net `{}` has zero C", net.name);
            }
        }
    }

    #[test]
    fn couplings_present_and_symmetric_lookup() {
        let (_, x) = routed_ota1();
        assert!(!x.couplings().is_empty(), "adjacent wires must couple");
        let c0 = x.couplings()[0];
        assert!(c0.cap > 0.0);
        assert_eq!(x.coupling_between(c0.a, c0.b), c0.cap);
        assert_eq!(x.coupling_between(c0.b, c0.a), c0.cap);
    }

    #[test]
    fn asymmetries_cover_pairs() {
        let (c, x) = routed_ota1();
        assert_eq!(x.asymmetries().len(), c.matched_net_pairs().len());
        // mirrored pairs routed by mirroring should match closely in R
        for &(na, nb) in c.symmetric_net_pairs() {
            let a = x
                .asymmetries()
                .iter()
                .find(|rec| rec.nets == (na, nb))
                .expect("asymmetry record");
            let ra = x.net(a.nets.0).resistance;
            assert!(
                a.delta_r <= 0.5 * ra.max(1.0),
                "pair {:?} grossly mismatched: ΔR={} vs R={}",
                a.nets,
                a.delta_r,
                ra
            );
        }
    }

    #[test]
    fn synthetic_known_values() {
        // one net: 10 µm of M1 + 1 via; another 10 µm of M1 20 tracks away
        let t = Technology::nm40();
        let c = benchmarks::ota1();
        let seg_a = Segment::new(Point3::new(0, 0, 0), Point3::new(10_000, 0, 0)).unwrap();
        let via_a = Segment::new(Point3::new(10_000, 0, 0), Point3::new(10_000, 0, 1)).unwrap();
        let seg_b = Segment::new(Point3::new(0, 140, 0), Point3::new(10_000, 140, 0)).unwrap();
        let layout = RoutedLayout {
            nets: vec![
                RoutedNet::from_segments(NetId::new(2), vec![seg_a, via_a]),
                RoutedNet::from_segments(NetId::new(3), vec![seg_b]),
            ],
            iterations: 1,
            conflicts: 0,
            runtime_s: 0.0,
        };
        let x = extract(&c, &t, &layout);
        let pa = x.net(NetId::new(2));
        let expected_r = t.wire_resistance(0, 10_000) + t.via_resistance();
        assert!((pa.resistance - expected_r).abs() < 1e-9);
        assert!((pa.cap_ground - t.wire_ground_cap(0, 10_000)).abs() < 1e-24);
        let cc = x.coupling_between(NetId::new(2), NetId::new(3));
        let expected_cc = t.coupling_cap(0, 10_000, 140);
        assert!((cc - expected_cc).abs() < 1e-24, "{cc} vs {expected_cc}");
        // unrouted nets report zeros
        assert_eq!(x.net(NetId::new(9)).resistance, 0.0);
    }

    #[test]
    fn effective_cap_includes_coupling() {
        let (_, x) = routed_ota1();
        for rec in x.nets() {
            if rec.wirelength > 0 {
                assert!(x.effective_cap(rec.net) >= rec.cap_ground);
            }
        }
    }

    #[test]
    fn worst_mismatch_bounded() {
        let (_, x) = routed_ota1();
        let m = x.worst_mismatch();
        assert!((0.0..=1.0).contains(&m), "mismatch ratio {m}");
    }

    #[test]
    fn coupling_requires_min_parallel_run() {
        // perpendicular wires never couple
        let t = Technology::nm40();
        let c = benchmarks::ota1();
        let h = Segment::new(Point3::new(0, 0, 0), Point3::new(10_000, 0, 0)).unwrap();
        let v = Segment::new(Point3::new(5_000, -5_000, 0), Point3::new(5_000, 5_000, 0)).unwrap();
        let layout = RoutedLayout {
            nets: vec![
                RoutedNet::from_segments(NetId::new(2), vec![h]),
                RoutedNet::from_segments(NetId::new(3), vec![v]),
            ],
            iterations: 1,
            conflicts: 0,
            runtime_s: 0.0,
        };
        let x = extract(&c, &t, &layout);
        assert_eq!(x.coupling_between(NetId::new(2), NetId::new(3)), 0.0);
    }

    #[test]
    fn coupling_decays_with_track_separation() {
        let t = Technology::nm40();
        let c = benchmarks::ota1();
        let mk = |sep: i64| {
            let a = Segment::new(Point3::new(0, 0, 0), Point3::new(10_000, 0, 0)).unwrap();
            let b = Segment::new(Point3::new(0, sep, 0), Point3::new(10_000, sep, 0)).unwrap();
            let layout = RoutedLayout {
                nets: vec![
                    RoutedNet::from_segments(NetId::new(2), vec![a]),
                    RoutedNet::from_segments(NetId::new(3), vec![b]),
                ],
                iterations: 1,
                conflicts: 0,
                runtime_s: 0.0,
            };
            extract(&c, &t, &layout).coupling_between(NetId::new(2), NetId::new(3))
        };
        let near = mk(140);
        let far = mk(420);
        assert!(near > far, "{near} vs {far}");
        assert!(far > 0.0);
    }

    #[test]
    fn via_only_net_has_via_resistance_only() {
        let t = Technology::nm40();
        let c = benchmarks::ota1();
        let via = Segment::new(Point3::new(0, 0, 0), Point3::new(0, 0, 1)).unwrap();
        let layout = RoutedLayout {
            nets: vec![RoutedNet::from_segments(NetId::new(2), vec![via])],
            iterations: 1,
            conflicts: 0,
            runtime_s: 0.0,
        };
        let x = extract(&c, &t, &layout);
        let rec = x.net(NetId::new(2));
        assert!((rec.resistance - t.via_resistance()).abs() < 1e-12);
        assert_eq!(rec.cap_ground, 0.0);
        assert_eq!(rec.wirelength, 0);
        assert_eq!(rec.vias, 1);
    }

    #[test]
    fn matched_but_unrouted_pairs_report_zero_asymmetry() {
        let t = Technology::nm40();
        let c = benchmarks::ota1();
        let layout = RoutedLayout {
            nets: vec![],
            iterations: 0,
            conflicts: 0,
            runtime_s: 0.0,
        };
        let x = extract(&c, &t, &layout);
        for a in x.asymmetries() {
            assert_eq!(a.delta_r, 0.0);
            assert_eq!(a.delta_c, 0.0);
        }
        assert_eq!(x.worst_mismatch(), 0.0);
    }

    #[test]
    fn longer_routes_mean_more_parasitics() {
        let t = Technology::nm40();
        let c = benchmarks::ota1();
        let mk = |len: i64| RoutedLayout {
            nets: vec![RoutedNet::from_segments(
                NetId::new(2),
                vec![Segment::new(Point3::new(0, 0, 0), Point3::new(len, 0, 0)).unwrap()],
            )],
            iterations: 1,
            conflicts: 0,
            runtime_s: 0.0,
        };
        let short = extract(&c, &t, &mk(1_000));
        let long = extract(&c, &t, &mk(50_000));
        assert!(long.net(NetId::new(2)).resistance > short.net(NetId::new(2)).resistance);
        assert!(long.net(NetId::new(2)).cap_ground > short.net(NetId::new(2)).cap_ground);
    }
}
