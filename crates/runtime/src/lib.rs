//! `afrt` — the AnalogFold runtime: a small, deterministic parallel
//! execution subsystem used by relaxation restarts, dataset generation,
//! and the benchmark drivers.
//!
//! # Design
//!
//! The central primitive is [`Runtime::par_map`] (and its seeded variant
//! [`Runtime::par_map_seeded`]): map a function over a slice of items on a
//! scoped worker pool and collect the results **by index**. Because
//!
//! 1. results land in a pre-sized output vector at their item's index, and
//! 2. any per-task randomness is derived only from `(root_seed, index)`
//!    via [`split_seed`] rather than from a shared sequential stream,
//!
//! the output is bit-identical regardless of worker count or scheduling
//! order. `threads = 1` and `threads = 64` produce the same bytes.
//!
//! Workers are plain `std::thread::scope` threads pulling task indices from
//! a shared queue, so closures may borrow non-`'static` data (graphs,
//! tensors, model weights) without `Arc`-wrapping the world. Each task runs
//! under `catch_unwind`: one panicking task never tears down the pool, and
//! the panic payload is reported in [`JobError::Panicked`]. Jobs can be
//! observed through a [`Progress`] handle and stopped early through a
//! [`CancelToken`].
//!
//! Thread-count resolution order: explicit builder value, then the
//! `AFRT_THREADS` environment variable, then `std::thread::available_parallelism`.

pub mod queue;

pub use queue::{BoundedQueue, PushError};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "AFRT_THREADS";

/// Splits a root seed into a stream-independent per-task seed.
///
/// Uses the SplitMix64 finalizer over `root_seed + (index + 1) * GOLDEN`,
/// the standard construction for deriving statistically independent seeds
/// from a single root. Crucially the result depends only on
/// `(root_seed, index)`, never on which worker thread evaluates the task or
/// in what order — this is what makes parallel jobs bit-reproducible.
#[inline]
#[must_use]
pub fn split_seed(root_seed: u64, index: u64) -> u64 {
    // Weyl increment (2^64 / phi), as in SplitMix64's gamma.
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = root_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Why a job failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum JobError {
    /// At least one task panicked; holds the first panic's message and the
    /// index of the task that raised it.
    Panicked { index: usize, message: String },
    /// The job was cancelled before all tasks completed.
    Cancelled { completed: usize, total: usize },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { index, message } => {
                write!(f, "task {index} panicked: {message}")
            }
            JobError::Cancelled { completed, total } => {
                write!(f, "job cancelled after {completed}/{total} tasks")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Cooperative cancellation token shared between a job and its observers.
///
/// Cloning is cheap; all clones observe the same flag. Workers check the
/// token between tasks, so cancellation stops *scheduling* promptly but
/// never interrupts a task mid-flight.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Live progress counters for a running job.
///
/// Handles are cheap to clone and can be polled from outside the job (e.g.
/// by a reporting thread) or inspected after completion.
#[derive(Clone, Debug)]
pub struct Progress {
    total: usize,
    completed: Arc<AtomicUsize>,
}

impl Progress {
    fn new(total: usize) -> Self {
        Self {
            total,
            completed: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Number of tasks in the job.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of tasks finished so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::SeqCst)
    }

    /// Completed fraction in `[0, 1]` (1.0 for empty jobs).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.completed() as f64 / self.total as f64
        }
    }
}

/// Per-job observation hooks, passed to the `*_observed` entry points.
pub struct JobHooks {
    /// Checked between tasks; when cancelled the remaining tasks are skipped
    /// and the job returns [`JobError::Cancelled`].
    pub cancel: CancelToken,
    /// Incremented as tasks finish.
    pub progress: Progress,
}

/// Index queue shared by the workers of one job.
///
/// A `Mutex<VecDeque>`-style channel is overkill here because tasks are
/// identified by dense indices; a single atomic cursor gives the same
/// work-stealing behavior with less contention.
struct TaskQueue {
    next: AtomicUsize,
    total: usize,
}

impl TaskQueue {
    fn pop(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    threads: Option<usize>,
}

impl RuntimeBuilder {
    /// Pins the worker count. `0` means "auto" (env var, then hardware).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Finalizes the runtime.
    #[must_use]
    pub fn build(self) -> Runtime {
        let threads = self
            .threads
            .or_else(threads_from_env)
            .unwrap_or_else(hardware_threads)
            .max(1);
        Runtime { threads }
    }
}

fn threads_from_env() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A configured worker pool. Cheap to construct; threads are scoped to each
/// job rather than kept alive between calls, which lets task closures
/// borrow stack data.
#[derive(Debug, Clone)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        RuntimeBuilder::default().build()
    }
}

impl Runtime {
    /// Builder entry point.
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Runtime with an explicit worker count (`0` = auto).
    #[must_use]
    pub fn with_threads(n: usize) -> Self {
        Self::builder().threads(n).build()
    }

    /// Resolved worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool; results are ordered by item index.
    ///
    /// # Errors
    /// [`JobError::Panicked`] if any task panicked (first panic by index wins).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, JobError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let hooks = JobHooks {
            cancel: CancelToken::new(),
            progress: Progress::new(items.len()),
        };
        self.par_map_observed(items, &hooks, f)
    }

    /// [`par_map`](Self::par_map) with a deterministic per-item seed derived
    /// from `root_seed` via [`split_seed`]. The contract: for a fixed
    /// `(items, root_seed, f)` the result is bit-identical for every thread
    /// count.
    ///
    /// # Errors
    /// [`JobError::Panicked`] if any task panicked.
    pub fn par_map_seeded<T, R, F>(
        &self,
        items: &[T],
        root_seed: u64,
        f: F,
    ) -> Result<Vec<R>, JobError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, u64) -> R + Sync,
    {
        self.par_map(items, |i, item| f(i, item, split_seed(root_seed, i as u64)))
    }

    /// Full-control variant: caller-supplied cancellation and progress.
    ///
    /// # Errors
    /// [`JobError::Panicked`] on task panic, [`JobError::Cancelled`] if the
    /// token fires before all tasks finish. On error, completed results are
    /// dropped.
    pub fn par_map_observed<T, R, F>(
        &self,
        items: &[T],
        hooks: &JobHooks,
        f: F,
    ) -> Result<Vec<R>, JobError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let total = items.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let queue = TaskQueue {
            next: AtomicUsize::new(0),
            total,
        };
        // One slot per item; workers fill disjoint slots so a Mutex per job
        // (not per slot) would serialize. Instead each completed result is
        // pushed with its index and sorted once at the end.
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(total));
        let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);
        let workers = self.threads.min(total);
        // Observability: workers inherit the submitting thread's span path,
        // and (only while recording is on) each task's queue-wait and
        // execute time land in the shared histograms. Wall clocks never
        // feed back into task results, so determinism is unaffected.
        let obs_on = af_obs::enabled();
        let parent = if obs_on {
            af_obs::current_path()
        } else {
            String::new()
        };
        let job_start = std::time::Instant::now();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(i) = queue.pop() {
                        if hooks.cancel.is_cancelled() {
                            break;
                        }
                        let exec_start = if obs_on {
                            let now = std::time::Instant::now();
                            af_obs::hist(
                                "afrt.queue_wait_us",
                                (now - job_start).as_secs_f64() * 1e6,
                            );
                            Some(now)
                        } else {
                            None
                        };
                        let outcome = af_obs::with_parent(&parent, || {
                            catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
                        });
                        if let Some(start) = exec_start {
                            af_obs::hist("afrt.task_exec_us", start.elapsed().as_secs_f64() * 1e6);
                        }
                        match outcome {
                            Ok(r) => {
                                results.lock().unwrap().push((i, r));
                                hooks.progress.completed.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                let mut slot = first_panic.lock().unwrap();
                                match slot.as_ref() {
                                    Some((j, _)) if *j <= i => {}
                                    _ => *slot = Some((i, msg)),
                                }
                            }
                        }
                    }
                });
            }
        });

        if let Some((index, message)) = first_panic.into_inner().unwrap() {
            return Err(JobError::Panicked { index, message });
        }
        let mut collected = results.into_inner().unwrap();
        if collected.len() < total {
            return Err(JobError::Cancelled {
                completed: collected.len(),
                total,
            });
        }
        collected.sort_unstable_by_key(|(i, _)| *i);
        Ok(collected.into_iter().map(|(_, r)| r).collect())
    }

    /// Runs independent closures concurrently, returning results in call
    /// order. Convenience wrapper for heterogeneous fan-out (e.g. bench
    /// drivers running one closure per design).
    ///
    /// # Errors
    /// [`JobError::Panicked`] if any closure panicked.
    pub fn par_run<R, F>(&self, jobs: Vec<F>) -> Result<Vec<R>, JobError>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        self.par_map(&slots, |_, slot| {
            let f = slot.lock().unwrap().take().expect("job taken twice");
            f()
        })
    }
}

/// Best-effort extraction of a panic payload's message (the `&str` and
/// `String` payloads `panic!` produces). Shared with `af-fault`'s
/// supervisor so restart logs carry the original panic text.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Measures wall-clock seconds of `f`, returning `(result, seconds)`.
/// Used by bench drivers to report parallel-vs-sequential speedup.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Serializes tests that install the process-global `af_obs` state.
#[cfg(test)]
pub(crate) static OBS_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_stable() {
        // Pinned values: changing the splitter silently breaks every
        // recorded dataset/relaxation reproduction, so lock them down.
        assert_eq!(split_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(split_seed(7, 0), split_seed(7, 0));
        assert_ne!(split_seed(7, 0), split_seed(7, 1));
        assert_ne!(split_seed(7, 0), split_seed(8, 0));
    }

    #[test]
    fn split_seed_has_no_short_cycles() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(split_seed(42, i)), "collision at index {i}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let rt = Runtime::with_threads(8);
        let items: Vec<u64> = (0..100).collect();
        let out = rt.par_map(&items, |_, &x| x * 2).unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_seeded_is_thread_count_invariant() {
        let items: Vec<u32> = (0..64).collect();
        let run = |threads| {
            Runtime::with_threads(threads)
                .par_map_seeded(&items, 0xDEAD_BEEF, |i, &item, seed| {
                    (i as u64) ^ u64::from(item) ^ seed
                })
                .unwrap()
        };
        let one = run(1);
        for threads in [2, 4, 8, 16] {
            assert_eq!(run(threads), one, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn panic_in_one_task_is_isolated_and_reported() {
        let rt = Runtime::with_threads(4);
        let items: Vec<usize> = (0..32).collect();
        let err = rt
            .par_map(&items, |_, &x| {
                assert!(x != 13, "unlucky task");
                x
            })
            .unwrap_err();
        match err {
            JobError::Panicked { index, message } => {
                assert_eq!(index, 13);
                assert!(message.contains("unlucky task"), "message: {message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn earliest_panic_index_wins() {
        let rt = Runtime::with_threads(8);
        let items: Vec<usize> = (0..64).collect();
        let err = rt
            .par_map(&items, |_, &x| {
                assert!(x % 10 != 3, "boom at {x}");
                x
            })
            .unwrap_err();
        match err {
            JobError::Panicked { index, .. } => assert_eq!(index, 3),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_scheduling() {
        let rt = Runtime::with_threads(2);
        let items: Vec<usize> = (0..1000).collect();
        let hooks = JobHooks {
            cancel: CancelToken::new(),
            progress: Progress::new(items.len()),
        };
        let cancel = hooks.cancel.clone();
        let counter = AtomicUsize::new(0);
        let err = rt
            .par_map_observed(&items, &hooks, |_, &x| {
                if counter.fetch_add(1, Ordering::SeqCst) == 5 {
                    cancel.cancel();
                }
                x
            })
            .unwrap_err();
        match err {
            JobError::Cancelled { completed, total } => {
                assert_eq!(total, 1000);
                assert!(completed < 1000, "job should not have run to completion");
                assert!(hooks.progress.completed() == completed);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(hooks.cancel.is_cancelled());
    }

    #[test]
    fn progress_reaches_total_on_success() {
        let rt = Runtime::with_threads(3);
        let items: Vec<usize> = (0..50).collect();
        let hooks = JobHooks {
            cancel: CancelToken::new(),
            progress: Progress::new(items.len()),
        };
        rt.par_map_observed(&items, &hooks, |_, &x| x).unwrap();
        assert_eq!(hooks.progress.completed(), 50);
        assert!((hooks.progress.fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn par_run_returns_in_call_order() {
        let rt = Runtime::with_threads(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = rt.par_run(jobs).unwrap();
        assert_eq!(out, (0..16usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_is_ok() {
        let rt = Runtime::with_threads(4);
        let items: Vec<u8> = Vec::new();
        assert!(rt.par_map(&items, |_, &x| x).unwrap().is_empty());
    }

    #[test]
    fn pool_tasks_inherit_span_context_and_record_timings() {
        let _l = crate::OBS_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let sink = Arc::new(af_obs::MemorySink::new());
        let guard = af_obs::install(sink.clone());
        {
            let _job = af_obs::span!("job");
            let rt = Runtime::with_threads(4);
            let items: Vec<u32> = (0..16).collect();
            rt.par_map(&items, |i, _| {
                let _t = af_obs::span!("task", i);
                af_obs::counter("afrt.test_tasks", 1);
            })
            .unwrap();
        }
        drop(guard);
        let events = sink.events();
        let task_spans = events
            .iter()
            .filter(|e| e.name().starts_with("job/task#"))
            .count();
        assert_eq!(task_spans, 16, "workers inherited the submitter's span");
        assert!(events.iter().any(
            |e| matches!(e, af_obs::Event::Counter { name, value: 16, .. } if name == "afrt.test_tasks")
        ));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, af_obs::Event::Histogram { name, .. } if name == "afrt.queue_wait_us")),
            "queue wait histogram flushed"
        );
        assert!(events.iter().any(
            |e| matches!(e, af_obs::Event::Histogram { name, .. } if name == "afrt.task_exec_us")
        ));
    }

    #[test]
    fn builder_zero_means_auto() {
        // Can't assert the exact count (env/hardware dependent) but it must
        // be at least one.
        assert!(Runtime::with_threads(0).threads() >= 1);
        assert_eq!(Runtime::with_threads(5).threads(), 5);
    }
}
