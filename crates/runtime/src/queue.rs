//! A bounded multi-producer/multi-consumer queue with observability hooks.
//!
//! This is the backpressure primitive behind `af-serve`: connection,
//! batch, and job queues are all `BoundedQueue`s, so "queue full" is an
//! immediate, non-blocking signal the server can translate into `429
//! Too Many Requests` instead of letting latency grow without bound.
//!
//! Every push/pop publishes the current depth as an `af_obs` gauge named
//! `{name}.depth`, and rejected pushes bump the `{name}.rejected` counter,
//! so saturation is visible in `/metrics` without extra plumbing.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct Shared<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load.
    Full,
    /// The queue has been closed; no further items are accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

/// A bounded FIFO queue for handing work between threads.
///
/// Producers use the non-blocking [`try_push`](Self::try_push); consumers
/// block on [`pop`](Self::pop) (or poll with
/// [`pop_timeout`](Self::pop_timeout)). [`close`](Self::close) wakes every
/// consumer; pops drain the remaining items first and only then return
/// `None`, which is what lets a server finish in-flight work during
/// graceful shutdown.
pub struct BoundedQueue<T> {
    name: String,
    capacity: usize,
    shared: Mutex<Shared<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items. `name` prefixes
    /// the published obs metrics (`{name}.depth`, `{name}.rejected`).
    #[must_use]
    pub fn new(name: &str, capacity: usize) -> Self {
        Self {
            name: name.to_string(),
            capacity: capacity.max(1),
            shared: Mutex::new(Shared {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Shared<T>> {
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn publish_depth(&self, depth: usize) {
        if af_obs::enabled() {
            af_obs::gauge(&format!("{}.depth", self.name), depth as f64);
        }
    }

    /// The queue's configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Whether [`close`](Self::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the item is returned implicitly by
    /// load-shedding callers constructing their own response) and
    /// [`PushError::Closed`] after `close`.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            drop(s);
            if af_obs::enabled() {
                af_obs::counter(&format!("{}.rejected", self.name), 1);
            }
            return Err(PushError::Full);
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.publish_depth(depth);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking until one is available. Returns
    /// `None` only once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                let depth = s.items.len();
                drop(s);
                self.publish_depth(depth);
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self
                .ready
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Like [`pop`](Self::pop) but gives up after `timeout`, returning
    /// `None` on timeout as well as on closed-and-drained. Callers that
    /// must distinguish the two can check [`is_closed`](Self::is_closed).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                let depth = s.items.len();
                drop(s);
                self.publish_depth(depth);
                return Some(item);
            }
            if s.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s = guard;
        }
    }

    /// Closes the queue: future pushes fail, blocked pops wake, and pops
    /// keep draining queued items before returning `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new("t", 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new("t", 8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_timeout_expires_when_empty() {
        let q: BoundedQueue<u8> = BoundedQueue::new("t", 1);
        let start = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(20)), None);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert!(!q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new("t", 1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything() {
        let q: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new("t", 64));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..50 {
                        let v = p * 50 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                });
            }
        });
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn publishes_depth_gauge_and_rejected_counter() {
        let _l = crate::OBS_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let sink = Arc::new(af_obs::MemorySink::new());
        let guard = af_obs::install(sink.clone());
        let q = BoundedQueue::new("afrt.testq", 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        drop(guard);
        let events = sink.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, af_obs::Event::Gauge { name, .. } if name == "afrt.testq.depth")));
        assert!(events.iter().any(
            |e| matches!(e, af_obs::Event::Counter { name, value: 1, .. } if name == "afrt.testq.rejected")
        ));
    }
}
