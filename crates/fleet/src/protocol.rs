//! Wire types of the fleet protocol (all JSON over the std-only HTTP
//! stack).
//!
//! The protocol is four verbs on the coordinator:
//!
//! | endpoint            | method | body                 | reply                |
//! |---------------------|--------|----------------------|----------------------|
//! | `/fleet/register`   | POST   | [`RegisterRequest`]  | [`RegisterResponse`] |
//! | `/fleet/heartbeat`  | POST   | [`HeartbeatRequest`] | [`HeartbeatResponse`]|
//! | `/fleet/workers`    | GET    | —                    | [`WorkersResponse`]  |
//! | `/fleet/lease`      | POST   | [`LeaseRequest`]     | [`LeaseResponse`]    |
//! | `/fleet/complete`   | POST   | [`CompleteRequest`]  | [`CompleteResponse`] |
//!
//! plus `/fleet/status`, `/healthz`, and `/metrics` for observers. All
//! state lives on the coordinator; workers are restartable at any moment
//! and re-derive everything from (re-)registration and their next lease.

use serde::{Deserialize, Serialize};

/// Protocol revision; bumped on breaking wire changes. A coordinator
/// rejects registrations from a different revision rather than guessing.
pub const PROTOCOL_VERSION: u64 = 1;

/// What a worker can do for the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerCaps {
    /// Answers `/v1/*` serving traffic (has a resident model).
    pub serve: bool,
    /// Leases dataset-generation shards.
    pub gen: bool,
}

/// `POST /fleet/register` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterRequest {
    /// Worker id, unique within the fleet (the rendezvous-ring member id).
    pub id: String,
    /// `host:port` of the worker's serve endpoint; empty for gen-only
    /// workers.
    pub addr: String,
    /// Capability report.
    pub caps: WorkerCaps,
    /// Content hash of the worker's resident model (32 hex chars; empty
    /// without a model). The coordinator flags version skew against the
    /// first registrant's hash.
    pub model_hash: String,
    /// Expected guidance length of the worker's model (0 without one).
    pub guidance_len: u64,
    /// [`PROTOCOL_VERSION`] the worker speaks.
    pub protocol: u64,
}

/// `POST /fleet/register` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterResponse {
    /// Whether the registration was accepted.
    pub ok: bool,
    /// Lease duration: a worker missing heartbeats for this long is
    /// considered dead (its serve traffic re-routes, its gen shard
    /// re-leases).
    pub lease_ms: u64,
    /// Whether this worker's model hash differs from the fleet's canonical
    /// hash (accepted, but fronts exclude skewed workers from the ring).
    pub skew: bool,
    /// Human-readable rejection reason when `ok` is false.
    pub message: String,
}

/// One pushed metric sample (a worker-local af-obs counter or gauge).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricSample {
    /// af-obs metric name on the worker (e.g. `serve.requests`).
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// `POST /fleet/heartbeat` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatRequest {
    /// Registered worker id.
    pub id: String,
    /// Load report: requests served per second over the last heartbeat
    /// interval (0.0 when idle or not serving).
    pub load: f64,
    /// Worker-local metrics for the coordinator's aggregated `/metrics`
    /// (re-exported there as `fleet_worker_<name>{worker="<id>"}`).
    pub metrics: Vec<MetricSample>,
    /// Gen shard the worker is still computing, if any — renews that
    /// shard's lease along with the membership lease.
    pub active_shard: Option<u64>,
    /// The worker's *current* resident model hash. Unlike the registration
    /// snapshot, this tracks hot-swaps, so a promotion propagates through
    /// ordinary heartbeats and skew converges instead of persisting until
    /// re-registration. `None` from workers predating this field (additive
    /// JSON: the derive reads a missing field as `None`).
    pub model_hash: Option<String>,
}

/// `POST /fleet/heartbeat` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatResponse {
    /// Whether the heartbeat was accepted.
    pub ok: bool,
    /// Whether the coordinator knows this worker. `false` after a
    /// coordinator restart — the worker must re-register.
    pub known: bool,
    /// Current lease duration (may change across coordinator restarts).
    pub lease_ms: u64,
    /// The fleet's canonical model hash, echoed on every heartbeat. A
    /// worker whose resident hash differs should converge (e.g. load the
    /// canonical model from a shared registry and hot-swap). `None` from
    /// coordinators predating this field.
    pub model_hash: Option<String>,
}

/// `POST /fleet/promote` body: moves the fleet's canonical model hash, so
/// skew detection flips — workers still on the old model become the skewed
/// ones and converge via the heartbeat echo.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetPromoteRequest {
    /// The new canonical model hash (32 hex chars).
    pub model_hash: String,
}

/// `POST /fleet/promote` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetPromoteResponse {
    /// Whether the promotion was accepted.
    pub ok: bool,
    /// The canonical hash after the call.
    pub model_hash: String,
    /// How many live workers currently match the new canonical hash.
    pub matching_workers: u64,
}

/// One worker as seen by the coordinator (`GET /fleet/workers`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerView {
    /// Worker id.
    pub id: String,
    /// Serve endpoint (`host:port`), empty for gen-only workers.
    pub addr: String,
    /// Capabilities.
    pub caps: WorkerCaps,
    /// Model content hash.
    pub model_hash: String,
    /// Expected guidance length.
    pub guidance_len: u64,
    /// Last reported load (requests/s).
    pub load: f64,
    /// Milliseconds since the last heartbeat.
    pub since_heartbeat_ms: u64,
    /// Whether this worker's model hash differs from the fleet canonical.
    pub skew: bool,
}

/// `GET /fleet/workers` reply: the *live* members only (lease not
/// expired), which is exactly the set a front should build its ring from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkersResponse {
    /// Live workers.
    pub workers: Vec<WorkerView>,
    /// The fleet's canonical model hash (first registrant wins; empty
    /// until a model-bearing worker registers).
    pub model_hash: String,
}

/// The dataset-generation job spec a coordinator hands to gen workers.
/// Everything a worker needs to compute any shard bit-identically:
/// the design coordinates plus the full [`analogfold::DatasetConfig`]
/// surface that affects sample values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenSpec {
    /// Benchmark circuit name (e.g. `OTA1`).
    pub bench: String,
    /// Placement variant label (`A`..`D`).
    pub variant: String,
    /// Total samples in the dataset.
    pub samples: u64,
    /// Samples per shard (the lease granule).
    pub shard_size: u64,
    /// Sampling seed — with `samples`, fully determines every guidance
    /// vector.
    pub seed: u64,
    /// Guidance sampling lower bound (log-uniform).
    pub c_low: f64,
    /// Guidance sampling upper bound.
    pub c_high: f64,
    /// Shared checkpoint directory all workers write shards into (must be
    /// reachable from every worker — same box or shared filesystem).
    pub checkpoint: String,
    /// Worker threads per shard evaluation (0 = auto). Never affects
    /// results, only wall-clock.
    pub threads: u64,
    /// Tier-C memo size in MiB (0 disables); memo hits are bit-identical
    /// to recomputation.
    pub cache_mb: u64,
}

/// `POST /fleet/lease` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeaseRequest {
    /// Registered worker id asking for work.
    pub id: String,
}

/// `POST /fleet/lease` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeaseResponse {
    /// Shard index granted to this worker, if any work is available.
    pub shard: Option<u64>,
    /// The job spec (present whenever a gen job is configured).
    pub spec: Option<GenSpec>,
    /// Whether the whole job is finished (workers should stop polling).
    pub done: bool,
    /// Total shard count of the job (0 without a job).
    pub total_shards: u64,
    /// Shards not yet completed (including leased ones).
    pub remaining: u64,
}

/// `POST /fleet/complete` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompleteRequest {
    /// Worker id reporting.
    pub id: String,
    /// Completed shard index.
    pub shard: u64,
    /// Whether the shard was computed and persisted successfully. `false`
    /// releases the lease for another worker instead.
    pub ok: bool,
    /// Failure description when `ok` is false.
    pub error: Option<String>,
}

/// `POST /fleet/complete` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompleteResponse {
    /// Whether the completion was recorded (false for unknown shard/worker).
    pub ok: bool,
}

/// Gen-job progress (`GET /fleet/status`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenStatus {
    /// Total shards.
    pub total: u64,
    /// Completed shards.
    pub done: u64,
    /// Currently leased shards.
    pub leased: u64,
    /// Unleased, uncompleted shards.
    pub pending: u64,
    /// Whether every shard is complete.
    pub finished: bool,
}

/// `GET /fleet/status` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusResponse {
    /// Coordinator liveness (always true when it can answer).
    pub ok: bool,
    /// Monotonic coordinator uptime.
    pub uptime_ms: u64,
    /// Live worker count.
    pub workers_alive: u64,
    /// All-time registration count.
    pub workers_registered: u64,
    /// Gen-job progress, when one is configured.
    pub gen: Option<GenStatus>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_types_round_trip() {
        let reg = RegisterRequest {
            id: "w1".into(),
            addr: "127.0.0.1:8401".into(),
            caps: WorkerCaps {
                serve: true,
                gen: true,
            },
            model_hash: "ab".repeat(16),
            guidance_len: 42,
            protocol: PROTOCOL_VERSION,
        };
        let json = serde_json::to_string(&reg).unwrap();
        let back: RegisterRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "w1");
        assert_eq!(back.guidance_len, 42);
        assert!(back.caps.serve && back.caps.gen);

        let lease = LeaseResponse {
            shard: Some(3),
            spec: Some(GenSpec {
                bench: "OTA1".into(),
                variant: "A".into(),
                samples: 12,
                shard_size: 2,
                seed: 5,
                c_low: 0.4,
                c_high: 2.2,
                checkpoint: "/tmp/ckpt".into(),
                threads: 0,
                cache_mb: 16,
            }),
            done: false,
            total_shards: 6,
            remaining: 4,
        };
        let json = serde_json::to_string(&lease).unwrap();
        let back: LeaseResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard, Some(3));
        assert_eq!(back.spec.as_ref().unwrap().samples, 12);
        assert!(!back.done);
    }
}
