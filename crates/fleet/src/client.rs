//! HTTP/1.1 client side of the fleet: response parsing, keep-alive
//! connections, JSON call helpers, and the worker's background
//! registration/heartbeat agent.
//!
//! af-serve's `http` module only parses *requests* (it is a server); this
//! module adds the mirror-image response parser over the same std-only
//! `BufRead` discipline, with the same hard limits.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use af_serve::http::{MAX_BODY, MAX_HEADERS, MAX_HEADER_LINE};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::protocol::{
    HeartbeatRequest, HeartbeatResponse, MetricSample, RegisterRequest, RegisterResponse,
    WorkerCaps, PROTOCOL_VERSION,
};
use crate::FleetError;

/// Default I/O timeout on fleet-internal calls.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct RawResponse {
    /// Status code.
    pub status: u16,
    /// Headers as (lower-cased name, trimmed value) pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length`; empty without one).
    pub body: Vec<u8>,
    /// Whether the server asked to close the connection.
    pub close: bool,
}

impl RawResponse {
    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Deserializes the JSON body.
    ///
    /// # Errors
    ///
    /// Non-UTF-8 or non-JSON bodies.
    pub fn json<T: DeserializeOwned>(&self) -> Result<T, FleetError> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| FleetError::Protocol("response body is not utf-8".to_string()))?;
        serde_json::from_str(text)
            .map_err(|e| FleetError::Protocol(format!("invalid json response: {e}")))
    }
}

fn read_line(reader: &mut impl BufRead, what: &str) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("eof in {what}"),
            ));
        }
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("non-utf8 {what}"))
            });
        }
        if buf.len() >= MAX_HEADER_LINE {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{what} too long"),
            ));
        }
        buf.push(byte[0]);
    }
}

/// Parses one HTTP/1.1 response from `reader` (status line, headers,
/// `Content-Length`-framed body). Chunked transfer encoding is not
/// supported — no server in this workspace emits it.
///
/// # Errors
///
/// Transport failures, malformed framing, and over-limit messages, all as
/// `io::Error` (a client treats every parse failure as a dead connection).
pub fn read_response(reader: &mut impl BufRead) -> std::io::Result<RawResponse> {
    let status_line = read_line(reader, "status line")?;
    let mut parts = status_line.split(' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad http version {version:?}"),
        ));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|s| (100..=599).contains(s))
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status code"))?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let line = read_line(reader, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("header without colon: {line:?}"),
            ));
        };
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
            })?;
        }
        if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(RawResponse {
        status,
        headers,
        body,
        close,
    })
}

/// A keep-alive HTTP/1.1 client connection.
pub struct HttpConn {
    addr: String,
    reader: BufReader<TcpStream>,
}

impl HttpConn {
    /// Connects to `addr` (`host:port`) with [`IO_TIMEOUT`] on reads and
    /// writes, TCP_NODELAY on (small JSON round trips must not wait out
    /// Nagle + delayed ACK).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        Ok(Self {
            addr: addr.to_string(),
            reader: BufReader::new(stream),
        })
    }

    /// The peer address this connection was opened to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads the response. `extra_headers` are
    /// appended verbatim; `content-length` and `host` are always set.
    ///
    /// # Errors
    ///
    /// Transport or framing failures — the connection should be dropped.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(String, String)],
        body: &[u8],
    ) -> std::io::Result<RawResponse> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n",
            self.addr,
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(&mut self.reader)
    }
}

/// One-shot JSON POST on a fresh connection.
///
/// # Errors
///
/// Transport failures, non-2xx statuses, and undecodable bodies.
pub fn post_json<Req: Serialize, Resp: DeserializeOwned>(
    addr: &str,
    path: &str,
    req: &Req,
) -> Result<Resp, FleetError> {
    let body = serde_json::to_string(req)
        .map_err(|e| FleetError::Protocol(format!("encode {path}: {e}")))?;
    let mut conn = HttpConn::connect(addr)?;
    let resp = conn.call("POST", path, &[], body.as_bytes())?;
    if !(200..300).contains(&resp.status) {
        return Err(FleetError::Status(
            resp.status,
            String::from_utf8_lossy(&resp.body).into_owned(),
        ));
    }
    resp.json()
}

/// One-shot JSON GET on a fresh connection.
///
/// # Errors
///
/// Transport failures, non-2xx statuses, and undecodable bodies.
pub fn get_json<Resp: DeserializeOwned>(addr: &str, path: &str) -> Result<Resp, FleetError> {
    let mut conn = HttpConn::connect(addr)?;
    let resp = conn.call("GET", path, &[], b"")?;
    if !(200..300).contains(&resp.status) {
        return Err(FleetError::Status(
            resp.status,
            String::from_utf8_lossy(&resp.body).into_owned(),
        ));
    }
    resp.json()
}

/// What the [`WorkerAgent`] announces about its worker.
#[derive(Debug, Clone)]
pub struct WorkerIdentity {
    /// Fleet-unique worker id.
    pub id: String,
    /// Serve endpoint (`host:port`), empty for gen-only workers.
    pub addr: String,
    /// Capabilities.
    pub caps: WorkerCaps,
    /// Model content hash (empty without a model).
    pub model_hash: String,
    /// Expected guidance length (0 without a model).
    pub guidance_len: u64,
}

/// Shared closure returning the live resident model hash (see
/// [`ModelHooks::resident_hash`]).
pub type ResidentHashFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Shared closure invoked with the canonical hash on a promotion signal
/// (see [`ModelHooks::on_promote`]).
pub type PromoteFn = Arc<dyn Fn(&str) + Send + Sync>;

/// Callbacks linking a [`WorkerAgent`] to its model runtime, so fleet-wide
/// promotions propagate through ordinary heartbeats.
#[derive(Clone, Default)]
pub struct ModelHooks {
    /// Returns the worker's *current* resident model hash. Unlike the
    /// static [`WorkerIdentity::model_hash`] snapshot, this tracks
    /// hot-swaps — each heartbeat reports the live value, so the
    /// coordinator's skew view converges after a local promotion.
    pub resident_hash: Option<ResidentHashFn>,
    /// Invoked (off the serving path, on the agent thread) when a
    /// heartbeat echoes a canonical hash that differs from the resident
    /// one. The callback should converge — typically load that model from
    /// the shared registry and hot-swap the server slot — and may fail
    /// silently; the agent re-signals on every subsequent heartbeat until
    /// the hashes match.
    pub on_promote: Option<PromoteFn>,
}

impl std::fmt::Debug for ModelHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHooks")
            .field("resident_hash", &self.resident_hash.is_some())
            .field("on_promote", &self.on_promote.is_some())
            .finish()
    }
}

/// Background thread keeping one worker registered and heartbeating.
///
/// Registration retries until the coordinator answers, then heartbeats at
/// a third of the granted lease. An `unknown` heartbeat reply (coordinator
/// restarted) triggers transparent re-registration. The load figure is
/// requests/s computed from the worker's own `serve.requests` counter
/// between heartbeats; a small metric snapshot rides along for the
/// coordinator's aggregated `/metrics`.
pub struct WorkerAgent {
    stop: Arc<AtomicBool>,
    active_shard: Arc<AtomicU64>,
    thread: Option<thread::JoinHandle<()>>,
}

/// Sentinel for "no active gen shard" in the shared atomic.
const NO_SHARD: u64 = u64::MAX;

/// Worker-local af-obs counters pushed with each heartbeat.
const PUSHED_COUNTERS: [&str; 3] = ["serve.requests", "cache.serve.hits", "cache.serve.misses"];

fn counter_value(name: &str) -> f64 {
    af_obs::with_registry(|r| {
        r.counter_snapshot()
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v as f64)
    })
    .unwrap_or(0.0)
}

impl WorkerAgent {
    /// Starts the agent. Returns immediately; registration happens on the
    /// background thread so a worker can come up before its coordinator.
    #[must_use]
    pub fn start(coordinator: &str, identity: WorkerIdentity) -> Self {
        Self::start_with_hooks(coordinator, identity, ModelHooks::default())
    }

    /// [`start`](WorkerAgent::start) plus [`ModelHooks`], for workers that
    /// can hot-swap their resident model and want fleet promotions to
    /// reach them through heartbeats.
    #[must_use]
    pub fn start_with_hooks(
        coordinator: &str,
        identity: WorkerIdentity,
        hooks: ModelHooks,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let active_shard = Arc::new(AtomicU64::new(NO_SHARD));
        let coordinator = coordinator.to_string();
        let thread = {
            let stop = Arc::clone(&stop);
            let active_shard = Arc::clone(&active_shard);
            thread::Builder::new()
                .name(format!("fleet-agent-{}", identity.id))
                .spawn(move || agent_loop(&coordinator, &identity, &hooks, &stop, &active_shard))
                .expect("spawn fleet agent")
        };
        Self {
            stop,
            active_shard,
            thread: Some(thread),
        }
    }

    /// Marks `shard` as this worker's active gen lease (renewed with every
    /// heartbeat), or clears it with `None`.
    pub fn set_active_shard(&self, shard: Option<u64>) {
        self.active_shard
            .store(shard.unwrap_or(NO_SHARD), Ordering::Relaxed);
    }

    /// Stops heartbeating and joins the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerAgent {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn register_until_accepted(
    coordinator: &str,
    identity: &WorkerIdentity,
    stop: &AtomicBool,
) -> Option<u64> {
    let req = RegisterRequest {
        id: identity.id.clone(),
        addr: identity.addr.clone(),
        caps: identity.caps,
        model_hash: identity.model_hash.clone(),
        guidance_len: identity.guidance_len,
        protocol: PROTOCOL_VERSION,
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            return None;
        }
        match post_json::<_, RegisterResponse>(coordinator, "/fleet/register", &req) {
            Ok(resp) if resp.ok => {
                af_obs::counter("fleet.agent.registered", 1);
                if resp.skew {
                    af_obs::warn(&format!(
                        "worker {} registered with model-hash skew: fronts will route around it",
                        identity.id
                    ));
                }
                return Some(resp.lease_ms.max(100));
            }
            Ok(resp) => {
                // A semantic rejection (protocol mismatch, bad id) will
                // not fix itself by retrying; give up loudly.
                af_obs::warn(&format!(
                    "worker {} registration rejected: {}",
                    identity.id, resp.message
                ));
                return None;
            }
            Err(_) => {
                af_obs::counter("fleet.agent.register_retries", 1);
                thread::sleep(Duration::from_millis(200));
            }
        }
    }
}

fn agent_loop(
    coordinator: &str,
    identity: &WorkerIdentity,
    hooks: &ModelHooks,
    stop: &AtomicBool,
    active_shard: &AtomicU64,
) {
    let Some(mut lease_ms) = register_until_accepted(coordinator, identity, stop) else {
        return;
    };
    let mut last_requests = counter_value("serve.requests");
    loop {
        // Heartbeat at a third of the lease so two misses still survive.
        let interval = Duration::from_millis((lease_ms / 3).max(50));
        thread::sleep(interval);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let requests = counter_value("serve.requests");
        let load = (requests - last_requests).max(0.0) / interval.as_secs_f64();
        last_requests = requests;
        let shard = active_shard.load(Ordering::Relaxed);
        let resident = hooks
            .resident_hash
            .as_ref()
            .map_or_else(|| identity.model_hash.clone(), |f| f());
        let req = HeartbeatRequest {
            id: identity.id.clone(),
            load,
            metrics: PUSHED_COUNTERS
                .iter()
                .map(|name| MetricSample {
                    name: (*name).to_string(),
                    value: counter_value(name),
                })
                .collect(),
            active_shard: (shard != NO_SHARD).then_some(shard),
            model_hash: (!resident.is_empty()).then(|| resident.clone()),
        };
        match post_json::<_, HeartbeatResponse>(coordinator, "/fleet/heartbeat", &req) {
            Ok(resp) if resp.known => {
                lease_ms = resp.lease_ms.max(100);
                if let (Some(canonical), Some(promote)) = (&resp.model_hash, &hooks.on_promote) {
                    if !canonical.is_empty() && !resident.is_empty() && *canonical != resident {
                        af_obs::counter("fleet.agent.promote_signals", 1);
                        promote(canonical);
                    }
                }
            }
            Ok(_) => {
                // Coordinator restarted and lost us: re-register.
                af_obs::counter("fleet.agent.reregistrations", 1);
                match register_until_accepted(coordinator, identity, stop) {
                    Some(l) => lease_ms = l,
                    None => return,
                }
            }
            Err(_) => {
                af_obs::counter("fleet.agent.heartbeat_failures", 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> std::io::Result<RawResponse> {
        read_response(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_response_with_headers_and_body() {
        let resp = parse(
            b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\nx-cache: hit\r\ncontent-length: 11\r\n\r\n{\"ok\":true}",
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("hit"));
        assert_eq!(resp.body, b"{\"ok\":true}");
        assert!(!resp.close);
        #[derive(serde::Deserialize)]
        struct Ok_ {
            ok: bool,
        }
        assert!(resp.json::<Ok_>().unwrap().ok);
    }

    #[test]
    fn detects_connection_close_and_empty_body() {
        let resp = parse(b"HTTP/1.1 503 Service Unavailable\r\nconnection: close\r\n\r\n").unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp.close);
        assert!(resp.body.is_empty());
    }

    #[test]
    fn rejects_malformed_responses() {
        for raw in [
            b"".as_slice(),
            b"NOTHTTP 200 OK\r\n\r\n",
            b"HTTP/1.1 notanumber OK\r\n\r\n",
            b"HTTP/1.1 999999 ???\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nnocolon\r\n\r\n",
            b"HTTP/1.1 200 OK\r\ncontent-length: nan\r\n\r\n",
            b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nshort",
        ] {
            assert!(parse(raw).is_err(), "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn roundtrips_serve_response_writer() {
        // The serve Response writer and this parser are the two halves of
        // the fleet's internal hop; pin their compatibility.
        let mut wire = Vec::new();
        af_serve::http::Response::json(202, "{\"id\":7}".to_string())
            .with_header("x-fleet-worker", "w1".to_string())
            .write_to(&mut wire)
            .unwrap();
        let resp = parse(&wire).unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.header("x-fleet-worker"), Some("w1"));
        assert_eq!(resp.body, b"{\"id\":7}");
    }
}
