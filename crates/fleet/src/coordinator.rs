//! The coordinator process: worker registry, gen-job lease desk, and
//! fleet-wide metrics aggregation, served over the same std-only HTTP
//! stack as af-serve.
//!
//! The coordinator is deliberately boring: all fleet state fits in two
//! mutexes (registry, lease table), every decision is a pure function of
//! that state plus a monotonic clock, and nothing it stores is
//! irreplaceable — workers re-register after a coordinator restart, and
//! the lease table rebuilds from a checkpoint-directory scan. Traffic is
//! thread-per-connection: coordinator load is a handful of workers and
//! fronts heartbeating, not the serving hot path.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use af_serve::http::{read_request, ParseError, Request, Response};
use analogfold::{shard_count, shard_is_complete, SampleRecord, ShardStore};

use crate::gen::{spec_config, spec_design};
use crate::leases::LeaseTable;
use crate::protocol::{
    CompleteRequest, CompleteResponse, FleetPromoteRequest, FleetPromoteResponse, GenSpec,
    GenStatus, HeartbeatRequest, LeaseRequest, LeaseResponse, RegisterRequest, StatusResponse,
};
use crate::registry::Registry;
use crate::FleetError;

/// Coordinator settings.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address (`host:port`; port 0 for ephemeral).
    pub addr: String,
    /// Worker lease duration (0 = default).
    pub lease_ms: u64,
    /// Dataset-generation job to hand out, if any.
    pub gen: Option<GenSpec>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            lease_ms: 0,
            gen: None,
        }
    }
}

struct GenJob {
    spec: GenSpec,
    leases: Mutex<LeaseTable>,
}

struct Shared {
    registry: Mutex<Registry>,
    gen: Option<GenJob>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    started: Instant,
}

/// Coordinator constructor; see [`Coordinator::bind`].
pub struct Coordinator;

/// A running coordinator.
pub struct CoordinatorHandle {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the coordinator. When `cfg.gen` is set, the checkpoint
    /// directory is scanned and already-complete shards are pre-marked
    /// done, so an interrupted distributed run resumes where it stopped.
    ///
    /// # Errors
    ///
    /// Bind failures and an invalid gen spec (unknown bench/variant).
    pub fn bind(cfg: CoordinatorConfig) -> Result<CoordinatorHandle, FleetError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let gen = match &cfg.gen {
            Some(spec) => Some(GenJob {
                spec: spec.clone(),
                leases: Mutex::new(build_lease_table(spec, cfg.lease_ms)?),
            }),
            None => None,
        };
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry::new(cfg.lease_ms)),
            gen,
            shutting_down: AtomicBool::new(false),
            addr,
            started: Instant::now(),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fleet-coord-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        let shared = Arc::clone(&shared);
                        // Thread-per-connection: peers are workers and
                        // fronts on keep-alive, a bounded population.
                        let _ = thread::Builder::new()
                            .name("fleet-coord-conn".to_string())
                            .spawn(move || handle_connection(&shared, stream));
                    }
                })
                .expect("spawn coordinator accept")
        };

        Ok(CoordinatorHandle {
            shared,
            accept: Some(accept),
        })
    }
}

/// Scans the checkpoint directory and builds the lease table with complete
/// shards pre-marked done. Contents are validated, not just presence: a
/// torn or failure-carrying shard re-leases.
fn build_lease_table(spec: &GenSpec, lease_ms: u64) -> Result<LeaseTable, FleetError> {
    let dcfg = spec_config(spec)?;
    let design = spec_design(spec)?;
    let store = ShardStore::new(&spec.checkpoint);
    let done: Vec<usize> = store
        .existing_shards()
        .into_iter()
        .filter(|&i| {
            matches!(
                store.load_shard::<Vec<SampleRecord>>(i),
                Ok(Some(ref shard)) if shard_is_complete(&dcfg, &design.graph, i, shard)
            )
        })
        .collect();
    if !done.is_empty() {
        af_obs::counter("fleet.gen.shards_resumed", done.len() as u64);
    }
    let lease_ms = if lease_ms == 0 {
        crate::registry::DEFAULT_LEASE_MS
    } else {
        lease_ms
    };
    Ok(LeaseTable::new(shard_count(&dcfg), &done, lease_ms))
}

impl CoordinatorHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether the configured gen job has every shard complete
    /// (`false` when no job is configured).
    #[must_use]
    pub fn gen_finished(&self) -> bool {
        self.shared.gen.as_ref().is_some_and(|g| {
            g.leases
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_done()
        })
    }

    /// Blocks until the gen job finishes, polling every `poll`. Returns
    /// `false` immediately when no gen job is configured.
    pub fn wait_gen_done(&self, poll: Duration) -> bool {
        if self.shared.gen.is_none() {
            return false;
        }
        while !self.gen_finished() {
            thread::sleep(poll);
        }
        true
    }

    /// Initiates shutdown without waiting.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Blocks until the coordinator shuts down — via [`shutdown`] or a
    /// `POST /fleet/shutdown` — and joins the accept thread (open
    /// keep-alive connections finish their in-flight request and close on
    /// the next read).
    ///
    /// [`shutdown`]: CoordinatorHandle::shutdown
    pub fn join(mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(ParseError::Bad(msg)) => {
                let _ = Response::error(400, &msg).with_close().write_to(&mut out);
                return;
            }
            Err(ParseError::TooLarge(msg)) => {
                let _ = Response::error(413, &msg).with_close().write_to(&mut out);
                return;
            }
            Err(ParseError::Io(_)) => return,
        };
        let close = req.wants_close();
        let mut resp = dispatch(shared, &req);
        if close {
            resp = resp.with_close();
        }
        if resp.write_to(&mut out).is_err() || resp.close {
            return;
        }
    }
}

fn json_or_500<T: serde::Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

fn parse<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, Response> {
    af_serve::api::parse_body(body).map_err(|e| Response::error(400, &e))
}

fn dispatch(shared: &Shared, req: &Request) -> Response {
    af_obs::counter("fleet.coord.requests", 1);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/fleet/register") => register(shared, &req.body),
        ("POST", "/fleet/heartbeat") => heartbeat(shared, &req.body),
        ("GET", "/fleet/workers") => workers(shared),
        ("POST", "/fleet/lease") => lease(shared, &req.body),
        ("POST", "/fleet/complete") => complete(shared, &req.body),
        ("POST", "/fleet/promote") => promote(shared, &req.body),
        ("GET", "/fleet/status") => status(shared),
        ("GET", "/healthz") => status(shared),
        ("GET", "/metrics") => Response::text(200, &af_serve::metrics::render_metrics()),
        ("POST", "/fleet/shutdown") => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            Response::json(200, "{\"ok\":true}".to_string()).with_close()
        }
        (
            _,
            "/fleet/register" | "/fleet/heartbeat" | "/fleet/workers" | "/fleet/lease"
            | "/fleet/complete" | "/fleet/promote" | "/fleet/status" | "/healthz" | "/metrics"
            | "/fleet/shutdown",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn register(shared: &Shared, body: &[u8]) -> Response {
    let req: RegisterRequest = match parse(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut reg = shared
        .registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let now = reg.now_ms();
    let resp = reg.register(&req, now);
    json_or_500(200, &resp)
}

fn heartbeat(shared: &Shared, body: &[u8]) -> Response {
    let req: HeartbeatRequest = match parse(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut reg = shared
        .registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let now = reg.now_ms();
    let resp = reg.heartbeat(&req, now);
    drop(reg);
    // A heartbeat naming an active shard renews that lease too — one
    // message keeps both the membership and the work alive.
    if resp.known {
        if let (Some(gen), Some(shard)) = (&shared.gen, req.active_shard) {
            gen.leases
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .renew(&req.id, shard as usize, now_ms(shared));
        }
    }
    json_or_500(200, &resp)
}

fn promote(shared: &Shared, body: &[u8]) -> Response {
    let req: FleetPromoteRequest = match parse(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    if req.model_hash.is_empty() {
        return Response::error(400, "model_hash must be non-empty");
    }
    let mut reg = shared
        .registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let now = reg.now_ms();
    let matching = reg.promote(&req.model_hash, now);
    drop(reg);
    json_or_500(
        200,
        &FleetPromoteResponse {
            ok: true,
            model_hash: req.model_hash,
            matching_workers: matching,
        },
    )
}

fn workers(shared: &Shared) -> Response {
    let reg = shared
        .registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let now = reg.now_ms();
    json_or_500(200, &reg.alive(now))
}

fn now_ms(shared: &Shared) -> u64 {
    shared.started.elapsed().as_millis() as u64
}

fn lease(shared: &Shared, body: &[u8]) -> Response {
    let req: LeaseRequest = match parse(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let Some(gen) = &shared.gen else {
        return json_or_500(
            200,
            &LeaseResponse {
                shard: None,
                spec: None,
                done: false,
                total_shards: 0,
                remaining: 0,
            },
        );
    };
    // Only registered, live workers get leases: a worker that lost its
    // membership lease must re-register (proving it still exists) before
    // it can hold work again.
    let known = {
        let reg = shared
            .registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = reg.now_ms();
        reg.is_alive(&req.id, now)
    };
    if !known {
        return Response::error(403, "unregistered or expired worker; re-register first");
    }
    let mut leases = gen
        .leases
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let now = now_ms(shared);
    let shard = leases.lease(&req.id, now);
    let counts = leases.counts(now);
    let done = leases.is_done();
    drop(leases);
    json_or_500(
        200,
        &LeaseResponse {
            shard: shard.map(|s| s as u64),
            spec: Some(gen.spec.clone()),
            done,
            total_shards: counts.total,
            remaining: counts.total - counts.done,
        },
    )
}

fn complete(shared: &Shared, body: &[u8]) -> Response {
    let req: CompleteRequest = match parse(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let Some(gen) = &shared.gen else {
        return Response::error(404, "no gen job configured");
    };
    let mut leases = gen
        .leases
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let ok = if req.ok {
        leases.complete(&req.id, req.shard as usize)
    } else {
        af_obs::counter("fleet.gen.shard_failures", 1);
        if let Some(e) = &req.error {
            af_obs::warn(&format!(
                "worker {} failed shard {}: {e}",
                req.id, req.shard
            ));
        }
        leases.release(&req.id, req.shard as usize)
    };
    json_or_500(200, &CompleteResponse { ok })
}

fn status(shared: &Shared) -> Response {
    let reg = shared
        .registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let now = reg.now_ms();
    let alive = reg.alive(now).workers.len() as u64;
    let registered = reg.registered_total();
    drop(reg);
    let gen = shared.gen.as_ref().map(|g| {
        let leases = g
            .leases
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let c = leases.counts(now_ms(shared));
        GenStatus {
            total: c.total,
            done: c.done,
            leased: c.leased,
            pending: c.pending,
            finished: c.done == c.total,
        }
    });
    json_or_500(
        200,
        &StatusResponse {
            ok: true,
            uptime_ms: shared.started.elapsed().as_millis() as u64,
            workers_alive: alive,
            workers_registered: registered,
            gen,
        },
    )
}
