//! The worker side of distributed dataset generation: turn a [`GenSpec`]
//! into concrete design + config objects, then lease shards from the
//! coordinator until the job is done.
//!
//! The determinism contract does the heavy lifting here. A shard's
//! contents are a pure function of `(spec, shard_index)` — every sample is
//! seeded by `afrt::split_seed(spec.seed, sample_index)` — so workers
//! never coordinate beyond "who computes which shard". A worker killed
//! mid-shard needs no cleanup: its lease expires, another worker computes
//! the same bits, and the checkpoint store's atomic shard writes make the
//! last writer irrelevant.

use std::thread;
use std::time::Duration;

use analogfold::{
    generate_shard, shard_is_complete, DatasetConfig, HeteroGraph, SampleRecord, ShardStore,
};
use serde::Serialize;

use crate::client::{post_json, WorkerAgent};
use crate::protocol::{CompleteRequest, CompleteResponse, GenSpec, LeaseRequest, LeaseResponse};
use crate::FleetError;

/// k-NN neighborhood used when building the hetero graph for gen jobs.
/// Fixed fleet-wide: coordinator (checkpoint validation) and every worker
/// must agree or shard completeness checks would disagree.
pub const GEN_KNN: usize = 3;

/// How long an idle worker waits before re-asking for a lease when all
/// remaining shards are held by other workers.
const LEASE_POLL: Duration = Duration::from_millis(100);

/// Builds the [`DatasetConfig`] a [`GenSpec`] describes. Fields the spec
/// does not carry (router, simulator, retry policy, cache quantization)
/// take workspace defaults — identical on coordinator and workers by
/// construction, which the bit-identity contract requires.
///
/// # Errors
///
/// Degenerate specs (zero samples or shard size, inverted bounds).
pub fn spec_config(spec: &GenSpec) -> Result<DatasetConfig, FleetError> {
    if spec.samples == 0 {
        return Err(FleetError::Config("gen spec has zero samples".to_string()));
    }
    if spec.shard_size == 0 {
        return Err(FleetError::Config(
            "gen spec has zero shard size".to_string(),
        ));
    }
    if !(spec.c_low > 0.0 && spec.c_high >= spec.c_low) {
        return Err(FleetError::Config(format!(
            "bad guidance bounds [{}, {}]",
            spec.c_low, spec.c_high
        )));
    }
    Ok(DatasetConfig {
        samples: spec.samples as usize,
        seed: spec.seed,
        c_low: spec.c_low,
        c_high: spec.c_high,
        threads: spec.threads as usize,
        shard_size: spec.shard_size as usize,
        cache_mb: spec.cache_mb,
        ..DatasetConfig::default()
    })
}

/// The concrete design a [`GenSpec`] names.
pub struct GenDesign {
    /// Benchmark circuit.
    pub circuit: af_netlist::Circuit,
    /// Deterministic placement of the requested variant.
    pub placement: af_place::Placement,
    /// Technology parameters.
    pub tech: af_tech::Technology,
    /// Hetero graph over the placed circuit ([`GEN_KNN`] neighborhood).
    pub graph: HeteroGraph,
}

/// Resolves a spec's `bench`/`variant` coordinates into the design
/// objects shard evaluation needs.
///
/// # Errors
///
/// Unknown benchmark or placement-variant names.
pub fn spec_design(spec: &GenSpec) -> Result<GenDesign, FleetError> {
    let circuit = af_netlist::benchmarks::by_name(&spec.bench)
        .ok_or_else(|| FleetError::Config(format!("unknown benchmark `{}`", spec.bench)))?;
    let variant = af_place::PlacementVariant::from_label(&spec.variant).ok_or_else(|| {
        FleetError::Config(format!("unknown placement variant `{}`", spec.variant))
    })?;
    let tech = af_tech::Technology::nm40();
    let placement = af_place::place(&circuit, variant);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, GEN_KNN);
    Ok(GenDesign {
        circuit,
        placement,
        tech,
        graph,
    })
}

/// What one worker did over a gen job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct GenSummary {
    /// Shards this worker computed and persisted.
    pub shards_computed: u64,
    /// Leased shards that were already complete on disk (another worker's
    /// write, or a previous run) and only needed a completion report.
    pub shards_skipped: u64,
    /// Samples across computed shards.
    pub samples: u64,
}

/// Runs the gen-worker loop against `coordinator` as worker `id`: lease a
/// shard, compute it (or recognize it complete on disk), persist, report,
/// repeat until the coordinator says the job is done. Pass the worker's
/// [`WorkerAgent`] so heartbeats renew the active shard's lease during
/// long computations.
///
/// The `fleet.worker_kill` failpoint (keyed by shard index) sits between
/// lease and computation — arming it with `err` makes the worker die
/// silently mid-job (lease expiry heals), `abort` kills the process.
///
/// # Errors
///
/// Transport failures to the coordinator, invalid specs, persistence
/// failures, and the injected kill.
pub fn run_gen_worker(
    coordinator: &str,
    id: &str,
    agent: Option<&WorkerAgent>,
) -> Result<GenSummary, FleetError> {
    let mut summary = GenSummary::default();
    // The spec is constant across one job; design/config build lazily on
    // the first lease and are reused for every subsequent shard.
    let mut prepared: Option<(GenSpec, GenDesign, DatasetConfig, ShardStore)> = None;
    // The agent registers on its own thread, so the first lease request
    // can legitimately race registration and bounce with 403. Wait the
    // registration out rather than dying; the budget keeps a worker whose
    // registration was *rejected* (not merely pending) from spinning.
    let mut unregistered_budget = 100u32;
    loop {
        let lease: LeaseResponse = match post_json(
            coordinator,
            "/fleet/lease",
            &LeaseRequest { id: id.to_string() },
        ) {
            Ok(resp) => resp,
            Err(FleetError::Status(403, _)) if unregistered_budget > 0 => {
                unregistered_budget -= 1;
                thread::sleep(LEASE_POLL);
                continue;
            }
            Err(e) => return Err(e),
        };
        unregistered_budget = 100;
        if lease.done {
            af_obs::counter("fleet.gen.worker_done", 1);
            return Ok(summary);
        }
        let Some(shard) = lease.shard else {
            // Remaining shards are all under live leases elsewhere; one of
            // them may yet expire back to us, so keep polling.
            thread::sleep(LEASE_POLL);
            continue;
        };
        let spec = lease
            .spec
            .ok_or_else(|| FleetError::Protocol("lease grant without a job spec".to_string()))?;
        if prepared.as_ref().is_none_or(|(s, ..)| *s != spec) {
            let design = spec_design(&spec)?;
            let cfg = spec_config(&spec)?;
            let store = ShardStore::new(&spec.checkpoint);
            prepared = Some((spec, design, cfg, store));
        }
        let (_, design, cfg, store) = prepared.as_ref().expect("prepared above");

        af_fault::fail!(
            "fleet.worker_kill",
            key = shard,
            FleetError::Config(format!("injected worker kill on shard {shard}"))
        );

        if let Some(a) = agent {
            a.set_active_shard(Some(shard));
        }
        let outcome = compute_shard(design, cfg, store, shard as usize);
        if let Some(a) = agent {
            a.set_active_shard(None);
        }
        let report = CompleteRequest {
            id: id.to_string(),
            shard,
            ok: outcome.is_ok(),
            error: outcome.as_ref().err().map(ToString::to_string),
        };
        let _: CompleteResponse = post_json(coordinator, "/fleet/complete", &report)?;
        match outcome {
            Ok(Computed(n)) => {
                summary.shards_computed += 1;
                summary.samples += n;
            }
            Ok(Skipped) => summary.shards_skipped += 1,
            Err(e) => {
                af_obs::warn(&format!("worker {id} failed shard {shard}: {e}"));
            }
        }
    }
}

use ShardOutcome::{Computed, Skipped};

enum ShardOutcome {
    /// Computed and persisted `n` samples.
    Computed(u64),
    /// Found complete on disk; nothing recomputed.
    Skipped,
}

fn compute_shard(
    design: &GenDesign,
    cfg: &DatasetConfig,
    store: &ShardStore,
    shard: usize,
) -> Result<ShardOutcome, FleetError> {
    // A shard already complete on disk (previous run, or a slow sibling
    // whose lease expired but whose write landed) is simply acknowledged —
    // recomputation would produce the same bytes.
    if let Ok(Some(existing)) = store.load_shard::<Vec<SampleRecord>>(shard) {
        if shard_is_complete(cfg, &design.graph, shard, &existing) {
            af_obs::counter("fleet.gen.shards_found_on_disk", 1);
            return Ok(Skipped);
        }
    }
    let records = generate_shard(
        &design.circuit,
        &design.placement,
        &design.tech,
        &design.graph,
        cfg,
        shard,
        Some(store),
    );
    if !shard_is_complete(cfg, &design.graph, shard, &records) {
        return Err(FleetError::Config(format!(
            "shard {shard} evaluation left incomplete records (persistent sample failures)"
        )));
    }
    store
        .save_shard(shard, &records)
        .map_err(|e| FleetError::Config(format!("persist shard {shard}: {e}")))?;
    af_obs::counter("fleet.gen.shards_computed", 1);
    Ok(Computed(records.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GenSpec {
        GenSpec {
            bench: "OTA1".to_string(),
            variant: "A".to_string(),
            samples: 12,
            shard_size: 4,
            seed: 7,
            c_low: 0.4,
            c_high: 2.4,
            checkpoint: String::new(),
            threads: 1,
            cache_mb: 0,
        }
    }

    #[test]
    fn spec_maps_onto_dataset_config() {
        let cfg = spec_config(&spec()).unwrap();
        assert_eq!(cfg.samples, 12);
        assert_eq!(cfg.shard_size, 4);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, 1);
        // Unspecified knobs keep workspace defaults (the other half of the
        // coordinator/worker agreement).
        assert_eq!(cfg.retry, DatasetConfig::default().retry);
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let mut s = spec();
        s.samples = 0;
        assert!(spec_config(&s).is_err());
        let mut s = spec();
        s.shard_size = 0;
        assert!(spec_config(&s).is_err());
        let mut s = spec();
        s.c_low = 3.0;
        s.c_high = 1.0;
        assert!(spec_config(&s).is_err());
    }

    #[test]
    fn unknown_design_coordinates_are_rejected() {
        let mut s = spec();
        s.bench = "NOPE99".to_string();
        assert!(spec_design(&s).is_err());
        let mut s = spec();
        s.variant = "Z".to_string();
        assert!(spec_design(&s).is_err());
    }

    #[test]
    fn design_resolves_real_benchmarks() {
        let d = spec_design(&spec()).unwrap();
        assert!(!d.circuit.devices().is_empty());
        assert!(!d.graph.guided_ap_indices().is_empty());
    }
}
