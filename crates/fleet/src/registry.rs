//! The coordinator's worker registry: registrations, heartbeats, and
//! deterministic lease expiry.
//!
//! Liveness is decided purely by timestamp comparison at query time — a
//! worker is alive iff `now - last_heartbeat <= lease_ms` — so there is no
//! reaper thread to race against and tests can drive expiry with an
//! injected clock. Registrations are idempotent (a worker that crashed and
//! restarted under the same id simply re-registers), and version skew is
//! detected against the first model-bearing registrant's content hash.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::protocol::{
    HeartbeatRequest, HeartbeatResponse, RegisterRequest, RegisterResponse, WorkerView,
    WorkersResponse, PROTOCOL_VERSION,
};

/// Default lease: a worker missing heartbeats for this long is dead.
pub const DEFAULT_LEASE_MS: u64 = 3_000;

struct WorkerEntry {
    addr: String,
    caps: crate::protocol::WorkerCaps,
    model_hash: String,
    guidance_len: u64,
    load: f64,
    last_heartbeat_ms: u64,
    metrics: Vec<(String, f64)>,
}

/// Worker membership state (interior mutability belongs to the caller —
/// the coordinator wraps this in a `Mutex`).
pub struct Registry {
    start: Instant,
    lease_ms: u64,
    registered_total: u64,
    /// Canonical model hash: first non-empty registrant wins.
    canonical_hash: String,
    workers: BTreeMap<String, WorkerEntry>,
}

impl Registry {
    /// Creates an empty registry with the given lease duration
    /// (`0` falls back to [`DEFAULT_LEASE_MS`]).
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        Self {
            start: Instant::now(),
            lease_ms: if lease_ms == 0 {
                DEFAULT_LEASE_MS
            } else {
                lease_ms
            },
            registered_total: 0,
            canonical_hash: String::new(),
            workers: BTreeMap::new(),
        }
    }

    /// Monotonic milliseconds since the registry was created — the clock
    /// every lease comparison uses.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// The configured lease duration.
    #[must_use]
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms
    }

    /// All-time registration count.
    #[must_use]
    pub fn registered_total(&self) -> u64 {
        self.registered_total
    }

    /// The fleet's canonical model hash (empty until a model-bearing
    /// worker registers).
    #[must_use]
    pub fn canonical_hash(&self) -> &str {
        &self.canonical_hash
    }

    /// Handles a registration at time `now_ms`. Re-registration under an
    /// existing id replaces the entry (crash-restart under the same id).
    pub fn register(&mut self, req: &RegisterRequest, now_ms: u64) -> RegisterResponse {
        if req.protocol != PROTOCOL_VERSION {
            return RegisterResponse {
                ok: false,
                lease_ms: self.lease_ms,
                skew: false,
                message: format!(
                    "protocol mismatch: coordinator speaks v{PROTOCOL_VERSION}, worker v{}",
                    req.protocol
                ),
            };
        }
        if req.id.is_empty() {
            return RegisterResponse {
                ok: false,
                lease_ms: self.lease_ms,
                skew: false,
                message: "worker id must not be empty".to_string(),
            };
        }
        if self.canonical_hash.is_empty() && !req.model_hash.is_empty() {
            self.canonical_hash = req.model_hash.clone();
        }
        let skew = !req.model_hash.is_empty()
            && !self.canonical_hash.is_empty()
            && req.model_hash != self.canonical_hash;
        if skew {
            af_obs::counter("fleet.registry.skew_detected", 1);
        }
        self.registered_total += 1;
        af_obs::counter("fleet.registry.registrations", 1);
        self.workers.insert(
            req.id.clone(),
            WorkerEntry {
                addr: req.addr.clone(),
                caps: req.caps,
                model_hash: req.model_hash.clone(),
                guidance_len: req.guidance_len,
                load: 0.0,
                last_heartbeat_ms: now_ms,
                metrics: Vec::new(),
            },
        );
        RegisterResponse {
            ok: true,
            lease_ms: self.lease_ms,
            skew,
            message: String::new(),
        }
    }

    /// Handles a heartbeat at time `now_ms`. An unknown id (coordinator
    /// restarted, or the worker was expired *and evicted*) gets
    /// `known: false` and must re-register. An expired-but-present worker
    /// is revived — the heartbeat proves it lives.
    pub fn heartbeat(&mut self, req: &HeartbeatRequest, now_ms: u64) -> HeartbeatResponse {
        let Some(entry) = self.workers.get_mut(&req.id) else {
            return HeartbeatResponse {
                ok: false,
                known: false,
                lease_ms: self.lease_ms,
                model_hash: None,
            };
        };
        entry.last_heartbeat_ms = now_ms;
        entry.load = req.load;
        // Track hot-swaps: a worker that swapped its resident model reports
        // the new hash here, so skew against the canonical recomputes from
        // live data instead of the stale registration snapshot.
        if let Some(hash) = &req.model_hash {
            if *hash != entry.model_hash {
                entry.model_hash = hash.clone();
                af_obs::counter("fleet.registry.model_updates", 1);
            }
        }
        entry.metrics = req
            .metrics
            .iter()
            .map(|m| (m.name.clone(), m.value))
            .collect();
        af_obs::counter("fleet.registry.heartbeats", 1);
        // Republish this worker's series on the coordinator's own registry
        // so one /metrics scrape sees the whole fleet, labeled per worker.
        af_obs::gauge(&format!("fleet.worker_load|worker={}", req.id), req.load);
        for m in &req.metrics {
            af_obs::gauge(
                &format!(
                    "fleet.worker_{}|worker={}",
                    m.name.replace('.', "_"),
                    req.id
                ),
                m.value,
            );
        }
        HeartbeatResponse {
            ok: true,
            known: true,
            lease_ms: self.lease_ms,
            model_hash: (!self.canonical_hash.is_empty()).then(|| self.canonical_hash.clone()),
        }
    }

    /// Moves the fleet's canonical model hash (a promotion). Workers still
    /// on the old hash become the skewed ones and converge through the
    /// heartbeat echo. Returns how many live workers already match.
    pub fn promote(&mut self, model_hash: &str, now_ms: u64) -> u64 {
        if self.canonical_hash != model_hash {
            self.canonical_hash = model_hash.to_string();
            af_obs::counter("fleet.registry.promotions", 1);
        }
        self.workers
            .values()
            .filter(|w| {
                now_ms.saturating_sub(w.last_heartbeat_ms) <= self.lease_ms
                    && w.model_hash == model_hash
            })
            .count() as u64
    }

    /// Whether `id` is currently alive (present and within lease).
    #[must_use]
    pub fn is_alive(&self, id: &str, now_ms: u64) -> bool {
        self.workers
            .get(id)
            .is_some_and(|w| now_ms.saturating_sub(w.last_heartbeat_ms) <= self.lease_ms)
    }

    /// The live worker set at `now_ms` — the view fronts build their ring
    /// from. Dead entries are skipped, not evicted: a revival heartbeat
    /// under the same id keeps working.
    #[must_use]
    pub fn alive(&self, now_ms: u64) -> WorkersResponse {
        let workers: Vec<WorkerView> = self
            .workers
            .iter()
            .filter(|(_, w)| now_ms.saturating_sub(w.last_heartbeat_ms) <= self.lease_ms)
            .map(|(id, w)| WorkerView {
                id: id.clone(),
                addr: w.addr.clone(),
                caps: w.caps,
                model_hash: w.model_hash.clone(),
                guidance_len: w.guidance_len,
                load: w.load,
                since_heartbeat_ms: now_ms.saturating_sub(w.last_heartbeat_ms),
                skew: !w.model_hash.is_empty()
                    && !self.canonical_hash.is_empty()
                    && w.model_hash != self.canonical_hash,
            })
            .collect();
        af_obs::gauge("fleet.workers_alive", workers.len() as f64);
        WorkersResponse {
            workers,
            model_hash: self.canonical_hash.clone(),
        }
    }

    /// Aggregated metric snapshot across live workers: per-worker pushed
    /// metrics, keyed `(metric name, worker id)`.
    #[must_use]
    pub fn worker_metrics(&self, now_ms: u64) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for (id, w) in &self.workers {
            if now_ms.saturating_sub(w.last_heartbeat_ms) > self.lease_ms {
                continue;
            }
            for (name, value) in &w.metrics {
                out.push((name.clone(), id.clone(), *value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WorkerCaps;

    fn reg(id: &str, hash: &str) -> RegisterRequest {
        RegisterRequest {
            id: id.to_string(),
            addr: format!("127.0.0.1:1{id}"),
            caps: WorkerCaps {
                serve: true,
                gen: true,
            },
            model_hash: hash.to_string(),
            guidance_len: 9,
            protocol: PROTOCOL_VERSION,
        }
    }

    fn hb(id: &str) -> HeartbeatRequest {
        HeartbeatRequest {
            id: id.to_string(),
            load: 1.5,
            metrics: Vec::new(),
            active_shard: None,
            model_hash: None,
        }
    }

    #[test]
    fn register_heartbeat_expire_revive() {
        let mut r = Registry::new(100);
        assert!(r.register(&reg("w1", "aaaa"), 0).ok);
        assert!(r.register(&reg("w2", "aaaa"), 0).ok);
        assert_eq!(r.alive(50).workers.len(), 2);
        // w2 heartbeats at 80; w1 goes silent and expires at 101.
        assert!(r.heartbeat(&hb("w2"), 80).ok);
        let live = r.alive(120);
        assert_eq!(live.workers.len(), 1);
        assert_eq!(live.workers[0].id, "w2");
        assert!(!r.is_alive("w1", 120));
        // A late heartbeat revives w1 — presence survives expiry.
        assert!(r.heartbeat(&hb("w1"), 150).known);
        assert!(r.is_alive("w1", 200));
    }

    #[test]
    fn unknown_heartbeat_demands_reregistration() {
        let mut r = Registry::new(100);
        let resp = r.heartbeat(&hb("ghost"), 10);
        assert!(!resp.ok);
        assert!(!resp.known);
    }

    #[test]
    fn version_skew_is_flagged_not_rejected() {
        let mut r = Registry::new(100);
        assert!(!r.register(&reg("w1", "aaaa"), 0).skew, "first sets canon");
        let resp = r.register(&reg("w2", "bbbb"), 0);
        assert!(resp.ok && resp.skew, "different hash accepted but flagged");
        let live = r.alive(1);
        assert_eq!(live.model_hash, "aaaa");
        let w2 = live.workers.iter().find(|w| w.id == "w2").unwrap();
        assert!(w2.skew);
        // Model-less workers (gen-only) never skew.
        assert!(!r.register(&reg("w3", ""), 0).skew);
    }

    #[test]
    fn protocol_mismatch_is_rejected() {
        let mut r = Registry::new(100);
        let mut bad = reg("w1", "");
        bad.protocol = PROTOCOL_VERSION + 1;
        let resp = r.register(&bad, 0);
        assert!(!resp.ok);
        assert!(resp.message.contains("protocol mismatch"));
        assert!(!r.register(&reg("", ""), 0).ok, "empty id rejected");
    }

    #[test]
    fn promotion_converges_skew_via_heartbeats() {
        let mut r = Registry::new(100);
        r.register(&reg("w1", "aaaa"), 0);
        r.register(&reg("w2", "aaaa"), 0);
        // Promote to a new hash: everyone is now skewed, heartbeats echo
        // the new canonical.
        assert_eq!(r.promote("bbbb", 0), 0);
        let resp = r.heartbeat(&hb("w1"), 10);
        assert_eq!(resp.model_hash.as_deref(), Some("bbbb"));
        assert!(r.alive(20).workers.iter().all(|w| w.skew));
        // w1 hot-swaps and reports the new hash on its next beat: its skew
        // clears without re-registration.
        let mut swapped = hb("w1");
        swapped.model_hash = Some("bbbb".to_string());
        assert!(r.heartbeat(&swapped, 30).ok);
        let live = r.alive(40);
        assert!(!live.workers.iter().find(|w| w.id == "w1").unwrap().skew);
        assert!(live.workers.iter().find(|w| w.id == "w2").unwrap().skew);
        assert_eq!(r.promote("bbbb", 40), 1, "w1 already matches");
    }

    #[test]
    fn reregistration_replaces_entry() {
        let mut r = Registry::new(100);
        r.register(&reg("w1", "aaaa"), 0);
        let mut again = reg("w1", "aaaa");
        again.addr = "127.0.0.1:999".to_string();
        r.register(&again, 50);
        let live = r.alive(60);
        assert_eq!(live.workers.len(), 1);
        assert_eq!(live.workers[0].addr, "127.0.0.1:999");
        assert_eq!(r.registered_total(), 2);
    }
}
