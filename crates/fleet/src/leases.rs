//! Shard lease bookkeeping for distributed dataset generation.
//!
//! The coordinator owns one [`LeaseTable`] per gen job. A shard is the
//! lease granule; grants always pick the **lowest-indexed** available
//! shard (pending, or leased but expired), so assignment order — and with
//! it the worker→shard mapping under any fixed timing — is deterministic.
//! Because every shard's *contents* are a pure function of
//! `(spec, shard_index)`, which worker computes a shard never matters:
//! a re-leased shard from a killed worker is bit-identical to the
//! original's would-have-been output. That is the whole healing story —
//! there is no shard handoff, no partial-state transfer, just "someone
//! else computes the same pure function".

/// Lease state of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardState {
    /// Not yet handed to any worker.
    Pending,
    /// Leased to `worker` until `expires_ms` (renewed by heartbeats that
    /// name the shard).
    Leased { worker: String, expires_ms: u64 },
    /// Persisted to the checkpoint store and verified complete.
    Done,
}

/// Progress counters (mirrors [`crate::protocol::GenStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseCounts {
    /// Total shards.
    pub total: u64,
    /// Completed shards.
    pub done: u64,
    /// Live (unexpired) leases at the queried time.
    pub leased: u64,
    /// Pending shards (never leased, or lease expired).
    pub pending: u64,
}

/// Lease table over `total` shards.
pub struct LeaseTable {
    state: Vec<ShardState>,
    lease_ms: u64,
}

impl LeaseTable {
    /// Creates a table of `total` shards, with `done` indices (from a
    /// checkpoint-directory scan) pre-marked complete — how an interrupted
    /// distributed run resumes without recomputing finished work.
    #[must_use]
    pub fn new(total: usize, done: &[usize], lease_ms: u64) -> Self {
        let mut state = vec![ShardState::Pending; total];
        for &i in done {
            if i < total {
                state[i] = ShardState::Done;
            }
        }
        Self { state, lease_ms }
    }

    /// Grants the lowest available shard to `worker` at `now_ms`, or
    /// `None` when nothing is grantable (all done or under live lease).
    /// A worker holding an expired lease elsewhere simply loses it — the
    /// shard becomes grantable to anyone, including the original holder.
    pub fn lease(&mut self, worker: &str, now_ms: u64) -> Option<usize> {
        let grant = self.state.iter().position(|s| match s {
            ShardState::Pending => true,
            ShardState::Leased { expires_ms, .. } => *expires_ms < now_ms,
            ShardState::Done => false,
        })?;
        if matches!(&self.state[grant], ShardState::Leased { .. }) {
            af_obs::counter("fleet.leases.expired_reassigned", 1);
        }
        self.state[grant] = ShardState::Leased {
            worker: worker.to_string(),
            expires_ms: now_ms + self.lease_ms,
        };
        af_obs::counter("fleet.leases.granted", 1);
        Some(grant)
    }

    /// Renews `worker`'s lease on `shard` (heartbeat naming an active
    /// shard). A renewal for a shard the worker no longer holds — it
    /// expired and was re-leased — is refused, telling the worker to drop
    /// the stale computation.
    pub fn renew(&mut self, worker: &str, shard: usize, now_ms: u64) -> bool {
        match self.state.get_mut(shard) {
            Some(ShardState::Leased {
                worker: holder,
                expires_ms,
            }) if holder == worker => {
                *expires_ms = now_ms + self.lease_ms;
                true
            }
            _ => false,
        }
    }

    /// Marks `shard` complete if `worker` still holds it (or it is
    /// pending/expired — a slow worker whose lease lapsed but whose write
    /// landed is still a valid completion, because all completions are
    /// bit-identical). Returns whether the completion was recorded.
    pub fn complete(&mut self, worker: &str, shard: usize) -> bool {
        match self.state.get(shard) {
            None | Some(ShardState::Done) => false,
            Some(ShardState::Leased { worker: holder, .. }) if holder != worker => {
                // Someone else holds a live lease; their completion (same
                // bits) will land. Accept anyway would double-count.
                af_obs::counter("fleet.leases.stale_completion", 1);
                false
            }
            _ => {
                self.state[shard] = ShardState::Done;
                af_obs::counter("fleet.leases.completed", 1);
                true
            }
        }
    }

    /// Releases `shard` back to pending if `worker` holds it (a worker
    /// reporting a failed attempt).
    pub fn release(&mut self, worker: &str, shard: usize) -> bool {
        match self.state.get(shard) {
            Some(ShardState::Leased { worker: holder, .. }) if holder == worker => {
                self.state[shard] = ShardState::Pending;
                af_obs::counter("fleet.leases.released", 1);
                true
            }
            _ => false,
        }
    }

    /// Whether every shard is complete.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state.iter().all(|s| *s == ShardState::Done)
    }

    /// Progress counters at `now_ms` (expired leases count as pending).
    #[must_use]
    pub fn counts(&self, now_ms: u64) -> LeaseCounts {
        let mut c = LeaseCounts {
            total: self.state.len() as u64,
            done: 0,
            leased: 0,
            pending: 0,
        };
        for s in &self.state {
            match s {
                ShardState::Done => c.done += 1,
                ShardState::Leased { expires_ms, .. } if *expires_ms >= now_ms => c.leased += 1,
                _ => c.pending += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_lowest_available_in_order() {
        let mut t = LeaseTable::new(4, &[1], 100);
        assert_eq!(t.lease("a", 0), Some(0));
        assert_eq!(t.lease("b", 0), Some(2), "shard 1 pre-done, 0 leased");
        assert_eq!(t.lease("c", 0), Some(3));
        assert_eq!(t.lease("d", 0), None, "everything held or done");
        let c = t.counts(0);
        assert_eq!((c.done, c.leased, c.pending), (1, 3, 0));
    }

    #[test]
    fn expired_lease_reassigns_and_stale_renewal_refused() {
        let mut t = LeaseTable::new(1, &[], 100);
        assert_eq!(t.lease("dead", 0), Some(0));
        assert_eq!(t.lease("other", 50), None, "lease still live at 50");
        assert!(t.renew("dead", 0, 50), "holder can renew");
        // Renewal moved expiry to 150; at 200 it is expired and re-leased.
        assert_eq!(t.lease("heir", 200), Some(0));
        assert!(!t.renew("dead", 0, 210), "old holder lost the shard");
        assert!(t.renew("heir", 0, 210));
    }

    #[test]
    fn completion_rules() {
        let mut t = LeaseTable::new(2, &[], 100);
        assert_eq!(t.lease("a", 0), Some(0));
        assert!(t.complete("a", 0));
        assert!(!t.complete("a", 0), "double-complete refused");
        assert!(!t.complete("a", 5), "out of range refused");
        // Shard 1: leased to b, lease expires, re-leased to c. b's late
        // completion is refused while c holds it live...
        assert_eq!(t.lease("b", 0), Some(1));
        assert_eq!(t.lease("c", 200), Some(1));
        assert!(!t.complete("b", 1));
        assert!(t.complete("c", 1));
        assert!(t.is_done());
    }

    #[test]
    fn late_completion_after_expiry_is_accepted() {
        // b's lease lapses with no heir; its durable write is still the
        // bit-identical shard, so the completion counts.
        let mut t = LeaseTable::new(1, &[], 100);
        assert_eq!(t.lease("b", 0), Some(0));
        let c = t.counts(500);
        assert_eq!((c.leased, c.pending), (0, 1), "expired shows as pending");
        assert!(t.complete("b", 0));
        assert!(t.is_done());
    }

    #[test]
    fn release_returns_shard_to_pool() {
        let mut t = LeaseTable::new(1, &[], 100);
        assert_eq!(t.lease("a", 0), Some(0));
        assert!(t.release("a", 0));
        assert!(!t.release("a", 0), "already released");
        assert_eq!(t.lease("b", 1), Some(0), "immediately grantable");
    }

    #[test]
    fn resume_marks_prescanned_shards_done() {
        let t = LeaseTable::new(3, &[0, 2, 99], 100);
        let c = t.counts(0);
        assert_eq!((c.total, c.done, c.pending), (3, 2, 1), "99 ignored");
        assert!(!t.is_done());
    }
}
